//! Fused kernels for the SVI hot path.
//!
//! SVI training rebuilds the same small graph every step, so per-op
//! overhead (graph nodes, buffer traffic, separate elementwise passes)
//! dominates once the GEMMs are fast. This module fuses the three
//! patterns that appear in every step:
//!
//! * [`Tensor::linear`] — `act(x·Wᵀ + b)` in one graph node: the
//!   transpose is folded into the GEMM (no materialized `Wᵀ`), and bias
//!   and activation are applied in the same pass over the output.
//! * [`Tensor::fused_reparam_sample`] — the reparameterized-normal draw
//!   `loc + eps ⊙ map(raw_scale)` in one pass with a single output
//!   buffer and a fused backward (the positive-scale transform `map` is
//!   folded in, and its value is stashed so the backward never
//!   recomputes `exp`).
//! * `conv2d_act` (see [`Tensor::conv2d_act`]) — convolution with bias
//!   and activation applied while the output tile is still hot.
//!
//! All fusions preserve the exact scalar recipes of the unfused ops
//! (`unary.rs` activations, `binary.rs` add/mul), so fusing a call site
//! never changes results — only the number of passes and allocations.
//! That contract is per dtype: the scalar recipes are `f64` closures,
//! and the fused kernels round back to storage precision at exactly the
//! element boundaries where the unfused chain would (after the bias
//! add, after the activation, after each product) so `f32` fusion stays
//! bitwise too.
//!
//! Activations that can recover their derivative from the *output*
//! (`relu`, `tanh`, `sigmoid`) are fusable; `softplus` is not (its
//! inverse is unstable), so softplus call sites keep the separate op.

use std::cell::RefCell;
use std::rc::Rc;

use crate::element::{Element, dispatch_dtype};
use crate::ops::gemm_kernels::{gemm_at_ow, gemm_bt_ow, gemm_ow};
use crate::ops::PAR_MIN_ELEMS;
use crate::pool;
use crate::tensor::Tensor;

/// Activation fused into [`Tensor::linear`] / [`Tensor::conv2d_act`].
///
/// Each variant's `apply` is the exact scalar recipe of the
/// corresponding standalone op in `unary.rs`, and its gradient is
/// recoverable from the output value alone.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Activation {
    /// No activation; the fused op is just `x·Wᵀ + b`.
    #[default]
    Identity,
    /// `max(x, 0)` — matches [`Tensor::relu`].
    Relu,
    /// `tanh(x)` — matches [`Tensor::tanh`].
    Tanh,
    /// `1 / (1 + e^-x)` — matches [`Tensor::sigmoid`].
    Sigmoid,
}

impl Activation {
    /// The forward scalar map (identical to the unfused op's).
    #[inline(always)]
    pub fn apply(self, x: f64) -> f64 {
        match self {
            Activation::Identity => x,
            Activation::Relu => x.max(0.0),
            Activation::Tanh => x.tanh(),
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
        }
    }

    /// The forward map on a storage element: tanh routes through the
    /// per-dtype recipe [`Element::tanh_e`] — the same function the
    /// standalone [`Tensor::tanh`] kernel runs, so fusing never changes
    /// bits — and the other variants keep the widen-compute-round
    /// contract (their recipes are single IEEE ops or already cheap).
    #[inline(always)]
    pub(crate) fn apply_e<E: Element>(self, x: E) -> E {
        match self {
            Activation::Tanh => x.tanh_e(),
            _ => E::from_f64(self.apply(x.to_f64())),
        }
    }

    /// `d act / d x · g`, expressed in terms of the *output* `y` with the
    /// same expression the unfused backward uses (`y > 0 ⟺ x > 0` for
    /// relu; `1 - y²` for tanh; `y(1-y)` for sigmoid).
    #[inline(always)]
    pub(crate) fn grad_from_output(self, y: f64, g: f64) -> f64 {
        match self {
            Activation::Identity => g,
            Activation::Relu => {
                if y > 0.0 {
                    g
                } else {
                    0.0
                }
            }
            Activation::Tanh => g * (1.0 - y * y),
            Activation::Sigmoid => g * y * (1.0 - y),
        }
    }
}

/// The positive-scale transform fused into
/// [`Tensor::fused_reparam_sample`]: how the raw (unconstrained) scale
/// parameter maps to a standard deviation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ScaleMap {
    /// `raw` already is the standard deviation.
    Identity,
    /// `sd = exp(raw)` — matches [`Tensor::exp`].
    Exp,
    /// `sd = ln(1 + exp(raw))` (stable) — matches [`Tensor::softplus`].
    Softplus,
}

impl ScaleMap {
    /// The forward scalar map (identical to the unfused op's).
    #[inline(always)]
    pub fn apply(self, raw: f64) -> f64 {
        match self {
            ScaleMap::Identity => raw,
            ScaleMap::Exp => raw.exp(),
            ScaleMap::Softplus => {
                if raw > 30.0 {
                    raw
                } else if raw < -30.0 {
                    raw.exp()
                } else {
                    raw.exp().ln_1p()
                }
            }
        }
    }

    /// The forward map on a storage element: `Exp` routes through the
    /// per-dtype recipe [`Element::exp_e`] (shared with the standalone
    /// [`Tensor::exp`], so the fused draw matches the composite chain
    /// bitwise); `Identity` and `Softplus` keep widen-compute-round.
    #[inline(always)]
    pub(crate) fn apply_e<E: Element>(self, raw: E) -> E {
        match self {
            ScaleMap::Exp => raw.exp_e(),
            _ => E::from_f64(self.apply(raw.to_f64())),
        }
    }

    /// `d map / d raw` in terms of the *output* `sd`: `exp' = exp = sd`;
    /// `softplus' = sigmoid(raw) = 1 - e^{-sd}` (stable since `sd ≥ 0`).
    #[inline(always)]
    fn deriv_from_output(self, sd: f64) -> f64 {
        match self {
            ScaleMap::Identity => 1.0,
            ScaleMap::Exp => sd,
            ScaleMap::Softplus => 1.0 - (-sd).exp(),
        }
    }
}

/// Slice-level body of the fused affine layer: `out = act(x·Wᵀ + b)`.
/// The GEMM runs in overwrite mode and the bias/activation pass
/// rewrites every element, so a dirty (recycled or replay) output
/// buffer is fully refreshed. The biased pre-activation is rounded to
/// storage precision before the activation reads it — the unfused
/// chain rounds between `add` and the activation op, and fusing must
/// not change bits. Shared verbatim by the eager op, the step-plan
/// replay, and the forward-plan replay, which is what makes the
/// predictive engine's compiled path bit-identical by construction.
#[allow(clippy::too_many_arguments)]
fn linear_kernel<E: Element>(
    xs: &[E],
    ws: &[E],
    bs: Option<&[E]>,
    act: Activation,
    m: usize,
    k: usize,
    n: usize,
    out: &mut [E],
) {
    gemm_bt_ow(xs, ws, out, m, k, n);
    match (bs, act) {
        (Some(bd), _) => {
            for row in out.chunks_mut(n.max(1)) {
                for (v, &bv) in row.iter_mut().zip(bd.iter()) {
                    let pre = E::from_f64(v.to_f64() + bv.to_f64());
                    *v = act.apply_e(pre);
                }
            }
        }
        (None, Activation::Identity) => {}
        (None, _) => {
            for v in out.iter_mut() {
                *v = act.apply_e(*v);
            }
        }
    }
}

fn linear_t<E: Element>(
    x: &Tensor,
    w: &Tensor,
    b: Option<&Tensor>,
    act: Activation,
    m: usize,
    k: usize,
    n: usize,
) -> Tensor {
    let compute = {
        let x = x.clone();
        let w = w.clone();
        let b = b.cloned();
        move |out: &mut [E]| {
            let xd = x.data_of::<E>();
            let wd = w.data_of::<E>();
            let bd = b.as_ref().map(|b| b.data_of::<E>());
            linear_kernel(&xd, &wd, bd.as_deref(), act, m, k, n, out);
        }
    };
    let mut data = pool::alloc_uninit::<E>(m * n);
    compute(data.as_mut_slice());

    let (xc, wc) = (x.clone(), w.clone());
    let has_bias = b.is_some();
    let mut parents = vec![x.clone(), w.clone()];
    if let Some(b) = b {
        parents.push(b.clone());
    }
    let out = Tensor::make_op_t::<E>(data, vec![m, n], parents, move |out, grad| {
        // Pre-activation gradient from the stored output, rounded to
        // storage precision exactly as the standalone activation
        // backward would round it.
        let yd = out.data_of::<E>();
        let gpre_buf: Option<pool::PoolBuf<E>> = match act {
            Activation::Identity => None,
            _ => {
                let mut g = pool::alloc_uninit::<E>(grad.len());
                for ((slot, &y), &gv) in g.iter_mut().zip(yd.iter()).zip(grad.iter()) {
                    *slot = E::from_f64(act.grad_from_output(y.to_f64(), gv.to_f64()));
                }
                Some(g)
            }
        };
        drop(yd);
        let gpre: &[E] = gpre_buf.as_deref().unwrap_or(grad);
        let xd = xc.data_of::<E>();
        let wd = wc.data_of::<E>();
        let (xs, ws): (&[E], &[E]) = (&xd, &wd);
        let mut gx = pool::alloc_uninit::<E>(m * k);
        let mut gw = pool::alloc_uninit::<E>(n * k);
        tyxe_par::join2(
            // dX = Gpre · W  ([m,n]·[n,k]).
            || gemm_ow(gpre, ws, &mut gx, m, n, k),
            // dW = Gpreᵀ · X  ([n,m]·[m,k]).
            || gemm_at_ow(gpre, xs, &mut gw, n, m, k),
        );
        let mut grads = vec![Some(gx), Some(gw)];
        if has_bias {
            // db[j] = Σ_i gpre[i,j], i ascending, accumulated natively
            // in E — the same chain the broadcast-add reduction
            // (`sum_to_shape`) produces.
            let mut gb = pool::alloc_zeroed::<E>(n);
            for row in gpre.chunks(n.max(1)) {
                for (s, &g) in gb.iter_mut().zip(row.iter()) {
                    *s += g;
                }
            }
            grads.push(Some(gb));
        }
        grads
    });
    let mut reads: Vec<&Tensor> = vec![x, w];
    if let Some(b) = b {
        reads.push(b);
    }
    crate::plan::record_op_t::<E>(&out, &reads, compute);
    if crate::plan::fwd_is_recording() {
        let has_bias = b.is_some();
        crate::plan::fwd_record_op_t::<E>(&out, &reads, move |ins, out| {
            let bs = if has_bias { Some(ins[2]) } else { None };
            linear_kernel(ins[0], ins[1], bs, act, m, k, n, out);
        });
    }
    out
}

fn fused_reparam_sample_t<E: Element>(
    loc: &Tensor,
    raw_scale: &Tensor,
    eps: &Tensor,
    map: ScaleMap,
) -> Tensor {
    let len = loc.numel();
    // The transformed scale, kept for the backward (which needs
    // `map'` expressible in terms of it). For Identity the raw
    // tensor itself is the scale, so nothing is stashed. Shared
    // between the forward kernel and the backward closure so a plan
    // replay refreshes the stash in place (no allocation after the
    // first pass) and the backward always reads the current values.
    let sd_stash: Rc<RefCell<Option<pool::PoolBuf<E>>>> = Rc::new(RefCell::new(None));
    // Shared forward kernel (initial build + plan replay): every
    // output and stash element is rewritten each pass. Each scalar
    // step (map, product, sum) rounds to storage precision so the
    // fusion matches the `map` → `mul` → `add` chain bitwise per dtype.
    let compute = {
        let (loc, raw_scale, eps) = (loc.clone(), raw_scale.clone(), eps.clone());
        let stash = Rc::clone(&sd_stash);
        move |out: &mut [E]| {
            let ld = loc.data_of::<E>();
            let rd = raw_scale.data_of::<E>();
            let ed = eps.data_of::<E>();
            let (ls, rs, es): (&[E], &[E], &[E]) = (&ld, &rd, &ed);
            let chunk = tyxe_par::chunk_len(out.len(), 1, PAR_MIN_ELEMS);
            if map == ScaleMap::Identity {
                tyxe_par::parallel_for_chunks(out, chunk, |start, piece| {
                    for (off, slot) in piece.iter_mut().enumerate() {
                        let i = start + off;
                        let prod = E::from_f64(es[i].to_f64() * rs[i].to_f64());
                        *slot = E::from_f64(ls[i].to_f64() + prod.to_f64());
                    }
                });
            } else {
                let mut stash = stash.borrow_mut();
                let sd = stash.get_or_insert_with(|| pool::alloc_uninit::<E>(out.len()));
                tyxe_par::parallel_for_chunks2(out, sd.as_mut_slice(), chunk, chunk, |ci, po, ps| {
                    let start = ci * chunk;
                    for (off, (slot, sds)) in po.iter_mut().zip(ps.iter_mut()).enumerate() {
                        let i = start + off;
                        let s = map.apply_e(rs[i]);
                        *sds = s;
                        let prod = E::from_f64(s.to_f64() * es[i].to_f64());
                        *slot = E::from_f64(ls[i].to_f64() + prod.to_f64());
                    }
                });
            }
        }
    };
    let mut data = pool::alloc_uninit::<E>(len);
    compute(data.as_mut_slice());
    let ec = eps.clone();
    let stash_bw = Rc::clone(&sd_stash);
    let out = Tensor::make_op_t::<E>(
        data,
        loc.shape().to_vec(),
        vec![loc.clone(), raw_scale.clone()],
        move |_, grad| {
            // d/d loc = g (hand the copy over as the parent's buffer);
            // d/d raw = g ⊙ eps ⊙ map'(raw), with map' read off the
            // stashed transformed scale (`None` only for Identity,
            // whose derivative is 1).
            let dloc = pool::alloc_copy::<E>(grad);
            let ed = ec.data_of::<E>();
            let es: &[E] = &ed;
            let mut draw = pool::alloc_uninit::<E>(grad.len());
            match &*stash_bw.borrow() {
                None => {
                    for ((slot, &g), &e) in draw.iter_mut().zip(grad.iter()).zip(es.iter()) {
                        *slot = E::from_f64(g.to_f64() * e.to_f64());
                    }
                }
                Some(sd) => {
                    for ((slot, &g), (&e, &s)) in
                        draw.iter_mut().zip(grad.iter()).zip(es.iter().zip(sd.iter()))
                    {
                        let ge = E::from_f64(g.to_f64() * e.to_f64());
                        *slot = E::from_f64(ge.to_f64() * map.deriv_from_output(s.to_f64()));
                    }
                }
            }
            vec![Some(dloc), Some(draw)]
        },
    );
    // `eps` is read but is not a graph parent (no gradient flows to
    // it), so it must be declared to the coverage check explicitly:
    // a per-step eps the plan cannot refresh would otherwise replay
    // stale noise silently.
    crate::plan::record_op_t::<E>(&out, &[loc, raw_scale, eps], compute);
    out
}

impl Tensor {
    /// Fused affine layer: `act(x · Wᵀ + b)` with `x: [m, k]`,
    /// `w: [n, k]` (Pytorch's `[out_features, in_features]` layout),
    /// optional `b: [n]`.
    ///
    /// One graph node replaces the `t` → `matmul` → `add` → activation
    /// chain: the transpose folds into a `gemm_bt`, bias and activation
    /// are applied in the same pass over each fresh output row, and the
    /// backward reads the activation derivative off the stored output.
    ///
    /// Dtype follows [`Tensor::matmul`]: mixed operands promote to the
    /// wider type, and under an active [`crate::autocast`] guard the
    /// layer computes in the autocast target with the operand casts
    /// recorded as graph nodes (gradients reach the full-precision
    /// masters as their own dtype).
    ///
    /// # Panics
    ///
    /// Panics on rank or dimension mismatch.
    pub fn linear(&self, w: &Tensor, b: Option<&Tensor>, act: Activation) -> Tensor {
        assert_eq!(self.ndim(), 2, "linear: input must be 2-D, got {:?}", self.shape());
        assert_eq!(w.ndim(), 2, "linear: weight must be 2-D, got {:?}", w.shape());
        let (m, k) = (self.shape()[0], self.shape()[1]);
        let (n, k2) = (w.shape()[0], w.shape()[1]);
        assert_eq!(k, k2, "linear: in-features {k} vs {k2} disagree");
        if let Some(b) = b {
            assert_eq!(b.shape(), &[n], "linear: bias must be [{n}]");
        }
        let mut dt = self.dtype().promote(w.dtype());
        if let Some(b) = b {
            dt = dt.promote(b.dtype());
        }
        let dt = crate::autocast::compute_dtype(dt);
        let x = self.cast(dt);
        let w = w.cast(dt);
        let b = b.map(|b| b.cast(dt));
        dispatch_dtype!(dt, E => linear_t::<E>(&x, &w, b.as_ref(), act, m, k, n))
    }

    /// Fused reparameterized-normal draw: `loc + eps ⊙ map(raw_scale)`
    /// in one pass, where `eps` is a pre-drawn standard-normal tensor
    /// (treated as a constant: no gradient flows into it).
    ///
    /// All three tensors must share one shape — broadcasting callers use
    /// the composite ops instead. The transformed scale is computed once
    /// and stashed for the backward, so `exp`/`softplus` run exactly
    /// once per element per step.
    ///
    /// The draw computes in `loc`'s dtype (`loc` is the parameter
    /// master); `raw_scale` and `eps` are cast to join it if they
    /// differ.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn fused_reparam_sample(loc: &Tensor, raw_scale: &Tensor, eps: &Tensor, map: ScaleMap) -> Tensor {
        assert_eq!(
            loc.shape(),
            raw_scale.shape(),
            "fused_reparam_sample: loc/raw_scale shape mismatch"
        );
        assert_eq!(
            loc.shape(),
            eps.shape(),
            "fused_reparam_sample: loc/eps shape mismatch"
        );
        let dt = loc.dtype();
        let raw_scale = raw_scale.cast(dt);
        let eps = eps.cast(dt);
        dispatch_dtype!(dt, E => fused_reparam_sample_t::<E>(loc, &raw_scale, &eps, map))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::DType;
    use tyxe_rand::SeedableRng;

    fn assert_bits_eq(a: &[f64], b: &[f64], what: &str) {
        assert_eq!(a.len(), b.len(), "{what}: length");
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(x.to_bits() == y.to_bits(), "{what}: element {i}: {x:e} vs {y:e}");
        }
    }

    /// The fused linear must match the op chain it replaces — values and
    /// gradients — for every fusable activation.
    #[test]
    fn linear_matches_unfused_chain() {
        let mut rng = tyxe_rand::rngs::StdRng::seed_from_u64(11);
        for act in [Activation::Identity, Activation::Relu, Activation::Tanh, Activation::Sigmoid] {
            let x0 = Tensor::randn(&[5, 3], &mut rng);
            let w0 = Tensor::randn(&[4, 3], &mut rng);
            let b0 = Tensor::randn(&[4], &mut rng);

            let run = |fused: bool| {
                let x = x0.detach().requires_grad(true);
                let w = w0.detach().requires_grad(true);
                let b = b0.detach().requires_grad(true);
                let y = if fused {
                    x.linear(&w, Some(&b), act)
                } else {
                    let pre = x.matmul(&w.t()).add(&b);
                    match act {
                        Activation::Identity => pre,
                        Activation::Relu => pre.relu(),
                        Activation::Tanh => pre.tanh(),
                        Activation::Sigmoid => pre.sigmoid(),
                    }
                };
                y.mul(&y).sum().backward();
                (y.to_vec(), x.grad().unwrap(), w.grad().unwrap(), b.grad().unwrap())
            };
            let (yf, gxf, gwf, gbf) = run(true);
            let (yu, gxu, gwu, gbu) = run(false);
            for (f, u, what) in [(&yf, &yu, "y"), (&gxf, &gxu, "gx"), (&gwf, &gwu, "gw"), (&gbf, &gbu, "gb")]
            {
                assert_eq!(f.len(), u.len());
                for (a, b) in f.iter().zip(u.iter()) {
                    assert!((a - b).abs() < 1e-12, "{act:?} {what}: {a} vs {b}");
                }
            }
        }
    }

    /// Same contract at f32 storage: the fused layer and the unfused
    /// chain round at the same element boundaries, so they agree to
    /// f32 working precision in values and all three gradients.
    #[test]
    fn f32_linear_matches_unfused_chain() {
        let mut rng = tyxe_rand::rngs::StdRng::seed_from_u64(19);
        for act in [Activation::Identity, Activation::Relu, Activation::Tanh, Activation::Sigmoid] {
            let x0 = Tensor::randn(&[5, 3], &mut rng).cast(DType::F32);
            let w0 = Tensor::randn(&[4, 3], &mut rng).cast(DType::F32);
            let b0 = Tensor::randn(&[4], &mut rng).cast(DType::F32);

            let run = |fused: bool| {
                let x = x0.detach().requires_grad(true);
                let w = w0.detach().requires_grad(true);
                let b = b0.detach().requires_grad(true);
                let y = if fused {
                    x.linear(&w, Some(&b), act)
                } else {
                    let pre = x.matmul(&w.t()).add(&b);
                    match act {
                        Activation::Identity => pre,
                        Activation::Relu => pre.relu(),
                        Activation::Tanh => pre.tanh(),
                        Activation::Sigmoid => pre.sigmoid(),
                    }
                };
                assert_eq!(y.dtype(), DType::F32);
                y.mul(&y).sum().backward();
                (y.to_vec(), x.grad().unwrap(), w.grad().unwrap(), b.grad().unwrap())
            };
            let (yf, gxf, gwf, gbf) = run(true);
            let (yu, gxu, gwu, gbu) = run(false);
            for (f, u, what) in [(&yf, &yu, "y"), (&gxf, &gxu, "gx"), (&gwf, &gwu, "gw"), (&gbf, &gbu, "gb")]
            {
                assert_eq!(f.len(), u.len());
                for (a, b) in f.iter().zip(u.iter()) {
                    assert!((a - b).abs() < 1e-5, "f32 {act:?} {what}: {a} vs {b}");
                }
            }
        }
    }

    /// Under an autocast guard an all-f64 fused layer computes in f32
    /// and the masters still receive f64 gradients through the cast
    /// boundary.
    #[test]
    fn autocast_demotes_linear() {
        let mut rng = tyxe_rand::rngs::StdRng::seed_from_u64(21);
        let x = Tensor::randn(&[3, 2], &mut rng).requires_grad(true);
        let w = Tensor::randn(&[4, 2], &mut rng).requires_grad(true);
        let b = Tensor::randn(&[4], &mut rng).requires_grad(true);
        let g = crate::autocast::autocast(DType::F32);
        let y = x.linear(&w, Some(&b), Activation::Relu);
        assert_eq!(y.dtype(), DType::F32);
        drop(g);
        y.sum().backward();
        for (t, what) in [(&x, "x"), (&w, "w"), (&b, "b")] {
            assert_eq!(t.dtype(), DType::F64, "{what} master stays f64");
            assert!(t.grad().is_some(), "{what} gets a gradient");
        }
        // Outside the guard the same layer stays f64.
        assert_eq!(x.linear(&w, Some(&b), Activation::Relu).dtype(), DType::F64);
    }

    /// Without bias the fused path still matches, bitwise, for Identity
    /// (same GEMM recipe) — at both dtypes.
    #[test]
    fn linear_no_bias_identity_is_bitwise_matmul_t() {
        let mut rng = tyxe_rand::rngs::StdRng::seed_from_u64(12);
        let x = Tensor::randn(&[7, 5], &mut rng);
        let w = Tensor::randn(&[2, 5], &mut rng);
        let fused = x.linear(&w, None, Activation::Identity);
        let unfused = x.matmul(&w.t());
        assert_bits_eq(&fused.to_vec(), &unfused.to_vec(), "linear vs matmul∘t");

        let (xf, wf) = (x.cast(DType::F32), w.cast(DType::F32));
        let fused = xf.linear(&wf, None, Activation::Identity);
        let unfused = xf.matmul(&wf.t());
        assert_eq!(fused.dtype(), DType::F32);
        assert_bits_eq(&fused.to_vec(), &unfused.to_vec(), "f32 linear vs matmul∘t");
    }

    /// The fused sample must match `loc + eps·map(raw)` built from the
    /// separate ops, bitwise, in value and in both parameter gradients.
    #[test]
    fn fused_reparam_sample_matches_composite() {
        let mut rng = tyxe_rand::rngs::StdRng::seed_from_u64(13);
        for map in [ScaleMap::Identity, ScaleMap::Exp, ScaleMap::Softplus] {
            let loc0 = Tensor::randn(&[6], &mut rng);
            let raw0 = Tensor::randn(&[6], &mut rng);
            let eps = Tensor::randn(&[6], &mut rng);

            let run = |fused: bool| {
                let loc = loc0.detach().requires_grad(true);
                let raw = raw0.detach().requires_grad(true);
                let y = if fused {
                    Tensor::fused_reparam_sample(&loc, &raw, &eps, map)
                } else {
                    let sd = match map {
                        ScaleMap::Identity => raw.clone(),
                        ScaleMap::Exp => raw.exp(),
                        ScaleMap::Softplus => raw.softplus(),
                    };
                    loc.add(&sd.mul(&eps))
                };
                y.square().sum().backward();
                (y.to_vec(), loc.grad().unwrap(), raw.grad().unwrap())
            };
            let (yf, glf, grf) = run(true);
            let (yu, glu, gru) = run(false);
            assert_bits_eq(&yf, &yu, "sample value");
            assert_bits_eq(&glf, &glu, "loc grad");
            for (a, b) in grf.iter().zip(gru.iter()) {
                assert!((a - b).abs() < 1e-12, "{map:?} raw grad: {a} vs {b}");
            }
        }
    }

    /// The f32 fused sample rounds at the same step boundaries as the
    /// f32 composite chain, so values and loc gradients stay bitwise.
    #[test]
    fn f32_fused_reparam_sample_matches_composite() {
        let mut rng = tyxe_rand::rngs::StdRng::seed_from_u64(23);
        for map in [ScaleMap::Identity, ScaleMap::Exp, ScaleMap::Softplus] {
            let loc0 = Tensor::randn(&[6], &mut rng).cast(DType::F32);
            let raw0 = Tensor::randn(&[6], &mut rng).cast(DType::F32);
            let eps = Tensor::randn(&[6], &mut rng).cast(DType::F32);

            let run = |fused: bool| {
                let loc = loc0.detach().requires_grad(true);
                let raw = raw0.detach().requires_grad(true);
                let y = if fused {
                    Tensor::fused_reparam_sample(&loc, &raw, &eps, map)
                } else {
                    let sd = match map {
                        ScaleMap::Identity => raw.clone(),
                        ScaleMap::Exp => raw.exp(),
                        ScaleMap::Softplus => raw.softplus(),
                    };
                    loc.add(&sd.mul(&eps))
                };
                assert_eq!(y.dtype(), DType::F32);
                y.square().sum().backward();
                (y.to_vec(), loc.grad().unwrap(), raw.grad().unwrap())
            };
            let (yf, glf, grf) = run(true);
            let (yu, glu, gru) = run(false);
            assert_bits_eq(&yf, &yu, "f32 sample value");
            assert_bits_eq(&glf, &glu, "f32 loc grad");
            for (a, b) in grf.iter().zip(gru.iter()) {
                assert!((a - b).abs() < 1e-5, "f32 {map:?} raw grad: {a} vs {b}");
            }
        }
    }

    #[test]
    fn fused_sample_gives_eps_no_gradient() {
        let loc = Tensor::zeros(&[3]).requires_grad(true);
        let raw = Tensor::zeros(&[3]).requires_grad(true);
        let eps = Tensor::ones(&[3]).requires_grad(true);
        Tensor::fused_reparam_sample(&loc, &raw, &eps, ScaleMap::Exp)
            .sum()
            .backward();
        assert!(loc.grad().is_some());
        assert!(raw.grad().is_some());
        assert!(eps.grad().is_none(), "eps is a constant in the reparameterization");
    }
}
