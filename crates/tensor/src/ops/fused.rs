//! Fused kernels for the SVI hot path.
//!
//! SVI training rebuilds the same small graph every step, so per-op
//! overhead (graph nodes, buffer traffic, separate elementwise passes)
//! dominates once the GEMMs are fast. This module fuses the three
//! patterns that appear in every step:
//!
//! * [`Tensor::linear`] — `act(x·Wᵀ + b)` in one graph node: the
//!   transpose is folded into the GEMM (no materialized `Wᵀ`), and bias
//!   and activation are applied in the same pass over the output.
//! * [`Tensor::fused_reparam_sample`] — the reparameterized-normal draw
//!   `loc + eps ⊙ map(raw_scale)` in one pass with a single output
//!   buffer and a fused backward (the positive-scale transform `map` is
//!   folded in, and its value is stashed so the backward never
//!   recomputes `exp`).
//! * `conv2d_act` (see [`Tensor::conv2d_act`]) — convolution with bias
//!   and activation applied while the output tile is still hot.
//!
//! All fusions preserve the exact scalar recipes of the unfused ops
//! (`unary.rs` activations, `binary.rs` add/mul), so fusing a call site
//! never changes results — only the number of passes and allocations.
//!
//! Activations that can recover their derivative from the *output*
//! (`relu`, `tanh`, `sigmoid`) are fusable; `softplus` is not (its
//! inverse is unstable), so softplus call sites keep the separate op.

use std::cell::RefCell;
use std::rc::Rc;

use crate::ops::gemm_kernels::{gemm_at_ow, gemm_bt_ow, gemm_ow};
use crate::ops::PAR_MIN_ELEMS;
use crate::pool;
use crate::tensor::Tensor;

/// Activation fused into [`Tensor::linear`] / [`Tensor::conv2d_act`].
///
/// Each variant's `apply` is the exact scalar recipe of the
/// corresponding standalone op in `unary.rs`, and its gradient is
/// recoverable from the output value alone.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Activation {
    /// No activation; the fused op is just `x·Wᵀ + b`.
    #[default]
    Identity,
    /// `max(x, 0)` — matches [`Tensor::relu`].
    Relu,
    /// `tanh(x)` — matches [`Tensor::tanh`].
    Tanh,
    /// `1 / (1 + e^-x)` — matches [`Tensor::sigmoid`].
    Sigmoid,
}

impl Activation {
    /// The forward scalar map (identical to the unfused op's).
    #[inline(always)]
    pub fn apply(self, x: f64) -> f64 {
        match self {
            Activation::Identity => x,
            Activation::Relu => x.max(0.0),
            Activation::Tanh => x.tanh(),
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
        }
    }

    /// `d act / d x · g`, expressed in terms of the *output* `y` with the
    /// same expression the unfused backward uses (`y > 0 ⟺ x > 0` for
    /// relu; `1 - y²` for tanh; `y(1-y)` for sigmoid).
    #[inline(always)]
    pub(crate) fn grad_from_output(self, y: f64, g: f64) -> f64 {
        match self {
            Activation::Identity => g,
            Activation::Relu => {
                if y > 0.0 {
                    g
                } else {
                    0.0
                }
            }
            Activation::Tanh => g * (1.0 - y * y),
            Activation::Sigmoid => g * y * (1.0 - y),
        }
    }
}

/// The positive-scale transform fused into
/// [`Tensor::fused_reparam_sample`]: how the raw (unconstrained) scale
/// parameter maps to a standard deviation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ScaleMap {
    /// `raw` already is the standard deviation.
    Identity,
    /// `sd = exp(raw)` — matches [`Tensor::exp`].
    Exp,
    /// `sd = ln(1 + exp(raw))` (stable) — matches [`Tensor::softplus`].
    Softplus,
}

impl ScaleMap {
    /// The forward scalar map (identical to the unfused op's).
    #[inline(always)]
    pub fn apply(self, raw: f64) -> f64 {
        match self {
            ScaleMap::Identity => raw,
            ScaleMap::Exp => raw.exp(),
            ScaleMap::Softplus => {
                if raw > 30.0 {
                    raw
                } else if raw < -30.0 {
                    raw.exp()
                } else {
                    raw.exp().ln_1p()
                }
            }
        }
    }

    /// `d map / d raw` in terms of the *output* `sd`: `exp' = exp = sd`;
    /// `softplus' = sigmoid(raw) = 1 - e^{-sd}` (stable since `sd ≥ 0`).
    #[inline(always)]
    fn deriv_from_output(self, sd: f64) -> f64 {
        match self {
            ScaleMap::Identity => 1.0,
            ScaleMap::Exp => sd,
            ScaleMap::Softplus => 1.0 - (-sd).exp(),
        }
    }
}

impl Tensor {
    /// Fused affine layer: `act(x · Wᵀ + b)` with `x: [m, k]`,
    /// `w: [n, k]` (Pytorch's `[out_features, in_features]` layout),
    /// optional `b: [n]`.
    ///
    /// One graph node replaces the `t` → `matmul` → `add` → activation
    /// chain: the transpose folds into a `gemm_bt`, bias and activation
    /// are applied in the same pass over each fresh output row, and the
    /// backward reads the activation derivative off the stored output.
    ///
    /// # Panics
    ///
    /// Panics on rank or dimension mismatch.
    pub fn linear(&self, w: &Tensor, b: Option<&Tensor>, act: Activation) -> Tensor {
        assert_eq!(self.ndim(), 2, "linear: input must be 2-D, got {:?}", self.shape());
        assert_eq!(w.ndim(), 2, "linear: weight must be 2-D, got {:?}", w.shape());
        let (m, k) = (self.shape()[0], self.shape()[1]);
        let (n, k2) = (w.shape()[0], w.shape()[1]);
        assert_eq!(k, k2, "linear: in-features {k} vs {k2} disagree");
        if let Some(b) = b {
            assert_eq!(b.shape(), &[n], "linear: bias must be [{n}]");
        }

        // Shared forward kernel (initial build + plan replay): the GEMM
        // runs in overwrite mode and the bias/activation pass rewrites
        // every element, so a dirty replay buffer is fully refreshed.
        let compute = {
            let x = self.clone();
            let w = w.clone();
            let b = b.cloned();
            move |out: &mut [f64]| {
                {
                    let xd = x.data();
                    let wd = w.data();
                    gemm_bt_ow(&xd, &wd, out, m, k, n);
                }
                match (&b, act) {
                    (Some(b), _) => {
                        let bd = b.data();
                        for row in out.chunks_mut(n.max(1)) {
                            for (v, &bv) in row.iter_mut().zip(bd.iter()) {
                                *v = act.apply(*v + bv);
                            }
                        }
                    }
                    (None, Activation::Identity) => {}
                    (None, _) => {
                        for v in out.iter_mut() {
                            *v = act.apply(*v);
                        }
                    }
                }
            }
        };
        let mut data = pool::alloc_uninit(m * n);
        compute(data.as_mut_slice());

        let (xc, wc) = (self.clone(), w.clone());
        let has_bias = b.is_some();
        let mut parents = vec![self.clone(), w.clone()];
        if let Some(b) = b {
            parents.push(b.clone());
        }
        let out = Tensor::make_op(
            data,
            vec![m, n],
            parents,
            Box::new(move |out, grad| {
                // Pre-activation gradient from the stored output.
                let yd = out.data();
                let gpre_buf: Option<Vec<f64>> = match act {
                    Activation::Identity => None,
                    _ => {
                        let mut g = pool::alloc_uninit(grad.len());
                        for ((slot, &y), &gv) in g.iter_mut().zip(yd.iter()).zip(grad.iter()) {
                            *slot = act.grad_from_output(y, gv);
                        }
                        Some(g)
                    }
                };
                drop(yd);
                let gpre: &[f64] = gpre_buf.as_deref().unwrap_or(grad);
                let xd = xc.data();
                let wd = wc.data();
                let (xs, ws): (&[f64], &[f64]) = (&xd, &wd);
                let mut gx = pool::alloc_uninit(m * k);
                let mut gw = pool::alloc_uninit(n * k);
                tyxe_par::join2(
                    // dX = Gpre · W  ([m,n]·[n,k]).
                    || gemm_ow(gpre, ws, &mut gx, m, n, k),
                    // dW = Gpreᵀ · X  ([n,m]·[m,k]).
                    || gemm_at_ow(gpre, xs, &mut gw, n, m, k),
                );
                let mut grads = vec![Some(gx.into()), Some(gw.into())];
                if has_bias {
                    // db[j] = Σ_i gpre[i,j], i ascending — the same chain
                    // the broadcast-add reduction produces.
                    let mut gb = pool::alloc_zeroed(n);
                    for row in gpre.chunks(n.max(1)) {
                        for (s, &g) in gb.iter_mut().zip(row.iter()) {
                            *s += g;
                        }
                    }
                    grads.push(Some(gb.into()));
                }
                grads
            }),
        );
        let mut reads = vec![self, w];
        if let Some(b) = b {
            reads.push(b);
        }
        crate::plan::record_op(&out, &reads, compute);
        out
    }

    /// Fused reparameterized-normal draw: `loc + eps ⊙ map(raw_scale)`
    /// in one pass, where `eps` is a pre-drawn standard-normal tensor
    /// (treated as a constant: no gradient flows into it).
    ///
    /// All three tensors must share one shape — broadcasting callers use
    /// the composite ops instead. The transformed scale is computed once
    /// and stashed for the backward, so `exp`/`softplus` run exactly
    /// once per element per step.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn fused_reparam_sample(loc: &Tensor, raw_scale: &Tensor, eps: &Tensor, map: ScaleMap) -> Tensor {
        assert_eq!(
            loc.shape(),
            raw_scale.shape(),
            "fused_reparam_sample: loc/raw_scale shape mismatch"
        );
        assert_eq!(
            loc.shape(),
            eps.shape(),
            "fused_reparam_sample: loc/eps shape mismatch"
        );
        let len = loc.numel();
        // The transformed scale, kept for the backward (which needs
        // `map'` expressible in terms of it). For Identity the raw
        // tensor itself is the scale, so nothing is stashed. Shared
        // between the forward kernel and the backward closure so a plan
        // replay refreshes the stash in place (no allocation after the
        // first pass) and the backward always reads the current values.
        let sd_stash: Rc<RefCell<Option<Vec<f64>>>> = Rc::new(RefCell::new(None));
        // Shared forward kernel (initial build + plan replay): every
        // output and stash element is rewritten each pass.
        let compute = {
            let (loc, raw_scale, eps) = (loc.clone(), raw_scale.clone(), eps.clone());
            let stash = Rc::clone(&sd_stash);
            move |out: &mut [f64]| {
                let ld = loc.data();
                let rd = raw_scale.data();
                let ed = eps.data();
                let (ls, rs, es): (&[f64], &[f64], &[f64]) = (&ld, &rd, &ed);
                let chunk = tyxe_par::chunk_len(out.len(), 1, PAR_MIN_ELEMS);
                if map == ScaleMap::Identity {
                    tyxe_par::parallel_for_chunks(out, chunk, |start, piece| {
                        for (off, slot) in piece.iter_mut().enumerate() {
                            let i = start + off;
                            *slot = ls[i] + es[i] * rs[i];
                        }
                    });
                } else {
                    let mut stash = stash.borrow_mut();
                    let sd = stash.get_or_insert_with(|| pool::alloc_uninit(out.len()));
                    tyxe_par::parallel_for_chunks2(out, sd.as_mut_slice(), chunk, chunk, |ci, po, ps| {
                        let start = ci * chunk;
                        for (off, (slot, sds)) in po.iter_mut().zip(ps.iter_mut()).enumerate() {
                            let i = start + off;
                            let s = map.apply(rs[i]);
                            *sds = s;
                            *slot = ls[i] + es[i] * s;
                        }
                    });
                }
            }
        };
        let mut data = pool::alloc_uninit(len);
        compute(data.as_mut_slice());
        let ec = eps.clone();
        let stash_bw = Rc::clone(&sd_stash);
        let out = Tensor::make_op(
            data,
            loc.shape().to_vec(),
            vec![loc.clone(), raw_scale.clone()],
            Box::new(move |_, grad| {
                // d/d loc = g (hand the copy over as the parent's buffer);
                // d/d raw = g ⊙ eps ⊙ map'(raw), with map' read off the
                // stashed transformed scale (`None` only for Identity,
                // whose derivative is 1).
                let dloc = pool::alloc_copy(grad);
                let ed = ec.data();
                let es: &[f64] = &ed;
                let mut draw = pool::alloc_uninit(grad.len());
                match &*stash_bw.borrow() {
                    None => {
                        for ((slot, &g), &e) in draw.iter_mut().zip(grad.iter()).zip(es.iter()) {
                            *slot = g * e;
                        }
                    }
                    Some(sd) => {
                        for ((slot, &g), (&e, &s)) in
                            draw.iter_mut().zip(grad.iter()).zip(es.iter().zip(sd.iter()))
                        {
                            *slot = g * e * map.deriv_from_output(s);
                        }
                    }
                }
                vec![Some(dloc.into()), Some(draw.into())]
            }),
        );
        // `eps` is read but is not a graph parent (no gradient flows to
        // it), so it must be declared to the coverage check explicitly:
        // a per-step eps the plan cannot refresh would otherwise replay
        // stale noise silently.
        crate::plan::record_op(&out, &[loc, raw_scale, eps], compute);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tyxe_rand::SeedableRng;

    fn assert_bits_eq(a: &[f64], b: &[f64], what: &str) {
        assert_eq!(a.len(), b.len(), "{what}: length");
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(x.to_bits() == y.to_bits(), "{what}: element {i}: {x:e} vs {y:e}");
        }
    }

    /// The fused linear must match the op chain it replaces — values and
    /// gradients — for every fusable activation.
    #[test]
    fn linear_matches_unfused_chain() {
        let mut rng = tyxe_rand::rngs::StdRng::seed_from_u64(11);
        for act in [Activation::Identity, Activation::Relu, Activation::Tanh, Activation::Sigmoid] {
            let x0 = Tensor::randn(&[5, 3], &mut rng);
            let w0 = Tensor::randn(&[4, 3], &mut rng);
            let b0 = Tensor::randn(&[4], &mut rng);

            let run = |fused: bool| {
                let x = x0.detach().requires_grad(true);
                let w = w0.detach().requires_grad(true);
                let b = b0.detach().requires_grad(true);
                let y = if fused {
                    x.linear(&w, Some(&b), act)
                } else {
                    let pre = x.matmul(&w.t()).add(&b);
                    match act {
                        Activation::Identity => pre,
                        Activation::Relu => pre.relu(),
                        Activation::Tanh => pre.tanh(),
                        Activation::Sigmoid => pre.sigmoid(),
                    }
                };
                y.mul(&y).sum().backward();
                (y.to_vec(), x.grad().unwrap(), w.grad().unwrap(), b.grad().unwrap())
            };
            let (yf, gxf, gwf, gbf) = run(true);
            let (yu, gxu, gwu, gbu) = run(false);
            for (f, u, what) in [(&yf, &yu, "y"), (&gxf, &gxu, "gx"), (&gwf, &gwu, "gw"), (&gbf, &gbu, "gb")]
            {
                assert_eq!(f.len(), u.len());
                for (a, b) in f.iter().zip(u.iter()) {
                    assert!((a - b).abs() < 1e-12, "{act:?} {what}: {a} vs {b}");
                }
            }
        }
    }

    /// Without bias the fused path still matches, bitwise, for Identity
    /// (same GEMM recipe).
    #[test]
    fn linear_no_bias_identity_is_bitwise_matmul_t() {
        let mut rng = tyxe_rand::rngs::StdRng::seed_from_u64(12);
        let x = Tensor::randn(&[7, 5], &mut rng);
        let w = Tensor::randn(&[2, 5], &mut rng);
        let fused = x.linear(&w, None, Activation::Identity);
        let unfused = x.matmul(&w.t());
        assert_bits_eq(&fused.to_vec(), &unfused.to_vec(), "linear vs matmul∘t");
    }

    /// The fused sample must match `loc + eps·map(raw)` built from the
    /// separate ops, bitwise, in value and in both parameter gradients.
    #[test]
    fn fused_reparam_sample_matches_composite() {
        let mut rng = tyxe_rand::rngs::StdRng::seed_from_u64(13);
        for map in [ScaleMap::Identity, ScaleMap::Exp, ScaleMap::Softplus] {
            let loc0 = Tensor::randn(&[6], &mut rng);
            let raw0 = Tensor::randn(&[6], &mut rng);
            let eps = Tensor::randn(&[6], &mut rng);

            let run = |fused: bool| {
                let loc = loc0.detach().requires_grad(true);
                let raw = raw0.detach().requires_grad(true);
                let y = if fused {
                    Tensor::fused_reparam_sample(&loc, &raw, &eps, map)
                } else {
                    let sd = match map {
                        ScaleMap::Identity => raw.clone(),
                        ScaleMap::Exp => raw.exp(),
                        ScaleMap::Softplus => raw.softplus(),
                    };
                    loc.add(&sd.mul(&eps))
                };
                y.square().sum().backward();
                (y.to_vec(), loc.grad().unwrap(), raw.grad().unwrap())
            };
            let (yf, glf, grf) = run(true);
            let (yu, glu, gru) = run(false);
            assert_bits_eq(&yf, &yu, "sample value");
            assert_bits_eq(&glf, &glu, "loc grad");
            for (a, b) in grf.iter().zip(gru.iter()) {
                assert!((a - b).abs() < 1e-12, "{map:?} raw grad: {a} vs {b}");
            }
        }
    }

    #[test]
    fn fused_sample_gives_eps_no_gradient() {
        let loc = Tensor::zeros(&[3]).requires_grad(true);
        let raw = Tensor::zeros(&[3]).requires_grad(true);
        let eps = Tensor::ones(&[3]).requires_grad(true);
        Tensor::fused_reparam_sample(&loc, &raw, &eps, ScaleMap::Exp)
            .sum()
            .backward();
        assert!(loc.grad().is_some());
        assert!(raw.grad().is_some());
        assert!(eps.grad().is_none(), "eps is a constant in the reparameterization");
    }
}
