//! Cache-blocked, SIMD-dispatched, multi-threaded GEMM kernels with a
//! bit-exact determinism contract, generic over the element type.
//!
//! Three accumulation variants back every matrix product in the crate
//! (see [`crate::Tensor::matmul`] and `conv2d`'s im2col formulation):
//!
//! * [`gemm`]    — `C += A·B`,   `A: [m×k]`, `B: [k×n]`
//! * [`gemm_at`] — `C += Aᵀ·B`,  `A: [k×m]`, `B: [k×n]`
//! * [`gemm_bt`] — `C += A·Bᵀ`,  `A: [m×k]`, `B: [n×k]`
//!
//! Each has an overwrite twin ([`gemm_ow`]/[`gemm_at_ow`]/[`gemm_bt_ow`],
//! `C = A·B` etc.) that writes every element of `C` without reading it,
//! so callers can hand over *uninitialized* (pool-recycled) output
//! buffers and skip the zero-fill. The overwrite twins perform, per
//! element, the exact floating-point sequence of "zero-fill `C`, then
//! run the accumulating variant" — including the `0.0 + (-0.0) = +0.0`
//! signed-zero normalization of `gemm_bt`'s final add — so switching a
//! call site between the two formulations can never change a bit.
//!
//! # Dtype
//!
//! Every entry point is generic over [`Element`] (`f32` or `f64`) and
//! computes *natively* in that type: an `f32` GEMM runs f32 madd chains
//! in f32 registers — it is not an f64 product rounded down. The
//! per-element recipe below therefore holds independently per dtype,
//! and the determinism contract is **per dtype**: f32 results are
//! bit-identical across thread counts / blocking / the reference
//! kernels, and f64 results are (separately) bit-identical — but f32
//! and f64 products of the same operands differ, as they must.
//!
//! # Determinism contract
//!
//! Every entry point computes, for each output element, the *same
//! sequence of floating-point operations* regardless of thread count or
//! matrix size:
//!
//! * `gemm`/`gemm_at` update `c[i,j]` with one fused/plain multiply-add
//!   per `p`, `p` ascending, starting from the incoming `c[i,j]`;
//! * `gemm_bt` accumulates a fresh dot product (`p` ascending from `0.0`)
//!   and adds it to `c[i,j]` once.
//!
//! The blocked path tiles over rows and columns only — `k` is never
//! split, and each output element's accumulator lives in one register
//! for the whole `k` loop — so blocking cannot reorder any element's
//! reduction. Threads partition disjoint, MR-aligned row blocks of `C`,
//! so partitioning cannot either. The retained reference kernels
//! ([`gemm_ref`] and friends) follow the identical per-element recipe,
//! which the property tests in `tests/parallel_identity.rs` pin down
//! bitwise.
//!
//! # SIMD dispatch and the `madd` recipe
//!
//! Kernels are compiled per ISA via `#[target_feature]` on monomorphic
//! per-dtype wrappers (a `#[target_feature]` generic fn would not
//! monomorphize with the feature applied) and selected once at runtime.
//! On CPUs with FMA the multiply-add is a true fused `mul_add` (single
//! rounding) in *both* the blocked and the reference kernels; without
//! FMA both use plain `mul` + `add`. Results are therefore bit-identical
//! across thread counts and against the reference on any given machine,
//! though they may differ *between* machines with different FMA support
//! — the same caveat that applies to any BLAS. Rust never auto-contracts
//! `a * b + c`, so the non-FMA path is stable too.

// Microkernels take (k, ap, bp, c, ldc, rows, cols, mode): the
// signature is the MicroFn ABI shared by every `#[target_feature]`
// instantiation, so bundling arguments into a struct would just move
// the field list without removing it.
#![allow(clippy::too_many_arguments)]

use std::sync::OnceLock;

use crate::element::{DType, Element, same_slice, same_slice_mut};

/// Work (in multiply-adds, `m·k·n`) below which the blocked path is not
/// worth its packing and dispatch overhead; small products use the
/// reference kernels directly. Both paths obey the same per-element
/// recipe, so the cutoff never affects results.
const BLOCK_MIN_MADDS: usize = 32 * 32 * 32;

/// Column-block width in *elements*: `bp` holds `NC` packed columns
/// (`k × NC` elements), sized to stay comfortably inside L2 for the `k`
/// ranges seen here (f32 panels are half the bytes of f64 ones — also
/// fine).
const NC: usize = 256;

// ---------------------------------------------------------------------------
// ISA selection
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Isa {
    Base,
    Avx2,
    Avx2Fma,
    Avx512Fma,
}

fn isa() -> Isa {
    static ISA: OnceLock<Isa> = OnceLock::new();
    *ISA.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        {
            if is_x86_feature_detected!("avx512f") && is_x86_feature_detected!("fma") {
                return Isa::Avx512Fma;
            }
            if is_x86_feature_detected!("avx2") {
                return if is_x86_feature_detected!("fma") {
                    Isa::Avx2Fma
                } else {
                    Isa::Avx2
                };
            }
        }
        Isa::Base
    })
}

/// Whether this process's kernels fuse multiply-adds (hardware FMA).
pub fn uses_fma() -> bool {
    matches!(isa(), Isa::Avx2Fma | Isa::Avx512Fma)
}

/// Human-readable label of the selected kernel ISA (for bench reports).
pub fn simd_label() -> &'static str {
    match isa() {
        Isa::Base => "baseline",
        Isa::Avx2 => "avx2",
        Isa::Avx2Fma => "avx2+fma",
        Isa::Avx512Fma => "avx512+fma",
    }
}

// ---------------------------------------------------------------------------
// Observability probes
// ---------------------------------------------------------------------------

/// tyxe-obs instrumentation for the public GEMM entry points: per-call
/// span (shape + kernel variant + ISA + dtype as the span arg), call
/// counters tagged by `variant`/`path`, a FLOP counter, and per-dtype
/// panel-size gauges. Everything downstream of the single
/// `tyxe_obs::enabled()` load is skipped when observability is off.
mod probe {
    use std::sync::OnceLock;

    use crate::element::DType;
    use tyxe_obs::metrics::{Counter, Gauge};
    use tyxe_obs::trace::SpanGuard;

    /// Transpose variants of the public entry points, probe index order.
    pub const VARIANTS: [&str; 3] = ["nn", "at", "bt"];

    struct Handles {
        flops: Counter,
        /// `[variant][path]` flattened; path 0 = reference, 1 = blocked.
        calls: Vec<Counter>,
    }

    fn handles() -> &'static Handles {
        static H: OnceLock<Handles> = OnceLock::new();
        H.get_or_init(|| {
            // ISA choice is process-constant: publish it once as a
            // presence gauge so snapshots record which kernels ran.
            tyxe_obs::metrics::gauge_tagged(
                "tensor.gemm.isa",
                &[("isa", super::simd_label())],
                "flag",
            )
            .set(1.0);
            Handles {
                flops: tyxe_obs::metrics::counter_tagged("tensor.gemm.flops", &[], "flop"),
                calls: VARIANTS
                    .iter()
                    .flat_map(|v| {
                        ["reference", "blocked"].iter().map(move |p| {
                            tyxe_obs::metrics::counter_tagged(
                                "tensor.gemm.calls",
                                &[("variant", v), ("path", p)],
                                "count",
                            )
                        })
                    })
                    .collect(),
            }
        })
    }

    /// Record panel geometry of the selected blocked microkernel. Tile
    /// shapes differ per dtype (f32 tiles are twice as wide), so the
    /// gauges are dtype-tagged.
    pub fn panels(dt: DType, mr: usize, nr: usize) {
        static G: OnceLock<[(Gauge, Gauge); 2]> = OnceLock::new();
        let gs = G.get_or_init(|| {
            [DType::F32, DType::F64].map(|d| {
                (
                    tyxe_obs::metrics::gauge_tagged(
                        "tensor.gemm.panel_mr",
                        &[("dtype", d.name())],
                        "count",
                    ),
                    tyxe_obs::metrics::gauge_tagged(
                        "tensor.gemm.panel_nr",
                        &[("dtype", d.name())],
                        "count",
                    ),
                )
            })
        });
        let (mr_g, nr_g) = &gs[usize::from(dt == DType::F64)];
        mr_g.set(mr as f64);
        nr_g.set(nr as f64);
    }

    /// One probe per public GEMM call. Returns the call's span guard
    /// (`None` when observability is disabled: one atomic load).
    #[inline]
    pub fn gemm(
        dt: DType,
        variant: usize,
        blocked: bool,
        m: usize,
        k: usize,
        n: usize,
    ) -> Option<SpanGuard> {
        if !tyxe_obs::enabled() {
            return None;
        }
        let h = handles();
        h.flops.add(2 * (m * k * n) as u64);
        h.calls[variant * 2 + blocked as usize].inc();
        let path = if blocked { "blocked" } else { "reference" };
        Some(SpanGuard::enter_with_arg(
            "tensor.gemm",
            format!(
                "{}/{path} {m}x{k}x{n} {} {}",
                VARIANTS[variant],
                super::simd_label(),
                dt
            ),
        ))
    }
}

/// How a kernel combines its finished register accumulators with `C`.
///
/// The two overwrite modes never *read* `C`, so they are safe on
/// uninitialized buffers, and each mirrors one accumulating mode's
/// floating-point recipe exactly (see the module docs).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Acc {
    /// Seed accumulators from `C`, store `acc` (`gemm`/`gemm_at`: `C += A·B`).
    FromC,
    /// Seed from zero, store `C + acc` (`gemm_bt`: fresh dot added once).
    AddDot,
    /// Seed from zero, store `acc` — bit-identical to zero-filled [`Acc::FromC`].
    Overwrite,
    /// Seed from zero, store `0.0 + acc` — bit-identical to zero-filled
    /// [`Acc::AddDot`] (the explicit add keeps `-0.0` dots normalizing to `+0.0`).
    OverwriteDot,
}

/// The single multiply-add recipe all kernels share, native in `E`.
#[inline(always)]
fn madd<E: Element, const FMA: bool>(acc: E, a: E, b: E) -> E {
    if FMA {
        a.mul_add(b, acc)
    } else {
        acc + a * b
    }
}

/// Scalar multiply-add matching this machine's kernel semantics; exported
/// so tests can build independent references (e.g. a direct convolution)
/// that stay bit-comparable to the tensor ops.
pub fn madd_runtime(acc: f64, a: f64, b: f64) -> f64 {
    if uses_fma() {
        a.mul_add(b, acc)
    } else {
        acc + a * b
    }
}

/// `f32` counterpart of [`madd_runtime`]: a *native* f32 multiply-add
/// (not an f64 madd rounded down), matching the f32 kernels.
pub fn madd_runtime_f32(acc: f32, a: f32, b: f32) -> f32 {
    if uses_fma() {
        a.mul_add(b, acc)
    } else {
        acc + a * b
    }
}

// ---------------------------------------------------------------------------
// Reference kernels (retained; also serve products below the size cutoff)
// ---------------------------------------------------------------------------

// Note for the perf log: the seed's `if av == 0.0 { continue; }`
// zero-skip was dropped. Measured on the 256³ dense bench it was a wash
// (≤0.1% either way — the branch predicts perfectly but saves nothing on
// dense operands), and skipping `+= 0.0 * b` terms changes signed-zero
// and NaN propagation, which would break the bitwise contract between
// these references and the branch-free blocked kernels.

#[inline(always)]
fn gemm_ref_body<E: Element, const FMA: bool>(a: &[E], b: &[E], c: &mut [E], m: usize, k: usize, n: usize) {
    for i in 0..m {
        for p in 0..k {
            let av = a[i * k + p];
            let brow = &b[p * n..(p + 1) * n];
            let crow = &mut c[i * n..(i + 1) * n];
            for j in 0..n {
                crow[j] = madd::<E, FMA>(crow[j], av, brow[j]);
            }
        }
    }
}

#[inline(always)]
fn gemm_at_ref_body<E: Element, const FMA: bool>(a: &[E], b: &[E], c: &mut [E], m: usize, k: usize, n: usize) {
    for p in 0..k {
        for i in 0..m {
            let av = a[p * m + i];
            let brow = &b[p * n..(p + 1) * n];
            let crow = &mut c[i * n..(i + 1) * n];
            for j in 0..n {
                crow[j] = madd::<E, FMA>(crow[j], av, brow[j]);
            }
        }
    }
}

#[inline(always)]
fn gemm_bt_ref_body<E: Element, const FMA: bool>(a: &[E], b: &[E], c: &mut [E], m: usize, k: usize, n: usize) {
    for i in 0..m {
        for j in 0..n {
            let arow = &a[i * k..(i + 1) * k];
            let brow = &b[j * k..(j + 1) * k];
            let mut acc = E::ZERO;
            for p in 0..k {
                acc = madd::<E, FMA>(acc, arow[p], brow[p]);
            }
            c[i * n + j] += acc;
        }
    }
}

// Overwrite twins of the reference bodies. The `p == 0` pass *writes*
// `madd(0.0, a, b)` where the accumulating body would have read a
// zero-filled `C` — the identical floating-point operation — and later
// `p` passes accumulate as usual, so no element is ever read before it
// is written and no zero-fill is needed. `k == 0` degenerates to the
// zero-fill itself.

#[inline(always)]
fn gemm_ow_ref_body<E: Element, const FMA: bool>(a: &[E], b: &[E], c: &mut [E], m: usize, k: usize, n: usize) {
    if k == 0 {
        c[..m * n].fill(E::ZERO);
        return;
    }
    for i in 0..m {
        let crow = &mut c[i * n..(i + 1) * n];
        let av = a[i * k];
        let brow = &b[..n];
        for j in 0..n {
            crow[j] = madd::<E, FMA>(E::ZERO, av, brow[j]);
        }
        for p in 1..k {
            let av = a[i * k + p];
            let brow = &b[p * n..(p + 1) * n];
            for j in 0..n {
                crow[j] = madd::<E, FMA>(crow[j], av, brow[j]);
            }
        }
    }
}

#[inline(always)]
fn gemm_at_ow_ref_body<E: Element, const FMA: bool>(a: &[E], b: &[E], c: &mut [E], m: usize, k: usize, n: usize) {
    if k == 0 {
        c[..m * n].fill(E::ZERO);
        return;
    }
    let brow0 = &b[..n];
    for i in 0..m {
        let av = a[i];
        let crow = &mut c[i * n..(i + 1) * n];
        for j in 0..n {
            crow[j] = madd::<E, FMA>(E::ZERO, av, brow0[j]);
        }
    }
    for p in 1..k {
        for i in 0..m {
            let av = a[p * m + i];
            let brow = &b[p * n..(p + 1) * n];
            let crow = &mut c[i * n..(i + 1) * n];
            for j in 0..n {
                crow[j] = madd::<E, FMA>(crow[j], av, brow[j]);
            }
        }
    }
}

#[inline(always)]
fn gemm_bt_ow_ref_body<E: Element, const FMA: bool>(a: &[E], b: &[E], c: &mut [E], m: usize, k: usize, n: usize) {
    for i in 0..m {
        for j in 0..n {
            let arow = &a[i * k..(i + 1) * k];
            let brow = &b[j * k..(j + 1) * k];
            let mut acc = E::ZERO;
            for p in 0..k {
                acc = madd::<E, FMA>(acc, arow[p], brow[p]);
            }
            // `0.0 + acc` mirrors the accumulating variant's add into a
            // zeroed C (normalizes a `-0.0` dot product to `+0.0`).
            c[i * n + j] = E::ZERO + acc;
        }
    }
}

// `#[target_feature]` must sit on a monomorphic fn to take effect, so
// each reference gets one FMA instantiation per dtype; the generic pub
// entry routes to them by `E::DTYPE` (the `same_slice` casts are
// same-type reinterprets, checked by TypeId).
macro_rules! def_ref {
    ($pub_name:ident, $body:ident, $fma64:ident, $fma32:ident, $doc:literal) => {
        #[cfg(target_arch = "x86_64")]
        #[target_feature(enable = "fma")]
        unsafe fn $fma64(a: &[f64], b: &[f64], c: &mut [f64], m: usize, k: usize, n: usize) {
            $body::<f64, true>(a, b, c, m, k, n);
        }

        #[cfg(target_arch = "x86_64")]
        #[target_feature(enable = "fma")]
        unsafe fn $fma32(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
            $body::<f32, true>(a, b, c, m, k, n);
        }

        #[doc = $doc]
        ///
        /// This is the retained naive reference: a plain triple loop
        /// following the shared per-element recipe, native in `E`. The
        /// blocked kernels are bit-identical to it (see the module docs).
        pub fn $pub_name<E: Element>(a: &[E], b: &[E], c: &mut [E], m: usize, k: usize, n: usize) {
            #[cfg(target_arch = "x86_64")]
            if uses_fma() {
                // SAFETY: `uses_fma()` implies the `fma` target feature.
                unsafe {
                    match E::DTYPE {
                        DType::F64 => $fma64(same_slice(a), same_slice(b), same_slice_mut(c), m, k, n),
                        DType::F32 => $fma32(same_slice(a), same_slice(b), same_slice_mut(c), m, k, n),
                    }
                }
                return;
            }
            $body::<E, false>(a, b, c, m, k, n);
        }
    };
}

def_ref!(gemm_ref, gemm_ref_body, gemm_ref_fma_f64, gemm_ref_fma_f32, "Reference `C += A·B` (`A: [m×k]`, `B: [k×n]`).");
def_ref!(gemm_at_ref, gemm_at_ref_body, gemm_at_ref_fma_f64, gemm_at_ref_fma_f32, "Reference `C += Aᵀ·B` (`A: [k×m]`, `B: [k×n]`).");
def_ref!(gemm_bt_ref, gemm_bt_ref_body, gemm_bt_ref_fma_f64, gemm_bt_ref_fma_f32, "Reference `C += A·Bᵀ` (`A: [m×k]`, `B: [n×k]`).");
def_ref!(gemm_ow_ref, gemm_ow_ref_body, gemm_ow_ref_fma_f64, gemm_ow_ref_fma_f32, "Reference overwrite `C = A·B` (`A: [m×k]`, `B: [k×n]`); `C` may be uninitialized.");
def_ref!(gemm_at_ow_ref, gemm_at_ow_ref_body, gemm_at_ow_ref_fma_f64, gemm_at_ow_ref_fma_f32, "Reference overwrite `C = Aᵀ·B` (`A: [k×m]`, `B: [k×n]`); `C` may be uninitialized.");
def_ref!(gemm_bt_ow_ref, gemm_bt_ow_ref_body, gemm_bt_ow_ref_fma_f64, gemm_bt_ow_ref_fma_f32, "Reference overwrite `C = A·Bᵀ` (`A: [m×k]`, `B: [n×k]`); `C` may be uninitialized.");

// ---------------------------------------------------------------------------
// Narrow-shape kernels (m == 1, n == 1, or k == 1)
// ---------------------------------------------------------------------------
//
// Degenerate products — matrix·vector, vector·matrix, outer products —
// are a terrible fit for the packed-panel path: an `n == 1` product
// pads its B micropanels out to NR columns and burns NR× the madds, and
// packing overhead dwarfs the O(m·k) useful work. They are also a bad
// fit for the scalar references, which leave lanes and FMA ports idle.
//
// The kernels below keep the exact per-element recipe (each output is
// one p-ascending madd chain; `bt` dots start from 0.0 and are added
// once) but restructure the *loops* so the work vectorizes: dot-shaped
// products run four independent rows per pass (independent chains hide
// FMA latency), axpy-shaped products make the contiguous operand row
// the inner loop, and outer products stream the contiguous side.
// Multiplication order inside a madd is irrelevant to the result
// (IEEE multiply is commutative), so pairing the swapped operand order
// of some calls below with the shared recipe is still bit-identical to
// the references — which the `narrow_matches_reference_bitwise` test
// pins down.

/// `c[i] ⊕= chain_p(rows[i·k + p] · coeff[p])` for `m` contiguous rows:
/// the dot-shaped narrow case (`nn`/`bt` with `n == 1`, `bt` with
/// `m == 1` after swapping roles). Four independent chains per pass.
#[inline(always)]
fn narrow_dots_body<E: Element, const FMA: bool>(
    rows: &[E],
    coeff: &[E],
    c: &mut [E],
    m: usize,
    k: usize,
    mode: Acc,
) {
    #[inline(always)]
    fn store<E: Element>(dst: &mut E, acc: E, mode: Acc) {
        *dst = match mode {
            Acc::FromC | Acc::Overwrite => acc,
            Acc::AddDot => *dst + acc,
            Acc::OverwriteDot => E::ZERO + acc,
        };
    }
    let mut i = 0;
    while i + 4 <= m {
        let r0 = &rows[i * k..i * k + k];
        let r1 = &rows[(i + 1) * k..(i + 1) * k + k];
        let r2 = &rows[(i + 2) * k..(i + 2) * k + k];
        let r3 = &rows[(i + 3) * k..(i + 3) * k + k];
        // Only FromC seeds from C; the other modes must not read it
        // (Overwrite/OverwriteDot accept uninitialized output).
        let (mut s0, mut s1, mut s2, mut s3) = if mode == Acc::FromC {
            (c[i], c[i + 1], c[i + 2], c[i + 3])
        } else {
            (E::ZERO, E::ZERO, E::ZERO, E::ZERO)
        };
        for p in 0..k {
            let bv = coeff[p];
            s0 = madd::<E, FMA>(s0, r0[p], bv);
            s1 = madd::<E, FMA>(s1, r1[p], bv);
            s2 = madd::<E, FMA>(s2, r2[p], bv);
            s3 = madd::<E, FMA>(s3, r3[p], bv);
        }
        store(&mut c[i], s0, mode);
        store(&mut c[i + 1], s1, mode);
        store(&mut c[i + 2], s2, mode);
        store(&mut c[i + 3], s3, mode);
        i += 4;
    }
    while i < m {
        let row = &rows[i * k..i * k + k];
        let mut s = if mode == Acc::FromC { c[i] } else { E::ZERO };
        for p in 0..k {
            s = madd::<E, FMA>(s, row[p], coeff[p]);
        }
        store(&mut c[i], s, mode);
        i += 1;
    }
}

/// `c[j] ⊕= chain_p(coeff[p] · rows[p·stride + j])` for `l` outputs:
/// the axpy-shaped narrow case (`at` with `n == 1`, `nn`/`at` with
/// `m == 1`), `p` outermost so the contiguous operand row is the vector
/// inner loop. `stride` is the full row length of `rows`; callers
/// working a column window pass a pre-offset `rows` slice and keep the
/// original stride. `overwrite` replays the ow-reference recipe: the
/// `p == 0` pass writes `madd(0.0, …)` instead of reading `C`.
#[inline(always)]
fn narrow_axpy_body<E: Element, const FMA: bool>(
    coeff: &[E],
    rows: &[E],
    c: &mut [E],
    l: usize,
    stride: usize,
    k: usize,
    overwrite: bool,
) {
    let mut p0 = 0;
    if overwrite {
        if k == 0 {
            c[..l].fill(E::ZERO);
            return;
        }
        let av = coeff[0];
        let row = &rows[..l];
        for j in 0..l {
            c[j] = madd::<E, FMA>(E::ZERO, av, row[j]);
        }
        p0 = 1;
    }
    for p in p0..k {
        let av = coeff[p];
        let row = &rows[p * stride..p * stride + l];
        let crow = &mut c[..l];
        for j in 0..l {
            crow[j] = madd::<E, FMA>(crow[j], av, row[j]);
        }
    }
}

/// `c[i,j] ⊕= a[i] · b[j]`: the `k == 1` outer-product case for all
/// three variants (the length-1 "chain" is a single madd).
#[inline(always)]
fn narrow_outer_body<E: Element, const FMA: bool>(
    a: &[E],
    b: &[E],
    c: &mut [E],
    m: usize,
    n: usize,
    mode: Acc,
) {
    for i in 0..m {
        let av = a[i];
        let crow = &mut c[i * n..(i + 1) * n];
        match mode {
            Acc::FromC => {
                for j in 0..n {
                    crow[j] = madd::<E, FMA>(crow[j], av, b[j]);
                }
            }
            Acc::Overwrite => {
                for j in 0..n {
                    crow[j] = madd::<E, FMA>(E::ZERO, av, b[j]);
                }
            }
            Acc::AddDot => {
                for j in 0..n {
                    crow[j] += madd::<E, FMA>(E::ZERO, av, b[j]);
                }
            }
            Acc::OverwriteDot => {
                for j in 0..n {
                    crow[j] = E::ZERO + madd::<E, FMA>(E::ZERO, av, b[j]);
                }
            }
        }
    }
}

/// ISA-dispatched monomorphic wrappers for one narrow body at one dtype:
/// plain scalar on Base, AVX2-vectorized without FMA on `Isa::Avx2`, and
/// AVX2+FMA otherwise (the AVX-512 machines run the 256-bit build of the
/// same recipe — these kernels are load-bound, not ALU-bound). The
/// generic dispatchers below route to them by `E::DTYPE`.
macro_rules! def_narrow {
    ($name:ident, $e:ty, $body:ident, $avx2:ident, $fma:ident,
     ($($arg:ident : $ty:ty),*)) => {
        #[cfg(target_arch = "x86_64")]
        #[target_feature(enable = "avx2")]
        unsafe fn $avx2($($arg: $ty),*) {
            $body::<$e, false>($($arg),*);
        }

        #[cfg(target_arch = "x86_64")]
        #[target_feature(enable = "avx2", enable = "fma")]
        unsafe fn $fma($($arg: $ty),*) {
            $body::<$e, true>($($arg),*);
        }

        fn $name($($arg: $ty),*) {
            #[cfg(target_arch = "x86_64")]
            match isa() {
                // SAFETY: `isa()` verified the matching target features.
                Isa::Avx2Fma | Isa::Avx512Fma => return unsafe { $fma($($arg),*) },
                Isa::Avx2 => return unsafe { $avx2($($arg),*) },
                Isa::Base => {}
            }
            $body::<$e, false>($($arg),*);
        }
    };
}

def_narrow!(narrow_dots_f64, f64, narrow_dots_body, narrow_dots_avx2_f64, narrow_dots_fma_f64,
    (rows: &[f64], coeff: &[f64], c: &mut [f64], m: usize, k: usize, mode: Acc));
def_narrow!(narrow_dots_f32, f32, narrow_dots_body, narrow_dots_avx2_f32, narrow_dots_fma_f32,
    (rows: &[f32], coeff: &[f32], c: &mut [f32], m: usize, k: usize, mode: Acc));
def_narrow!(narrow_axpy_f64, f64, narrow_axpy_body, narrow_axpy_avx2_f64, narrow_axpy_fma_f64,
    (coeff: &[f64], rows: &[f64], c: &mut [f64], l: usize, stride: usize, k: usize, overwrite: bool));
def_narrow!(narrow_axpy_f32, f32, narrow_axpy_body, narrow_axpy_avx2_f32, narrow_axpy_fma_f32,
    (coeff: &[f32], rows: &[f32], c: &mut [f32], l: usize, stride: usize, k: usize, overwrite: bool));
def_narrow!(narrow_outer_f64, f64, narrow_outer_body, narrow_outer_avx2_f64, narrow_outer_fma_f64,
    (a: &[f64], b: &[f64], c: &mut [f64], m: usize, n: usize, mode: Acc));
def_narrow!(narrow_outer_f32, f32, narrow_outer_body, narrow_outer_avx2_f32, narrow_outer_fma_f32,
    (a: &[f32], b: &[f32], c: &mut [f32], m: usize, n: usize, mode: Acc));

fn narrow_dots<E: Element>(rows: &[E], coeff: &[E], c: &mut [E], m: usize, k: usize, mode: Acc) {
    match E::DTYPE {
        DType::F64 => narrow_dots_f64(same_slice(rows), same_slice(coeff), same_slice_mut(c), m, k, mode),
        DType::F32 => narrow_dots_f32(same_slice(rows), same_slice(coeff), same_slice_mut(c), m, k, mode),
    }
}

fn narrow_axpy<E: Element>(coeff: &[E], rows: &[E], c: &mut [E], l: usize, stride: usize, k: usize, overwrite: bool) {
    match E::DTYPE {
        DType::F64 => narrow_axpy_f64(same_slice(coeff), same_slice(rows), same_slice_mut(c), l, stride, k, overwrite),
        DType::F32 => narrow_axpy_f32(same_slice(coeff), same_slice(rows), same_slice_mut(c), l, stride, k, overwrite),
    }
}

fn narrow_outer<E: Element>(a: &[E], b: &[E], c: &mut [E], m: usize, n: usize, mode: Acc) {
    match E::DTYPE {
        DType::F64 => narrow_outer_f64(same_slice(a), same_slice(b), same_slice_mut(c), m, n, mode),
        DType::F32 => narrow_outer_f32(same_slice(a), same_slice(b), same_slice_mut(c), m, n, mode),
    }
}

// Parallel drivers over the single-threaded cores. Each partitions `C`
// along an axis that keeps every output element's whole madd chain on
// one thread — rows for the dot/outer shapes, columns for axpy — so
// thread count can never reorder a reduction, exactly like the blocked
// driver's row partitioning. Products below the blocked path's work
// cutoff stay inline; larger ones go through the pool (and emit the
// same `tensor.gemm.block` per-chunk span, so traces keep showing where
// GEMM work actually ran).

fn narrow_dots_par<E: Element>(rows: &[E], coeff: &[E], c: &mut [E], m: usize, k: usize, mode: Acc) {
    if m * k < BLOCK_MIN_MADDS {
        return narrow_dots(rows, coeff, c, m, k, mode);
    }
    let chunk = tyxe_par::chunk_len(m, 4, 4);
    tyxe_par::parallel_for_chunks(c, chunk, |start, c_chunk| {
        let _span = tyxe_obs::span!("tensor.gemm.block");
        let rows_here = c_chunk.len();
        narrow_dots(&rows[start * k..(start + rows_here) * k], coeff, c_chunk, rows_here, k, mode);
    });
}

fn narrow_axpy_par<E: Element>(coeff: &[E], rows: &[E], c: &mut [E], l: usize, k: usize, overwrite: bool) {
    if l * k < BLOCK_MIN_MADDS {
        return narrow_axpy(coeff, rows, c, l, l, k, overwrite);
    }
    let chunk = tyxe_par::chunk_len(l, 8, 8);
    tyxe_par::parallel_for_chunks(c, chunk, |start, c_chunk| {
        let _span = tyxe_obs::span!("tensor.gemm.block");
        // Column window [start, start+len): offset the rows base, keep
        // the full row stride.
        narrow_axpy(coeff, &rows[start..], c_chunk, c_chunk.len(), l, k, overwrite);
    });
}

fn narrow_outer_par<E: Element>(a: &[E], b: &[E], c: &mut [E], m: usize, n: usize, mode: Acc) {
    if m * n < BLOCK_MIN_MADDS {
        return narrow_outer(a, b, c, m, n, mode);
    }
    let chunk = tyxe_par::chunk_len(m, 1, 1) * n;
    tyxe_par::parallel_for_chunks(c, chunk, |start, c_chunk| {
        let _span = tyxe_obs::span!("tensor.gemm.block");
        let (i0, rows_here) = (start / n, c_chunk.len() / n);
        narrow_outer(&a[i0..i0 + rows_here], b, c_chunk, rows_here, n, mode);
    });
}

/// Whether the public dispatchers should take the narrow path: some
/// dimension is degenerate and none is empty (empty products fall
/// through to the references, which handle `k == 0` zero-fills).
#[inline]
fn narrow_dims(m: usize, k: usize, n: usize) -> bool {
    m.min(k).min(n) == 1
}

/// Narrow `nn` dispatch (`mode` is `FromC` or `Overwrite`).
fn narrow_nn<E: Element>(a: &[E], b: &[E], c: &mut [E], m: usize, k: usize, n: usize, mode: Acc) {
    if k == 1 {
        narrow_outer_par(&a[..m], &b[..n], c, m, n, mode);
    } else if m == 1 {
        narrow_axpy_par(&a[..k], b, c, n, k, mode == Acc::Overwrite);
    } else {
        // n == 1: B is [k×1], i.e. a contiguous coefficient column.
        narrow_dots_par(a, &b[..k], c, m, k, mode);
    }
}

/// Narrow `at` dispatch (`A: [k×m]`; `mode` is `FromC` or `Overwrite`).
fn narrow_at<E: Element>(a: &[E], b: &[E], c: &mut [E], m: usize, k: usize, n: usize, mode: Acc) {
    if k == 1 {
        // A is [1×m]: an outer product, same as nn.
        narrow_outer_par(&a[..m], &b[..n], c, m, n, mode);
    } else if m == 1 {
        // A is [k×1]: the coefficient column of an axpy over B's rows.
        narrow_axpy_par(&a[..k], b, c, n, k, mode == Acc::Overwrite);
    } else {
        // n == 1: p-major A rows are contiguous — axpy over A's rows
        // with B ([k×1]) as the coefficients.
        narrow_axpy_par(&b[..k], a, c, m, k, mode == Acc::Overwrite);
    }
}

/// Narrow `bt` dispatch (`B: [n×k]`; `mode` is `AddDot` or `OverwriteDot`).
fn narrow_bt<E: Element>(a: &[E], b: &[E], c: &mut [E], m: usize, k: usize, n: usize, mode: Acc) {
    if k == 1 {
        // B is [n×1], contiguous: an outer product with dot-mode stores.
        narrow_outer_par(&a[..m], &b[..n], c, m, n, mode);
    } else if m == 1 {
        // One A row dotted against every B row.
        narrow_dots_par(b, &a[..k], c, n, k, mode);
    } else {
        // n == 1: one B row dotted against every A row.
        narrow_dots_par(a, &b[..k], c, m, k, mode);
    }
}

// ---------------------------------------------------------------------------
// Packing
// ---------------------------------------------------------------------------

/// Packs `rows ≤ MR` rows of the logical `A[i,p]` (element stride
/// `a[i·ris + p·pis]`) into a `k × MR` p-major micropanel, zero-padding
/// missing rows.
fn pack_a<E: Element, const MR: usize>(
    a: &[E],
    ris: usize,
    pis: usize,
    i0: usize,
    rows: usize,
    k: usize,
    ap: &mut [E],
) {
    for p in 0..k {
        let dst = &mut ap[p * MR..(p + 1) * MR];
        for (ii, slot) in dst.iter_mut().enumerate() {
            *slot = if ii < rows { a[(i0 + ii) * ris + p * pis] } else { E::ZERO };
        }
    }
}

/// Packs `cols ≤ NR` columns of the logical `B[p,j]` (element stride
/// `b[p·pis + j·cis]`) into a `k × NR` p-major micropanel, zero-padding
/// missing columns. The pad multiplies into accumulator lanes that are
/// never stored.
fn pack_b<E: Element, const NR: usize>(
    b: &[E],
    pis: usize,
    cis: usize,
    j0: usize,
    cols: usize,
    k: usize,
    bp: &mut [E],
) {
    for p in 0..k {
        let dst = &mut bp[p * NR..(p + 1) * NR];
        for (jj, slot) in dst.iter_mut().enumerate() {
            *slot = if jj < cols { b[p * pis + (j0 + jj) * cis] } else { E::ZERO };
        }
    }
}

// ---------------------------------------------------------------------------
// Microkernel
// ---------------------------------------------------------------------------

/// An MR×NR register tile over packed panels. `mode` selects how the
/// accumulators meet `C` (see [`Acc`]); only [`Acc::FromC`] reads `C`
/// before the store, so both overwrite modes accept uninitialized
/// output. The full-tile fast path has compile-time bounds so LLVM
/// keeps `acc` entirely in vector registers.
#[inline(always)]
fn micro_body<E: Element, const MR: usize, const NR: usize, const FMA: bool>(
    k: usize,
    ap: &[E],
    bp: &[E],
    c: &mut [E],
    ldc: usize,
    rows: usize,
    cols: usize,
    mode: Acc,
) {
    #[inline(always)]
    fn store<E: Element>(dst: &mut E, acc: E, mode: Acc) {
        *dst = match mode {
            Acc::FromC | Acc::Overwrite => acc,
            Acc::AddDot => *dst + acc,
            Acc::OverwriteDot => E::ZERO + acc,
        };
    }
    let mut acc = [[E::ZERO; NR]; MR];
    if rows == MR && cols == NR {
        if mode == Acc::FromC {
            for ii in 0..MR {
                for jj in 0..NR {
                    acc[ii][jj] = c[ii * ldc + jj];
                }
            }
        }
        for p in 0..k {
            let av: &[E; MR] = ap[p * MR..p * MR + MR].try_into().unwrap();
            let bv: &[E; NR] = bp[p * NR..p * NR + NR].try_into().unwrap();
            for ii in 0..MR {
                let a = av[ii];
                for jj in 0..NR {
                    acc[ii][jj] = madd::<E, FMA>(acc[ii][jj], a, bv[jj]);
                }
            }
        }
        for ii in 0..MR {
            for jj in 0..NR {
                store(&mut c[ii * ldc + jj], acc[ii][jj], mode);
            }
        }
        return;
    }
    // Edge tile: dynamic bounds on the C side, padded panels on the
    // packed side; the extra lanes are discarded below.
    if mode == Acc::FromC {
        for ii in 0..rows {
            for jj in 0..cols {
                acc[ii][jj] = c[ii * ldc + jj];
            }
        }
    }
    for p in 0..k {
        let av: &[E; MR] = ap[p * MR..p * MR + MR].try_into().unwrap();
        let bv: &[E; NR] = bp[p * NR..p * NR + NR].try_into().unwrap();
        for ii in 0..MR {
            let a = av[ii];
            for jj in 0..NR {
                acc[ii][jj] = madd::<E, FMA>(acc[ii][jj], a, bv[jj]);
            }
        }
    }
    for ii in 0..rows {
        for jj in 0..cols {
            store(&mut c[ii * ldc + jj], acc[ii][jj], mode);
        }
    }
}

type MicroFn<E> = unsafe fn(usize, &[E], &[E], &mut [E], usize, usize, usize, Acc);

/// Microkernel instantiations. Tile shapes were tuned on the dense 256³
/// bench (see `results/BENCH_TENSOR.json`): wider tiles starve the
/// narrow ISAs of registers, narrower ones starve the wide ISAs of
/// independent accumulator chains. f32 tiles double NR relative to f64
/// on the AVX ISAs — same register count, twice the lanes per register.
/// The autovectorized bodies cap out around 32 accumulator *registers*
/// (LLVM's SROA promotion limit; bigger tiles spill to the stack), so
/// both AVX-512 kernels are hand-written with intrinsics to hold a full
/// 8×2-zmm register tile.
unsafe fn micro_base_f64(
    k: usize, ap: &[f64], bp: &[f64], c: &mut [f64], ldc: usize, rows: usize, cols: usize, mode: Acc,
) {
    micro_body::<f64, 2, 8, false>(k, ap, bp, c, ldc, rows, cols, mode);
}

unsafe fn micro_base_f32(
    k: usize, ap: &[f32], bp: &[f32], c: &mut [f32], ldc: usize, rows: usize, cols: usize, mode: Acc,
) {
    micro_body::<f32, 2, 8, false>(k, ap, bp, c, ldc, rows, cols, mode);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn micro_avx2_f64(
    k: usize, ap: &[f64], bp: &[f64], c: &mut [f64], ldc: usize, rows: usize, cols: usize, mode: Acc,
) {
    micro_body::<f64, 4, 8, false>(k, ap, bp, c, ldc, rows, cols, mode);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn micro_avx2_f32(
    k: usize, ap: &[f32], bp: &[f32], c: &mut [f32], ldc: usize, rows: usize, cols: usize, mode: Acc,
) {
    micro_body::<f32, 4, 16, false>(k, ap, bp, c, ldc, rows, cols, mode);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn micro_avx2_fma_f64(
    k: usize, ap: &[f64], bp: &[f64], c: &mut [f64], ldc: usize, rows: usize, cols: usize, mode: Acc,
) {
    micro_body::<f64, 4, 8, true>(k, ap, bp, c, ldc, rows, cols, mode);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn micro_avx2_fma_f32(
    k: usize, ap: &[f32], bp: &[f32], c: &mut [f32], ldc: usize, rows: usize, cols: usize, mode: Acc,
) {
    micro_body::<f32, 4, 16, true>(k, ap, bp, c, ldc, rows, cols, mode);
}

/// AVX-512 f64 microkernel, written with explicit intrinsics: an 8×16
/// tile needs 16 zmm accumulators, and a `[[f64; 16]; 8]` Rust array is
/// 128 scalars — past LLVM's SROA promotion limit, so the autovectorized
/// generic body spills every accumulator to the stack after each FMA
/// and runs store-bound (measured ~2× slower). Holding the tile in 16
/// `__m512d` values keeps it in registers. The per-element recipe is
/// unchanged — one `vfmaddpd` (= `mul_add`) per `p`, `p` ascending —
/// so results stay bit-identical to the generic body and references,
/// which handle the (rare) partial edge tiles below.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f", enable = "fma")]
unsafe fn micro_avx512_fma_f64(
    k: usize, ap: &[f64], bp: &[f64], c: &mut [f64], ldc: usize, rows: usize, cols: usize, mode: Acc,
) {
    use core::arch::x86_64::*;
    const MR: usize = 8;
    const NR: usize = 16;
    if rows != MR || cols != NR {
        return micro_body::<f64, MR, NR, true>(k, ap, bp, c, ldc, rows, cols, mode);
    }
    debug_assert!(ap.len() >= k * MR && bp.len() >= k * NR);
    debug_assert!(c.len() >= (MR - 1) * ldc + NR);
    let mut acc = [[_mm512_setzero_pd(); 2]; MR];
    if mode == Acc::FromC {
        for (ii, a) in acc.iter_mut().enumerate() {
            let row = c.as_ptr().add(ii * ldc);
            a[0] = _mm512_loadu_pd(row);
            a[1] = _mm512_loadu_pd(row.add(8));
        }
    }
    let mut a_ptr = ap.as_ptr();
    let mut b_ptr = bp.as_ptr();
    for _ in 0..k {
        let b0 = _mm512_loadu_pd(b_ptr);
        let b1 = _mm512_loadu_pd(b_ptr.add(8));
        for (ii, a) in acc.iter_mut().enumerate() {
            let av = _mm512_set1_pd(*a_ptr.add(ii));
            a[0] = _mm512_fmadd_pd(av, b0, a[0]);
            a[1] = _mm512_fmadd_pd(av, b1, a[1]);
        }
        a_ptr = a_ptr.add(MR);
        b_ptr = b_ptr.add(NR);
    }
    for (ii, a) in acc.iter().enumerate() {
        let dst = c.as_mut_ptr().add(ii * ldc);
        match mode {
            Acc::FromC | Acc::Overwrite => {
                _mm512_storeu_pd(dst, a[0]);
                _mm512_storeu_pd(dst.add(8), a[1]);
            }
            Acc::AddDot => {
                _mm512_storeu_pd(dst, _mm512_add_pd(_mm512_loadu_pd(dst), a[0]));
                _mm512_storeu_pd(dst.add(8), _mm512_add_pd(_mm512_loadu_pd(dst.add(8)), a[1]));
            }
            Acc::OverwriteDot => {
                // `0.0 + acc` mirrors the reference's signed-zero
                // normalization of a `-0.0` dot product.
                _mm512_storeu_pd(dst, _mm512_add_pd(_mm512_setzero_pd(), a[0]));
                _mm512_storeu_pd(dst.add(8), _mm512_add_pd(_mm512_setzero_pd(), a[1]));
            }
        }
    }
}

/// AVX-512 f32 microkernel: the same 8-row × 2-zmm register tile as the
/// f64 kernel, but each zmm holds 16 f32 lanes, so the tile is 8×32.
/// Same rationale (a `[[f32; 32]; 8]` array spills) and the same
/// p-ascending single-`vfmaddps` recipe, so results stay bit-identical
/// to the generic f32 body and references.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f", enable = "fma")]
unsafe fn micro_avx512_fma_f32(
    k: usize, ap: &[f32], bp: &[f32], c: &mut [f32], ldc: usize, rows: usize, cols: usize, mode: Acc,
) {
    use core::arch::x86_64::*;
    const MR: usize = 8;
    const NR: usize = 32;
    if rows != MR || cols != NR {
        return micro_body::<f32, MR, NR, true>(k, ap, bp, c, ldc, rows, cols, mode);
    }
    debug_assert!(ap.len() >= k * MR && bp.len() >= k * NR);
    debug_assert!(c.len() >= (MR - 1) * ldc + NR);
    let mut acc = [[_mm512_setzero_ps(); 2]; MR];
    if mode == Acc::FromC {
        for (ii, a) in acc.iter_mut().enumerate() {
            let row = c.as_ptr().add(ii * ldc);
            a[0] = _mm512_loadu_ps(row);
            a[1] = _mm512_loadu_ps(row.add(16));
        }
    }
    let mut a_ptr = ap.as_ptr();
    let mut b_ptr = bp.as_ptr();
    for _ in 0..k {
        let b0 = _mm512_loadu_ps(b_ptr);
        let b1 = _mm512_loadu_ps(b_ptr.add(16));
        for (ii, a) in acc.iter_mut().enumerate() {
            let av = _mm512_set1_ps(*a_ptr.add(ii));
            a[0] = _mm512_fmadd_ps(av, b0, a[0]);
            a[1] = _mm512_fmadd_ps(av, b1, a[1]);
        }
        a_ptr = a_ptr.add(MR);
        b_ptr = b_ptr.add(NR);
    }
    for (ii, a) in acc.iter().enumerate() {
        let dst = c.as_mut_ptr().add(ii * ldc);
        match mode {
            Acc::FromC | Acc::Overwrite => {
                _mm512_storeu_ps(dst, a[0]);
                _mm512_storeu_ps(dst.add(16), a[1]);
            }
            Acc::AddDot => {
                _mm512_storeu_ps(dst, _mm512_add_ps(_mm512_loadu_ps(dst), a[0]));
                _mm512_storeu_ps(dst.add(16), _mm512_add_ps(_mm512_loadu_ps(dst.add(16)), a[1]));
            }
            Acc::OverwriteDot => {
                // `0.0 + acc` mirrors the reference's signed-zero
                // normalization of a `-0.0` dot product.
                _mm512_storeu_ps(dst, _mm512_add_ps(_mm512_setzero_ps(), a[0]));
                _mm512_storeu_ps(dst.add(16), _mm512_add_ps(_mm512_setzero_ps(), a[1]));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Blocked driver
// ---------------------------------------------------------------------------

/// Strided view of a logical operand: `elem(r, c) = data[r·rs + c·cs]`.
#[derive(Clone, Copy)]
struct StridedMat<'a, E: Element> {
    data: &'a [E],
    rs: usize,
    cs: usize,
}

/// Same-type reinterpret of a strided view (TypeId-checked), bridging
/// the generic dispatchers to the monomorphic per-dtype paths.
#[inline(always)]
fn recast_mat<A: Element, B: Element>(m: StridedMat<'_, A>) -> StridedMat<'_, B> {
    StridedMat { data: same_slice(m.data), rs: m.rs, cs: m.cs }
}

/// Packed-panel blocked GEMM: columns are processed in `NC`-wide blocks
/// (B packed once per block into NR-wide micropanels), rows in
/// MR-aligned blocks partitioned across the thread pool (each task packs
/// its own A micropanels). `k` is deliberately never tiled — see the
/// module-level determinism contract.
fn gemm_blocked_driver<E: Element, const MR: usize, const NR: usize>(
    a: StridedMat<'_, E>,
    b: StridedMat<'_, E>,
    c: &mut [E],
    m: usize,
    k: usize,
    n: usize,
    mode: Acc,
    micro: MicroFn<E>,
) {
    if m == 0 || n == 0 {
        return;
    }
    let mut bp = vec![E::ZERO; k.max(1) * NR * NC.div_ceil(NR)];
    let mut j0 = 0;
    while j0 < n {
        let ncb = NC.min(n - j0);
        let npanels = ncb.div_ceil(NR);
        let panel = k * NR;
        for jp in 0..npanels {
            let j = j0 + jp * NR;
            pack_b::<E, NR>(
                b.data,
                b.rs,
                b.cs,
                j,
                NR.min(n - j),
                k,
                &mut bp[jp * panel..(jp + 1) * panel],
            );
        }
        let bp = &bp[..npanels * panel.max(1)];
        let chunk_rows = tyxe_par::chunk_len(m, MR, MR);
        tyxe_par::parallel_for_chunks(c, chunk_rows * n, |start, c_chunk| {
            // Recorded on whichever thread (worker or drain-assisting
            // caller) executes the chunk, so traces show the blocked
            // GEMM's actual parallel placement.
            let _span = tyxe_obs::span!("tensor.gemm.block");
            let i_base = start / n;
            let rows_here = c_chunk.len() / n;
            let mut ap = vec![E::ZERO; k.max(1) * MR];
            let mut i = 0;
            while i < rows_here {
                let rows = MR.min(rows_here - i);
                pack_a::<E, MR>(a.data, a.rs, a.cs, i_base + i, rows, k, &mut ap);
                for jp in 0..npanels {
                    let j = j0 + jp * NR;
                    let cols = NR.min(n - j);
                    // SAFETY: `micro` was selected to match the features
                    // `isa()` detected on this CPU.
                    unsafe {
                        micro(k, &ap, &bp[jp * panel..(jp + 1) * panel], &mut c_chunk[i * n + j..], n, rows, cols, mode);
                    }
                }
                i += MR;
            }
        });
        j0 += ncb;
    }
}

fn blocked_dispatch_f64(a: StridedMat<'_, f64>, b: StridedMat<'_, f64>, c: &mut [f64], m: usize, k: usize, n: usize, mode: Acc) {
    if tyxe_obs::enabled() {
        match isa() {
            #[cfg(target_arch = "x86_64")]
            Isa::Avx512Fma => probe::panels(DType::F64, 8, 16),
            #[cfg(target_arch = "x86_64")]
            Isa::Avx2Fma | Isa::Avx2 => probe::panels(DType::F64, 4, 8),
            _ => probe::panels(DType::F64, 2, 8),
        }
    }
    match isa() {
        #[cfg(target_arch = "x86_64")]
        Isa::Avx512Fma => gemm_blocked_driver::<f64, 8, 16>(a, b, c, m, k, n, mode, micro_avx512_fma_f64),
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2Fma => gemm_blocked_driver::<f64, 4, 8>(a, b, c, m, k, n, mode, micro_avx2_fma_f64),
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2 => gemm_blocked_driver::<f64, 4, 8>(a, b, c, m, k, n, mode, micro_avx2_f64),
        _ => gemm_blocked_driver::<f64, 2, 8>(a, b, c, m, k, n, mode, micro_base_f64),
    }
}

fn blocked_dispatch_f32(a: StridedMat<'_, f32>, b: StridedMat<'_, f32>, c: &mut [f32], m: usize, k: usize, n: usize, mode: Acc) {
    if tyxe_obs::enabled() {
        match isa() {
            #[cfg(target_arch = "x86_64")]
            Isa::Avx512Fma => probe::panels(DType::F32, 8, 32),
            #[cfg(target_arch = "x86_64")]
            Isa::Avx2Fma | Isa::Avx2 => probe::panels(DType::F32, 4, 16),
            _ => probe::panels(DType::F32, 2, 8),
        }
    }
    match isa() {
        #[cfg(target_arch = "x86_64")]
        Isa::Avx512Fma => gemm_blocked_driver::<f32, 8, 32>(a, b, c, m, k, n, mode, micro_avx512_fma_f32),
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2Fma => gemm_blocked_driver::<f32, 4, 16>(a, b, c, m, k, n, mode, micro_avx2_fma_f32),
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2 => gemm_blocked_driver::<f32, 4, 16>(a, b, c, m, k, n, mode, micro_avx2_f32),
        _ => gemm_blocked_driver::<f32, 2, 8>(a, b, c, m, k, n, mode, micro_base_f32),
    }
}

fn blocked_dispatch<E: Element>(a: StridedMat<'_, E>, b: StridedMat<'_, E>, c: &mut [E], m: usize, k: usize, n: usize, mode: Acc) {
    match E::DTYPE {
        DType::F64 => blocked_dispatch_f64(recast_mat(a), recast_mat(b), same_slice_mut(c), m, k, n, mode),
        DType::F32 => blocked_dispatch_f32(recast_mat(a), recast_mat(b), same_slice_mut(c), m, k, n, mode),
    }
}

// ---------------------------------------------------------------------------
// Forced-blocked entry points (exercised directly by the property tests)
// ---------------------------------------------------------------------------

/// Blocked `C += A·B`, bypassing the small-size cutoff.
pub fn gemm_blocked<E: Element>(a: &[E], b: &[E], c: &mut [E], m: usize, k: usize, n: usize) {
    blocked_dispatch(
        StridedMat { data: a, rs: k, cs: 1 },
        StridedMat { data: b, rs: n, cs: 1 },
        c, m, k, n, Acc::FromC,
    );
}

/// Blocked `C += Aᵀ·B` (`A: [k×m]`), bypassing the small-size cutoff.
pub fn gemm_at_blocked<E: Element>(a: &[E], b: &[E], c: &mut [E], m: usize, k: usize, n: usize) {
    blocked_dispatch(
        StridedMat { data: a, rs: 1, cs: m },
        StridedMat { data: b, rs: n, cs: 1 },
        c, m, k, n, Acc::FromC,
    );
}

/// Blocked `C += A·Bᵀ` (`B: [n×k]`), bypassing the small-size cutoff.
pub fn gemm_bt_blocked<E: Element>(a: &[E], b: &[E], c: &mut [E], m: usize, k: usize, n: usize) {
    blocked_dispatch(
        StridedMat { data: a, rs: k, cs: 1 },
        StridedMat { data: b, rs: 1, cs: k },
        c, m, k, n, Acc::AddDot,
    );
}

/// Blocked overwrite `C = A·B`, bypassing the small-size cutoff.
pub fn gemm_ow_blocked<E: Element>(a: &[E], b: &[E], c: &mut [E], m: usize, k: usize, n: usize) {
    blocked_dispatch(
        StridedMat { data: a, rs: k, cs: 1 },
        StridedMat { data: b, rs: n, cs: 1 },
        c, m, k, n, Acc::Overwrite,
    );
}

/// Blocked overwrite `C = Aᵀ·B` (`A: [k×m]`), bypassing the small-size cutoff.
pub fn gemm_at_ow_blocked<E: Element>(a: &[E], b: &[E], c: &mut [E], m: usize, k: usize, n: usize) {
    blocked_dispatch(
        StridedMat { data: a, rs: 1, cs: m },
        StridedMat { data: b, rs: n, cs: 1 },
        c, m, k, n, Acc::Overwrite,
    );
}

/// Blocked overwrite `C = A·Bᵀ` (`B: [n×k]`), bypassing the small-size cutoff.
pub fn gemm_bt_ow_blocked<E: Element>(a: &[E], b: &[E], c: &mut [E], m: usize, k: usize, n: usize) {
    blocked_dispatch(
        StridedMat { data: a, rs: k, cs: 1 },
        StridedMat { data: b, rs: 1, cs: k },
        c, m, k, n, Acc::OverwriteDot,
    );
}

// ---------------------------------------------------------------------------
// Public dispatching entry points (used by matmul / conv / linalg)
// ---------------------------------------------------------------------------

/// `C += A·B` — narrow kernels on degenerate shapes, blocked + parallel
/// above the size cutoff, reference below. Bit-identical every way.
pub fn gemm<E: Element>(a: &[E], b: &[E], c: &mut [E], m: usize, k: usize, n: usize) {
    if narrow_dims(m, k, n) {
        let _span = probe::gemm(E::DTYPE, 0, false, m, k, n);
        return narrow_nn(a, b, c, m, k, n, Acc::FromC);
    }
    let blocked = m * k * n >= BLOCK_MIN_MADDS;
    let _span = probe::gemm(E::DTYPE, 0, blocked, m, k, n);
    if blocked {
        gemm_blocked(a, b, c, m, k, n);
    } else {
        gemm_ref(a, b, c, m, k, n);
    }
}

/// `C += Aᵀ·B` where `A` is `[k×m]`.
pub fn gemm_at<E: Element>(a: &[E], b: &[E], c: &mut [E], m: usize, k: usize, n: usize) {
    if narrow_dims(m, k, n) {
        let _span = probe::gemm(E::DTYPE, 1, false, m, k, n);
        return narrow_at(a, b, c, m, k, n, Acc::FromC);
    }
    let blocked = m * k * n >= BLOCK_MIN_MADDS;
    let _span = probe::gemm(E::DTYPE, 1, blocked, m, k, n);
    if blocked {
        gemm_at_blocked(a, b, c, m, k, n);
    } else {
        gemm_at_ref(a, b, c, m, k, n);
    }
}

/// `C += A·Bᵀ` where `B` is `[n×k]`.
pub fn gemm_bt<E: Element>(a: &[E], b: &[E], c: &mut [E], m: usize, k: usize, n: usize) {
    if narrow_dims(m, k, n) {
        let _span = probe::gemm(E::DTYPE, 2, false, m, k, n);
        return narrow_bt(a, b, c, m, k, n, Acc::AddDot);
    }
    let blocked = m * k * n >= BLOCK_MIN_MADDS;
    let _span = probe::gemm(E::DTYPE, 2, blocked, m, k, n);
    if blocked {
        gemm_bt_blocked(a, b, c, m, k, n);
    } else {
        gemm_bt_ref(a, b, c, m, k, n);
    }
}

/// Overwrite `C = A·B`: every element of `C` is written without being
/// read, so `C` may hold arbitrary (pool-recycled) garbage on entry.
/// Bit-identical to zero-filling `C` and calling [`gemm`].
pub fn gemm_ow<E: Element>(a: &[E], b: &[E], c: &mut [E], m: usize, k: usize, n: usize) {
    if narrow_dims(m, k, n) {
        let _span = probe::gemm(E::DTYPE, 0, false, m, k, n);
        return narrow_nn(a, b, c, m, k, n, Acc::Overwrite);
    }
    let blocked = m * k * n >= BLOCK_MIN_MADDS;
    let _span = probe::gemm(E::DTYPE, 0, blocked, m, k, n);
    if blocked {
        gemm_ow_blocked(a, b, c, m, k, n);
    } else {
        gemm_ow_ref(a, b, c, m, k, n);
    }
}

/// Overwrite `C = Aᵀ·B` (`A: [k×m]`); `C` may be uninitialized.
/// Bit-identical to zero-filling `C` and calling [`gemm_at`].
pub fn gemm_at_ow<E: Element>(a: &[E], b: &[E], c: &mut [E], m: usize, k: usize, n: usize) {
    if narrow_dims(m, k, n) {
        let _span = probe::gemm(E::DTYPE, 1, false, m, k, n);
        return narrow_at(a, b, c, m, k, n, Acc::Overwrite);
    }
    let blocked = m * k * n >= BLOCK_MIN_MADDS;
    let _span = probe::gemm(E::DTYPE, 1, blocked, m, k, n);
    if blocked {
        gemm_at_ow_blocked(a, b, c, m, k, n);
    } else {
        gemm_at_ow_ref(a, b, c, m, k, n);
    }
}

/// Overwrite `C = A·Bᵀ` (`B: [n×k]`); `C` may be uninitialized.
/// Bit-identical to zero-filling `C` and calling [`gemm_bt`].
pub fn gemm_bt_ow<E: Element>(a: &[E], b: &[E], c: &mut [E], m: usize, k: usize, n: usize) {
    if narrow_dims(m, k, n) {
        let _span = probe::gemm(E::DTYPE, 2, false, m, k, n);
        return narrow_bt(a, b, c, m, k, n, Acc::OverwriteDot);
    }
    let blocked = m * k * n >= BLOCK_MIN_MADDS;
    let _span = probe::gemm(E::DTYPE, 2, blocked, m, k, n);
    if blocked {
        gemm_bt_ow_blocked(a, b, c, m, k, n);
    } else {
        gemm_bt_ow_ref(a, b, c, m, k, n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tyxe_rand::{Rng, SeedableRng};

    fn rand_vec(rng: &mut tyxe_rand::rngs::StdRng, len: usize) -> Vec<f64> {
        (0..len).map(|_| rng.gen_range(-1.0..1.0f64)).collect()
    }

    fn rand_vec_e<E: Element>(rng: &mut tyxe_rand::rngs::StdRng, len: usize) -> Vec<E> {
        (0..len).map(|_| E::from_f64(rng.gen_range(-1.0..1.0f64))).collect()
    }

    fn assert_bits_eq<E: Element>(a: &[E], b: &[E], what: &str) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(
                x.to_bits_u64() == y.to_bits_u64(),
                "{what}: element {i} differs: {x:?} vs {y:?}"
            );
        }
    }

    fn blocked_matches_reference_bitwise_for<E: Element>() {
        let mut rng = tyxe_rand::rngs::StdRng::seed_from_u64(42);
        for &(m, k, n) in &[(1usize, 1usize, 1usize), (2, 3, 5), (17, 33, 9), (40, 40, 40), (64, 1, 64), (1, 64, 1)] {
            let a_mk = rand_vec_e::<E>(&mut rng, m * k);
            let a_km = rand_vec_e::<E>(&mut rng, k * m);
            let b_kn = rand_vec_e::<E>(&mut rng, k * n);
            let b_nk = rand_vec_e::<E>(&mut rng, n * k);
            let c0 = rand_vec_e::<E>(&mut rng, m * n);

            let mut c_ref = c0.clone();
            let mut c_blk = c0.clone();
            gemm_ref(&a_mk, &b_kn, &mut c_ref, m, k, n);
            gemm_blocked(&a_mk, &b_kn, &mut c_blk, m, k, n);
            assert_bits_eq(&c_ref, &c_blk, "gemm");

            let mut c_ref = c0.clone();
            let mut c_blk = c0.clone();
            gemm_at_ref(&a_km, &b_kn, &mut c_ref, m, k, n);
            gemm_at_blocked(&a_km, &b_kn, &mut c_blk, m, k, n);
            assert_bits_eq(&c_ref, &c_blk, "gemm_at");

            let mut c_ref = c0.clone();
            let mut c_blk = c0.clone();
            gemm_bt_ref(&a_mk, &b_nk, &mut c_ref, m, k, n);
            gemm_bt_blocked(&a_mk, &b_nk, &mut c_blk, m, k, n);
            assert_bits_eq(&c_ref, &c_blk, "gemm_bt");
        }
    }

    #[test]
    fn blocked_matches_reference_bitwise_all_variants() {
        blocked_matches_reference_bitwise_for::<f64>();
    }

    #[test]
    fn blocked_matches_reference_bitwise_all_variants_f32() {
        blocked_matches_reference_bitwise_for::<f32>();
    }

    /// The overwrite twins must equal "zero-fill C, then accumulate"
    /// bitwise, on garbage-filled output, for both the reference and the
    /// forced-blocked paths — this is the uninit-reuse safety contract.
    #[allow(clippy::type_complexity)]
    fn overwrite_matches_zerofill_accumulate_for<E: Element>() {
        let mut rng = tyxe_rand::rngs::StdRng::seed_from_u64(99);
        type Fns<E> = (
            fn(&[E], &[E], &mut [E], usize, usize, usize),
            fn(&[E], &[E], &mut [E], usize, usize, usize),
        );
        for &(m, k, n) in &[(1usize, 1usize, 1usize), (2, 3, 5), (17, 33, 9), (40, 40, 40), (64, 1, 64), (1, 64, 1), (2, 0, 2)] {
            let a_mk = rand_vec_e::<E>(&mut rng, m * k);
            let a_km = rand_vec_e::<E>(&mut rng, k * m);
            let b_kn = rand_vec_e::<E>(&mut rng, k * n);
            let b_nk = rand_vec_e::<E>(&mut rng, n * k);
            let garbage: Vec<E> = (0..m * n).map(|i| E::from_f64(f64::NAN * (i as f64 + 1.0))).collect();

            let cases: [(&str, &[E], &[E], Fns<E>, Fns<E>); 3] = [
                ("gemm", &a_mk, &b_kn, (gemm_ref, gemm_ow_ref), (gemm_blocked, gemm_ow_blocked)),
                ("gemm_at", &a_km, &b_kn, (gemm_at_ref, gemm_at_ow_ref), (gemm_at_blocked, gemm_at_ow_blocked)),
                ("gemm_bt", &a_mk, &b_nk, (gemm_bt_ref, gemm_bt_ow_ref), (gemm_bt_blocked, gemm_bt_ow_blocked)),
            ];
            for (name, a, b, refs, blks) in cases {
                for (path, (acc_fn, ow_fn)) in [("reference", refs), ("blocked", blks)] {
                    let mut c_acc = vec![E::ZERO; m * n];
                    acc_fn(a, b, &mut c_acc, m, k, n);
                    let mut c_ow = garbage.clone();
                    ow_fn(a, b, &mut c_ow, m, k, n);
                    assert_bits_eq(&c_acc, &c_ow, &format!("{name}/{path} {m}x{k}x{n}"));
                }
            }
        }
    }

    #[test]
    fn overwrite_matches_zerofill_accumulate_bitwise() {
        overwrite_matches_zerofill_accumulate_for::<f64>();
    }

    #[test]
    fn overwrite_matches_zerofill_accumulate_bitwise_f32() {
        overwrite_matches_zerofill_accumulate_for::<f32>();
    }

    /// The public dispatchers route degenerate shapes to the narrow
    /// kernels; every routed shape must stay bit-identical to the naive
    /// references, for both the accumulating and the overwrite (garbage
    /// C) entry points.
    #[allow(clippy::type_complexity)]
    fn narrow_matches_reference_for<E: Element>() {
        let mut rng = tyxe_rand::rngs::StdRng::seed_from_u64(1234);
        let shapes: &[(usize, usize, usize)] = &[
            (1, 1, 1),
            (1, 7, 9),
            (1, 128, 40),
            (7, 9, 1),
            (9, 128, 1),
            (513, 128, 1),
            (7, 1, 9),
            (130, 1, 70),
            (1, 5, 1),
            (5, 1, 1),
            (1, 1, 5),
        ];
        for &(m, k, n) in shapes {
            assert!(narrow_dims(m, k, n), "test shape {m}x{k}x{n} must be narrow");
            let a_mk = rand_vec_e::<E>(&mut rng, m * k);
            let a_km = rand_vec_e::<E>(&mut rng, k * m);
            let b_kn = rand_vec_e::<E>(&mut rng, k * n);
            let b_nk = rand_vec_e::<E>(&mut rng, n * k);
            let c0 = rand_vec_e::<E>(&mut rng, m * n);
            let garbage: Vec<E> = (0..m * n).map(|i| E::from_f64(f64::NAN * (i as f64 + 1.0))).collect();

            type Fns<E> = (
                fn(&[E], &[E], &mut [E], usize, usize, usize),
                fn(&[E], &[E], &mut [E], usize, usize, usize),
            );
            let acc_cases: [(&str, &[E], &[E], Fns<E>); 3] = [
                ("gemm", &a_mk, &b_kn, (gemm, gemm_ref)),
                ("gemm_at", &a_km, &b_kn, (gemm_at, gemm_at_ref)),
                ("gemm_bt", &a_mk, &b_nk, (gemm_bt, gemm_bt_ref)),
            ];
            for (name, a, b, (pub_fn, ref_fn)) in acc_cases {
                let mut c_pub = c0.clone();
                let mut c_ref = c0.clone();
                pub_fn(a, b, &mut c_pub, m, k, n);
                ref_fn(a, b, &mut c_ref, m, k, n);
                assert_bits_eq(&c_ref, &c_pub, &format!("{name} {m}x{k}x{n}"));
            }
            let ow_cases: [(&str, &[E], &[E], Fns<E>); 3] = [
                ("gemm_ow", &a_mk, &b_kn, (gemm_ow, gemm_ow_ref)),
                ("gemm_at_ow", &a_km, &b_kn, (gemm_at_ow, gemm_at_ow_ref)),
                ("gemm_bt_ow", &a_mk, &b_nk, (gemm_bt_ow, gemm_bt_ow_ref)),
            ];
            for (name, a, b, (pub_fn, ref_fn)) in ow_cases {
                let mut c_pub = garbage.clone();
                let mut c_ref = garbage.clone();
                pub_fn(a, b, &mut c_pub, m, k, n);
                ref_fn(a, b, &mut c_ref, m, k, n);
                assert_bits_eq(&c_ref, &c_pub, &format!("{name} {m}x{k}x{n}"));
            }
        }
    }

    #[test]
    fn narrow_matches_reference_bitwise() {
        narrow_matches_reference_for::<f64>();
    }

    #[test]
    fn narrow_matches_reference_bitwise_f32() {
        narrow_matches_reference_for::<f32>();
    }

    #[test]
    fn k_zero_is_identity_for_accumulation() {
        let mut c = vec![1.5, -2.5, 0.0, -0.0];
        gemm_blocked::<f64>(&[], &[], &mut c, 2, 0, 2);
        assert_eq!(c, vec![1.5, -2.5, 0.0, -0.0]);
        let before: Vec<u64> = c.iter().map(|v| v.to_bits()).collect();
        let mut c_bt = c.clone();
        gemm_bt_ref::<f64>(&[], &[], &mut c_bt, 2, 0, 2);
        let mut c_bt_blk = c.clone();
        gemm_bt_blocked::<f64>(&[], &[], &mut c_bt_blk, 2, 0, 2);
        let bt_bits: Vec<u64> = c_bt.iter().map(|v| v.to_bits()).collect();
        let blk_bits: Vec<u64> = c_bt_blk.iter().map(|v| v.to_bits()).collect();
        assert_eq!(bt_bits, blk_bits);
        // gemm (from-C) leaves bits untouched even for the signed zero.
        assert_eq!(before, c.iter().map(|v| v.to_bits()).collect::<Vec<_>>());
    }

    #[test]
    fn thread_counts_agree_bitwise() {
        let mut rng = tyxe_rand::rngs::StdRng::seed_from_u64(7);
        let (m, k, n) = (65, 47, 70);
        let a = rand_vec(&mut rng, m * k);
        let b = rand_vec(&mut rng, k * n);
        let run = |threads: usize| {
            tyxe_par::set_num_threads(threads);
            let mut c = vec![0.0; m * n];
            gemm_blocked(&a, &b, &mut c, m, k, n);
            c
        };
        let prev = tyxe_par::num_threads();
        let c1 = run(1);
        let c4 = run(4);
        tyxe_par::set_num_threads(prev);
        assert_bits_eq(&c1, &c4, "threads 1 vs 4");
    }

    /// f32 must be computed natively — a genuinely different reduction
    /// from "f64 then round", which this input distinguishes: with
    /// a = [1e8, 1, -1e8] (all exact f32) and b = 1s, native f32
    /// accumulation loses the 1 (1e8 + 1 rounds to 1e8 in f32), while
    /// f64 accumulation keeps it.
    #[test]
    fn f32_accumulates_natively_not_via_f64() {
        let a = [1.0e8f32, 1.0, -1.0e8];
        let b = [1.0f32, 1.0, 1.0];
        let mut c = [0.0f32];
        gemm_ref(&a, &b, &mut c, 1, 3, 1);
        // Every product is exact, so FMA's single rounding changes
        // nothing: each partial sum still rounds to f32, and 1e8 + 1
        // rounds back to 1e8 before the -1e8 cancels it.
        assert_eq!(c[0], 0.0f32);
        // The f64 chain keeps the 1 — proof the f32 arithmetic above
        // ran in f32 registers rather than "f64 then round once".
        let mut c64 = [0.0f64];
        gemm_ref(&[1.0e8f64, 1.0, -1.0e8], &[1.0, 1.0, 1.0], &mut c64, 1, 3, 1);
        assert_eq!(c64[0], 1.0);
    }

    #[test]
    fn madd_runtime_matches_kernel_semantics() {
        let (acc, a, b) = (0.1f64, 0.2f64, 0.3f64);
        let expected = if uses_fma() { a.mul_add(b, acc) } else { acc + a * b };
        assert_eq!(madd_runtime(acc, a, b).to_bits(), expected.to_bits());
        let (acc, a, b) = (0.1f32, 0.2f32, 0.3f32);
        let expected = if uses_fma() { a.mul_add(b, acc) } else { acc + a * b };
        assert_eq!(madd_runtime_f32(acc, a, b).to_bits(), expected.to_bits());
    }
}
