//! Matrix multiplication and 2-D transpose.
//!
//! The GEMM implementations live in [`crate::ops::gemm_kernels`]; the
//! re-exports below keep the historical `crate::ops::matmul::gemm*`
//! paths working for `conv` and `linalg`.
//!
//! Dtype: mixed operands promote to the wider type; under an active
//! [`crate::autocast`] guard the product instead computes in the
//! autocast target (`f32` in mixed-precision SVI), with the operand
//! casts recorded as ordinary graph nodes so gradients flow back to
//! full-precision masters.

use crate::element::{Element, dispatch_dtype};
use crate::pool;
use crate::tensor::Tensor;

pub(crate) use crate::ops::gemm_kernels::{gemm, gemm_at_ow, gemm_bt, gemm_bt_ow, gemm_ow};

use crate::ops::PAR_MIN_ELEMS;

/// Out-of-place 2-D transpose: `dst[j * m + i] = src[i * n + j]` for a
/// row-major `[m × n]` source. Parallel over output rows; pure data
/// movement, so thread count can't affect results.
fn transpose_into<E: Element>(src: &[E], dst: &mut [E], m: usize, n: usize) {
    if m * n < PAR_MIN_ELEMS || n == 0 {
        for i in 0..m {
            for j in 0..n {
                dst[j * m + i] = src[i * n + j];
            }
        }
        return;
    }
    let chunk = tyxe_par::chunk_len(n, 1, 1) * m;
    tyxe_par::parallel_for_chunks(dst, chunk, |start, out| {
        let j0 = start / m;
        for (jj, row) in out.chunks_mut(m).enumerate() {
            let j = j0 + jj;
            for (i, slot) in row.iter_mut().enumerate() {
                *slot = src[i * n + j];
            }
        }
    });
}

fn matmul_t<E: Element>(a_t: &Tensor, b_t: &Tensor, m: usize, k: usize, n: usize) -> Tensor {
    let mut data = pool::alloc_uninit::<E>(m * n);
    gemm_ow(&a_t.data_of::<E>(), &b_t.data_of::<E>(), &mut data, m, k, n);
    let (ac, bc) = (a_t.clone(), b_t.clone());
    Tensor::make_op_t::<E>(
        data,
        vec![m, n],
        vec![a_t.clone(), b_t.clone()],
        move |_, grad| {
            // dA = G * B^T ; dB = A^T * G — independent products, so
            // they can run on separate threads; each is internally
            // deterministic regardless of thread count.
            let mut ga = pool::alloc_uninit::<E>(m * k);
            let mut gb = pool::alloc_uninit::<E>(k * n);
            let (bd, ad) = (bc.data_of::<E>(), ac.data_of::<E>());
            let (bd, ad): (&[E], &[E]) = (&bd, &ad);
            tyxe_par::join2(
                || gemm_bt_ow(grad, bd, &mut ga, m, n, k),
                || gemm_at_ow(ad, grad, &mut gb, k, m, n),
            );
            vec![Some(ga), Some(gb)]
        },
    )
}

impl Tensor {
    /// Matrix product of two 2-D tensors: `[m, k] x [k, n] -> [m, n]`.
    ///
    /// # Panics
    ///
    /// Panics if either operand is not 2-D or the inner dimensions disagree.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.ndim(), 2, "matmul: lhs must be 2-D, got {:?}", self.shape());
        assert_eq!(other.ndim(), 2, "matmul: rhs must be 2-D, got {:?}", other.shape());
        let (m, k) = (self.shape()[0], self.shape()[1]);
        let (k2, n) = (other.shape()[0], other.shape()[1]);
        assert_eq!(k, k2, "matmul: inner dims {k} vs {k2} disagree");
        let dt = crate::autocast::compute_dtype(self.dtype().promote(other.dtype()));
        let a = self.cast(dt);
        let b = other.cast(dt);
        dispatch_dtype!(dt, E => matmul_t::<E>(&a, &b, m, k, n))
    }

    /// Matrix-vector product: `[m, k] x [k] -> [m]`.
    ///
    /// # Panics
    ///
    /// Panics on rank or dimension mismatch.
    pub fn matvec(&self, v: &Tensor) -> Tensor {
        assert_eq!(self.ndim(), 2, "matvec: lhs must be 2-D");
        assert_eq!(v.ndim(), 1, "matvec: rhs must be 1-D");
        let n = v.shape()[0];
        let out = self.matmul(&v.reshape(&[n, 1]));
        let m = self.shape()[0];
        out.reshape(&[m])
    }

    /// Transpose of a 2-D tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D.
    pub fn t(&self) -> Tensor {
        assert_eq!(self.ndim(), 2, "t(): tensor must be 2-D, got {:?}", self.shape());
        let (m, n) = (self.shape()[0], self.shape()[1]);
        dispatch_dtype!(self.dtype(), E => {
            let d = self.data_of::<E>();
            // Pure permutation: every output element is written exactly once,
            // so the uninit pool path is safe in both directions.
            let mut data = pool::alloc_uninit::<E>(m * n);
            transpose_into(&d, &mut data, m, n);
            drop(d);
            Tensor::make_op_t::<E>(
                data,
                vec![n, m],
                vec![self.clone()],
                move |_, grad| {
                    let mut g = pool::alloc_uninit::<E>(m * n);
                    transpose_into(grad, &mut g, n, m);
                    vec![Some(g)]
                },
            )
        })
    }

    /// Inner product of two 1-D tensors.
    ///
    /// # Panics
    ///
    /// Panics on rank or length mismatch.
    pub fn dot(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.ndim(), 1, "dot: lhs must be 1-D");
        assert_eq!(other.ndim(), 1, "dot: rhs must be 1-D");
        assert_eq!(self.shape(), other.shape(), "dot: length mismatch");
        self.mul(other).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::DType;

    #[test]
    fn matmul_values() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.to_vec(), vec![19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_grad() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).requires_grad(true);
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]).requires_grad(true);
        let y = a.matmul(&b).sum();
        y.backward();
        // dA = 1 * B^T applied to all-ones grad => row sums of B rows.
        assert_eq!(a.grad().unwrap(), vec![11.0, 15.0, 11.0, 15.0]);
        assert_eq!(b.grad().unwrap(), vec![4.0, 4.0, 6.0, 6.0]);
    }

    #[test]
    fn matmul_rectangular() {
        let a = Tensor::from_vec((0..6).map(|x| x as f64).collect(), &[2, 3]);
        let b = Tensor::from_vec((0..12).map(|x| x as f64).collect(), &[3, 4]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[2, 4]);
        assert_eq!(c.at(&[0, 0]), 0.0 * 0.0 + 1.0 * 4.0 + 2.0 * 8.0);
        assert_eq!(c.at(&[1, 3]), 3.0 * 3.0 + 4.0 * 7.0 + 5.0 * 11.0);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Tensor::from_vec((0..6).map(|x| x as f64).collect(), &[2, 3]);
        let t = a.t();
        assert_eq!(t.shape(), &[3, 2]);
        assert_eq!(t.t().to_vec(), a.to_vec());
    }

    #[test]
    fn transpose_grad() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).requires_grad(true);
        let w = Tensor::from_vec((0..6).map(|x| x as f64).collect(), &[3, 2]);
        a.t().mul(&w).sum().backward();
        // grad of a[i][j] = w[j][i]
        assert_eq!(a.grad().unwrap(), vec![0.0, 2.0, 4.0, 1.0, 3.0, 5.0]);
    }

    #[test]
    fn matvec_and_dot() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let v = Tensor::from_vec(vec![1.0, -1.0], &[2]);
        assert_eq!(a.matvec(&v).to_vec(), vec![-1.0, -1.0]);
        assert_eq!(v.dot(&v).item(), 2.0);
    }

    #[test]
    #[should_panic]
    fn matmul_dim_mismatch_panics() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[2, 3]);
        let _ = a.matmul(&b);
    }

    #[test]
    fn f32_matmul_and_transpose() {
        let a = Tensor::from_vec_f32(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).requires_grad(true);
        let b = Tensor::from_vec_f32(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]).requires_grad(true);
        let c = a.matmul(&b);
        assert_eq!(c.dtype(), DType::F32);
        assert_eq!(c.to_vec(), vec![19.0, 22.0, 43.0, 50.0]);
        c.sum().backward();
        assert_eq!(a.grad().unwrap(), vec![11.0, 15.0, 11.0, 15.0]);
        assert_eq!(a.t().dtype(), DType::F32);
        assert_eq!(a.t().to_vec(), vec![1.0, 3.0, 2.0, 4.0]);
    }

    #[test]
    fn autocast_demotes_f64_matmul() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).requires_grad(true);
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]);
        let g = crate::autocast::autocast(DType::F32);
        let c = a.matmul(&b);
        assert_eq!(c.dtype(), DType::F32);
        drop(g);
        // Gradients reach the f64 master through the cast boundary, as f64.
        c.sum().backward();
        assert_eq!(a.dtype(), DType::F64);
        assert_eq!(a.grad().unwrap(), vec![11.0, 15.0, 11.0, 15.0]);
        // Outside the guard the same product stays f64.
        assert_eq!(a.matmul(&b).dtype(), DType::F64);
    }
}
