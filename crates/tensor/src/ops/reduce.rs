//! Reduction operations: sum, mean, min/max, and axis-wise variants.

use crate::shape::{normalize_axis, numel, strides_for, unravel_index};
use crate::tensor::Tensor;

impl Tensor {
    /// Sums all elements into a scalar.
    pub fn sum(&self) -> Tensor {
        let total: f64 = self.data().iter().sum();
        let n = self.numel();
        let shape = self.shape().to_vec();
        Tensor::make_op(
            vec![total],
            vec![],
            vec![self.clone()],
            Box::new(move |_, grad| {
                let _ = &shape;
                vec![Some(vec![grad[0]; n])]
            }),
        )
    }

    /// Averages all elements into a scalar.
    pub fn mean(&self) -> Tensor {
        self.sum().div_scalar(self.numel() as f64)
    }

    /// Sums along `axis`, optionally keeping the reduced dimension as size 1.
    ///
    /// # Panics
    ///
    /// Panics if `axis` is out of range.
    pub fn sum_axis(&self, axis: isize, keepdim: bool) -> Tensor {
        let ax = normalize_axis(axis, self.ndim());
        let in_shape = self.shape().to_vec();
        let mut out_shape: Vec<usize> = in_shape.clone();
        out_shape[ax] = 1;
        let out_n = numel(&out_shape);
        let mut data = vec![0.0; out_n];
        let out_strides = strides_for(&out_shape);
        {
            let d = self.data();
            for (flat, &v) in d.iter().enumerate() {
                let idx = unravel_index(flat, &in_shape);
                let mut o = 0;
                for (i, &s) in out_strides.iter().enumerate() {
                    o += if i == ax { 0 } else { idx[i] * s };
                }
                data[o] += v;
            }
        }
        let final_shape = if keepdim {
            out_shape.clone()
        } else {
            let mut s = out_shape.clone();
            s.remove(ax);
            s
        };
        let in_shape_c = in_shape.clone();
        let out_shape_c = out_shape;
        let out = Tensor::make_op(
            data,
            final_shape,
            vec![self.clone()],
            Box::new(move |_, grad| {
                let mut g = vec![0.0; numel(&in_shape_c)];
                let out_strides = strides_for(&out_shape_c);
                for (flat, gv) in g.iter_mut().enumerate() {
                    let idx = unravel_index(flat, &in_shape_c);
                    let mut o = 0;
                    for (i, &s) in out_strides.iter().enumerate() {
                        o += if i == ax { 0 } else { idx[i] * s };
                    }
                    *gv = grad[o];
                }
                vec![Some(g)]
            }),
        );
        out
    }

    /// Mean along `axis`, optionally keeping the reduced dimension.
    pub fn mean_axis(&self, axis: isize, keepdim: bool) -> Tensor {
        let ax = normalize_axis(axis, self.ndim());
        self.sum_axis(axis, keepdim)
            .div_scalar(self.shape()[ax] as f64)
    }

    /// Maximum along `axis`. Gradient flows only to the (first) argmax entry.
    pub fn max_axis(&self, axis: isize, keepdim: bool) -> Tensor {
        self.extremum_axis(axis, keepdim, true)
    }

    /// Minimum along `axis`. Gradient flows only to the (first) argmin entry.
    pub fn min_axis(&self, axis: isize, keepdim: bool) -> Tensor {
        self.extremum_axis(axis, keepdim, false)
    }

    fn extremum_axis(&self, axis: isize, keepdim: bool, is_max: bool) -> Tensor {
        let ax = normalize_axis(axis, self.ndim());
        let in_shape = self.shape().to_vec();
        let mut out_shape = in_shape.clone();
        out_shape[ax] = 1;
        let out_n = numel(&out_shape);
        let mut best = vec![if is_max { f64::NEG_INFINITY } else { f64::INFINITY }; out_n];
        let mut arg = vec![0usize; out_n];
        let out_strides = strides_for(&out_shape);
        {
            let d = self.data();
            for (flat, &v) in d.iter().enumerate() {
                let idx = unravel_index(flat, &in_shape);
                let mut o = 0;
                for (i, &s) in out_strides.iter().enumerate() {
                    o += if i == ax { 0 } else { idx[i] * s };
                }
                let better = if is_max { v > best[o] } else { v < best[o] };
                if better {
                    best[o] = v;
                    arg[o] = flat;
                }
            }
        }
        let final_shape = if keepdim {
            out_shape.clone()
        } else {
            let mut s = out_shape.clone();
            s.remove(ax);
            s
        };
        let in_n = numel(&in_shape);
        Tensor::make_op(
            best,
            final_shape,
            vec![self.clone()],
            Box::new(move |_, grad| {
                let mut g = vec![0.0; in_n];
                for (o, &src) in arg.iter().enumerate() {
                    g[src] += grad[o];
                }
                vec![Some(g)]
            }),
        )
    }

    /// Index of the maximum element along `axis` (not differentiable).
    pub fn argmax_axis(&self, axis: isize) -> Vec<usize> {
        let ax = normalize_axis(axis, self.ndim());
        let in_shape = self.shape().to_vec();
        let mut out_shape = in_shape.clone();
        out_shape[ax] = 1;
        let out_n = numel(&out_shape);
        let mut best = vec![f64::NEG_INFINITY; out_n];
        let mut arg = vec![0usize; out_n];
        let out_strides = strides_for(&out_shape);
        let d = self.data();
        for (flat, &v) in d.iter().enumerate() {
            let idx = unravel_index(flat, &in_shape);
            let mut o = 0;
            for (i, &s) in out_strides.iter().enumerate() {
                o += if i == ax { 0 } else { idx[i] * s };
            }
            if v > best[o] {
                best[o] = v;
                arg[o] = idx[ax];
            }
        }
        arg
    }

    /// Largest element of the tensor (not differentiable).
    pub fn max_value(&self) -> f64 {
        self.data().iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Smallest element of the tensor (not differentiable).
    pub fn min_value(&self) -> f64 {
        self.data().iter().copied().fold(f64::INFINITY, f64::min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_grad_is_ones() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).requires_grad(true);
        let y = x.sum();
        assert_eq!(y.item(), 6.0);
        y.backward();
        assert_eq!(x.grad().unwrap(), vec![1.0, 1.0, 1.0]);
    }

    #[test]
    fn mean_scales_grad() {
        let x = Tensor::from_vec(vec![2.0, 4.0], &[2]).requires_grad(true);
        let y = x.mean();
        assert_eq!(y.item(), 3.0);
        y.backward();
        assert_eq!(x.grad().unwrap(), vec![0.5, 0.5]);
    }

    #[test]
    fn sum_axis_rows_and_cols() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        assert_eq!(x.sum_axis(0, false).to_vec(), vec![5.0, 7.0, 9.0]);
        assert_eq!(x.sum_axis(1, false).to_vec(), vec![6.0, 15.0]);
        assert_eq!(x.sum_axis(1, true).shape(), &[2, 1]);
        assert_eq!(x.sum_axis(-1, false).to_vec(), vec![6.0, 15.0]);
    }

    #[test]
    fn sum_axis_grad_broadcasts_back() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).requires_grad(true);
        let y = x.sum_axis(0, false); // [4, 6]
        let w = Tensor::from_vec(vec![10.0, 1.0], &[2]);
        y.mul(&w).sum().backward();
        assert_eq!(x.grad().unwrap(), vec![10.0, 1.0, 10.0, 1.0]);
    }

    #[test]
    fn max_axis_routes_grad_to_argmax() {
        let x = Tensor::from_vec(vec![1.0, 5.0, 3.0, 2.0], &[2, 2]).requires_grad(true);
        let y = x.max_axis(1, false);
        assert_eq!(y.to_vec(), vec![5.0, 3.0]);
        y.sum().backward();
        assert_eq!(x.grad().unwrap(), vec![0.0, 1.0, 1.0, 0.0]);
    }

    #[test]
    fn argmax_axis_values() {
        let x = Tensor::from_vec(vec![1.0, 5.0, 3.0, 2.0, 9.0, 0.0], &[2, 3]);
        assert_eq!(x.argmax_axis(1), vec![1, 1]);
        assert_eq!(x.argmax_axis(0), vec![1, 1, 0]);
    }

    #[test]
    fn min_and_extremes() {
        let x = Tensor::from_vec(vec![3.0, -1.0, 2.0], &[3]);
        assert_eq!(x.max_value(), 3.0);
        assert_eq!(x.min_value(), -1.0);
        assert_eq!(x.min_axis(0, false).item(), -1.0);
    }

    #[test]
    fn mean_axis_shapes() {
        let x = Tensor::ones(&[2, 3, 4]);
        assert_eq!(x.mean_axis(1, false).shape(), &[2, 4]);
        assert_eq!(x.mean_axis(1, true).shape(), &[2, 1, 4]);
        assert_eq!(x.mean_axis(1, false).to_vec(), vec![1.0; 8]);
    }
}
