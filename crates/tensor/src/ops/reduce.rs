//! Reduction operations: sum, mean, min/max, and axis-wise variants.
//!
//! Axis-wise reductions are organised *per output element*: each output
//! accumulates its own slice of the input in ascending axis order, which
//! is the same per-element chain the old flat input scan produced, but
//! lets disjoint output chunks run on the thread pool. The full
//! reduction [`Tensor::sum`] is a single chain by definition and stays
//! sequential.
//!
//! Dtype: accumulation chains run **natively** in the storage element
//! type (not widened), so a fused op that folds a reduction reproduces
//! the unfused result bitwise in either dtype — the per-dtype
//! determinism contract of [`crate::element`].

use crate::element::{Element, dispatch_dtype};
use crate::ops::PAR_MIN_ELEMS;
use crate::pool;
use crate::shape::{normalize_axis, numel};
use crate::tensor::Tensor;

/// Decomposes a shape around `ax` into `(outer, axis_len, inner)` so that
/// input flat index `(oi * axis_len + q) * inner + ii` maps to output
/// flat index `oi * inner + ii`.
fn axis_split(shape: &[usize], ax: usize) -> (usize, usize, usize) {
    let outer: usize = shape[..ax].iter().product();
    let inner: usize = shape[ax + 1..].iter().product();
    (outer, shape[ax], inner)
}

fn sum_t<E: Element>(src_t: &Tensor) -> Tensor {
    // Shared forward kernel (initial build + plan replay): a single
    // sequential chain, so the result is order-fixed by definition.
    let compute = {
        let src = src_t.clone();
        move |out: &mut [E]| {
            let d = src.data_of::<E>();
            let mut acc = E::ZERO;
            for &x in d.iter() {
                acc += x;
            }
            out[0] = acc;
        }
    };
    let mut data = pool::alloc_uninit::<E>(1);
    compute(data.as_mut_slice());
    let n = src_t.numel();
    let t = Tensor::make_op_t::<E>(
        data,
        vec![],
        vec![src_t.clone()],
        move |_, grad| vec![Some(pool::alloc_filled::<E>(n, grad[0]))],
    );
    crate::plan::record_op_t::<E>(&t, &[src_t], compute);
    t
}

fn sum_axis_t<E: Element>(src_t: &Tensor, axis: isize, keepdim: bool) -> Tensor {
    let ax = normalize_axis(axis, src_t.ndim());
    let in_shape = src_t.shape().to_vec();
    let mut out_shape: Vec<usize> = in_shape.clone();
    out_shape[ax] = 1;
    let out_n = numel(&out_shape);
    let (_, axn, inner) = axis_split(&in_shape, ax);
    let mut data = pool::alloc_uninit::<E>(out_n);
    {
        let d = src_t.data_of::<E>();
        let d: &[E] = &d;
        let chunk = tyxe_par::chunk_len(out_n, 1, (PAR_MIN_ELEMS / axn.max(1)).max(1));
        tyxe_par::parallel_for_chunks(&mut data, chunk, |start, piece| {
            for (off, slot) in piece.iter_mut().enumerate() {
                let o = start + off;
                let (oi, ii) = (o / inner.max(1), o % inner.max(1));
                let base = oi * axn * inner + ii;
                let mut acc = E::ZERO;
                for q in 0..axn {
                    acc += d[base + q * inner];
                }
                *slot = acc;
            }
        });
    }
    let final_shape = if keepdim {
        out_shape.clone()
    } else {
        let mut s = out_shape.clone();
        s.remove(ax);
        s
    };
    let in_n = numel(&in_shape);
    Tensor::make_op_t::<E>(
        data,
        final_shape,
        vec![src_t.clone()],
        move |_, grad| {
            // Broadcast the output grad back along the reduced axis;
            // pure gather writing every element, parallel-safe.
            let mut g = pool::alloc_uninit::<E>(in_n);
            let chunk = tyxe_par::chunk_len(in_n, 1, PAR_MIN_ELEMS);
            tyxe_par::parallel_for_chunks(&mut g, chunk, |start, piece| {
                for (off, gv) in piece.iter_mut().enumerate() {
                    let flat = start + off;
                    let block = (axn * inner).max(1);
                    *gv = grad[(flat / block) * inner + flat % inner.max(1)];
                }
            });
            vec![Some(g)]
        },
    )
}

fn extremum_axis_t<E: Element>(src_t: &Tensor, axis: isize, keepdim: bool, is_max: bool) -> Tensor {
    let ax = normalize_axis(axis, src_t.ndim());
    let in_shape = src_t.shape().to_vec();
    let mut out_shape = in_shape.clone();
    out_shape[ax] = 1;
    let out_n = numel(&out_shape);
    let (_, axn, inner) = axis_split(&in_shape, ax);
    let sentinel = E::from_f64(if is_max { f64::NEG_INFINITY } else { f64::INFINITY });
    let mut best = pool::alloc_filled::<E>(out_n, sentinel);
    let mut arg = vec![0usize; out_n];
    {
        let d = src_t.data_of::<E>();
        let d: &[E] = &d;
        // Each output scans its axis slice in ascending order, so ties
        // keep the first extremum exactly as the flat scan did.
        let chunk = tyxe_par::chunk_len(out_n, 1, (PAR_MIN_ELEMS / axn.max(1)).max(1));
        tyxe_par::parallel_for_chunks2(&mut best, &mut arg, chunk, chunk, |ci, pb, pa| {
            let start = ci * chunk;
            for (off, (bv, av)) in pb.iter_mut().zip(pa.iter_mut()).enumerate() {
                let o = start + off;
                let (oi, ii) = (o / inner.max(1), o % inner.max(1));
                for q in 0..axn {
                    let flat = (oi * axn + q) * inner + ii;
                    let v = d[flat];
                    let better = if is_max { v > *bv } else { v < *bv };
                    if better {
                        *bv = v;
                        *av = flat;
                    }
                }
            }
        });
    }
    let final_shape = if keepdim {
        out_shape.clone()
    } else {
        let mut s = out_shape.clone();
        s.remove(ax);
        s
    };
    let in_n = numel(&in_shape);
    Tensor::make_op_t::<E>(
        best,
        final_shape,
        vec![src_t.clone()],
        move |_, grad| {
            // Scatter-accumulate: zeroed pool path required.
            let mut g = pool::alloc_zeroed::<E>(in_n);
            for (o, &src) in arg.iter().enumerate() {
                g[src] += grad[o];
            }
            vec![Some(g)]
        },
    )
}

fn argmax_axis_t<E: Element>(src_t: &Tensor, axis: isize) -> Vec<usize> {
    let ax = normalize_axis(axis, src_t.ndim());
    let in_shape = src_t.shape().to_vec();
    let mut out_shape = in_shape.clone();
    out_shape[ax] = 1;
    let out_n = numel(&out_shape);
    let (_, axn, inner) = axis_split(&in_shape, ax);
    let mut arg = vec![0usize; out_n];
    let d = src_t.data_of::<E>();
    let d: &[E] = &d;
    let chunk = tyxe_par::chunk_len(out_n, 1, (PAR_MIN_ELEMS / axn.max(1)).max(1));
    tyxe_par::parallel_for_chunks(&mut arg, chunk, |start, piece| {
        for (off, slot) in piece.iter_mut().enumerate() {
            let o = start + off;
            let (oi, ii) = (o / inner.max(1), o % inner.max(1));
            let mut bv = E::from_f64(f64::NEG_INFINITY);
            let mut ba = 0usize;
            for q in 0..axn {
                let v = d[(oi * axn + q) * inner + ii];
                if v > bv {
                    bv = v;
                    ba = q;
                }
            }
            *slot = ba;
        }
    });
    arg
}

impl Tensor {
    /// Sums all elements into a scalar (accumulating natively in the
    /// storage dtype).
    pub fn sum(&self) -> Tensor {
        dispatch_dtype!(self.dtype(), E => sum_t::<E>(self))
    }

    /// Averages all elements into a scalar.
    pub fn mean(&self) -> Tensor {
        self.sum().div_scalar(self.numel() as f64)
    }

    /// Sums along `axis`, optionally keeping the reduced dimension as size 1.
    ///
    /// # Panics
    ///
    /// Panics if `axis` is out of range.
    pub fn sum_axis(&self, axis: isize, keepdim: bool) -> Tensor {
        dispatch_dtype!(self.dtype(), E => sum_axis_t::<E>(self, axis, keepdim))
    }

    /// Mean along `axis`, optionally keeping the reduced dimension.
    pub fn mean_axis(&self, axis: isize, keepdim: bool) -> Tensor {
        let ax = normalize_axis(axis, self.ndim());
        self.sum_axis(axis, keepdim)
            .div_scalar(self.shape()[ax] as f64)
    }

    /// Maximum along `axis`. Gradient flows only to the (first) argmax entry.
    pub fn max_axis(&self, axis: isize, keepdim: bool) -> Tensor {
        dispatch_dtype!(self.dtype(), E => extremum_axis_t::<E>(self, axis, keepdim, true))
    }

    /// Minimum along `axis`. Gradient flows only to the (first) argmin entry.
    pub fn min_axis(&self, axis: isize, keepdim: bool) -> Tensor {
        dispatch_dtype!(self.dtype(), E => extremum_axis_t::<E>(self, axis, keepdim, false))
    }

    /// Index of the maximum element along `axis` (not differentiable).
    pub fn argmax_axis(&self, axis: isize) -> Vec<usize> {
        dispatch_dtype!(self.dtype(), E => argmax_axis_t::<E>(self, axis))
    }

    /// Largest element of the tensor, widened to `f64` (not
    /// differentiable).
    pub fn max_value(&self) -> f64 {
        dispatch_dtype!(self.dtype(), E => self
            .data_of::<E>()
            .iter()
            .fold(f64::NEG_INFINITY, |m, x| m.max(x.to_f64())))
    }

    /// Smallest element of the tensor, widened to `f64` (not
    /// differentiable).
    pub fn min_value(&self) -> f64 {
        dispatch_dtype!(self.dtype(), E => self
            .data_of::<E>()
            .iter()
            .fold(f64::INFINITY, |m, x| m.min(x.to_f64())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_grad_is_ones() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).requires_grad(true);
        let y = x.sum();
        assert_eq!(y.item(), 6.0);
        y.backward();
        assert_eq!(x.grad().unwrap(), vec![1.0, 1.0, 1.0]);
    }

    #[test]
    fn mean_scales_grad() {
        let x = Tensor::from_vec(vec![2.0, 4.0], &[2]).requires_grad(true);
        let y = x.mean();
        assert_eq!(y.item(), 3.0);
        y.backward();
        assert_eq!(x.grad().unwrap(), vec![0.5, 0.5]);
    }

    #[test]
    fn sum_axis_rows_and_cols() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        assert_eq!(x.sum_axis(0, false).to_vec(), vec![5.0, 7.0, 9.0]);
        assert_eq!(x.sum_axis(1, false).to_vec(), vec![6.0, 15.0]);
        assert_eq!(x.sum_axis(1, true).shape(), &[2, 1]);
        assert_eq!(x.sum_axis(-1, false).to_vec(), vec![6.0, 15.0]);
    }

    #[test]
    fn sum_axis_grad_broadcasts_back() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).requires_grad(true);
        let y = x.sum_axis(0, false); // [4, 6]
        let w = Tensor::from_vec(vec![10.0, 1.0], &[2]);
        y.mul(&w).sum().backward();
        assert_eq!(x.grad().unwrap(), vec![10.0, 1.0, 10.0, 1.0]);
    }

    #[test]
    fn max_axis_routes_grad_to_argmax() {
        let x = Tensor::from_vec(vec![1.0, 5.0, 3.0, 2.0], &[2, 2]).requires_grad(true);
        let y = x.max_axis(1, false);
        assert_eq!(y.to_vec(), vec![5.0, 3.0]);
        y.sum().backward();
        assert_eq!(x.grad().unwrap(), vec![0.0, 1.0, 1.0, 0.0]);
    }

    #[test]
    fn argmax_axis_values() {
        let x = Tensor::from_vec(vec![1.0, 5.0, 3.0, 2.0, 9.0, 0.0], &[2, 3]);
        assert_eq!(x.argmax_axis(1), vec![1, 1]);
        assert_eq!(x.argmax_axis(0), vec![1, 1, 0]);
    }

    #[test]
    fn min_and_extremes() {
        let x = Tensor::from_vec(vec![3.0, -1.0, 2.0], &[3]);
        assert_eq!(x.max_value(), 3.0);
        assert_eq!(x.min_value(), -1.0);
        assert_eq!(x.min_axis(0, false).item(), -1.0);
    }

    #[test]
    fn mean_axis_shapes() {
        let x = Tensor::ones(&[2, 3, 4]);
        assert_eq!(x.mean_axis(1, false).shape(), &[2, 4]);
        assert_eq!(x.mean_axis(1, true).shape(), &[2, 1, 4]);
        assert_eq!(x.mean_axis(1, false).to_vec(), vec![1.0; 8]);
    }

    #[test]
    fn f32_sum_accumulates_natively() {
        // Pick values whose f32 partial sums round: native f32 chain
        // differs from an f64 chain rounded once at the end, and the
        // contract demands the native chain.
        let xs = vec![1.0e7f32, 1.5, 2.5, -3.25, 0.125, 7.75];
        let want = xs.iter().copied().fold(0.0f32, |a, b| a + b);
        let t = Tensor::from_vec_f32(xs, &[6]);
        assert_eq!(t.sum().item(), f64::from(want));
        assert_eq!(t.sum_axis(0, false).item(), f64::from(want));
    }

    #[test]
    fn f32_extrema_match() {
        let t = Tensor::from_vec_f32(vec![3.0, -1.0, 2.0, 5.5], &[4]);
        assert_eq!(t.max_value(), 5.5);
        assert_eq!(t.min_value(), -1.0);
        assert_eq!(t.argmax_axis(0), vec![3]);
        assert_eq!(t.max_axis(0, false).item(), 5.5);
    }
}
