//! 2-D convolution (via im2col + GEMM) and max pooling over `[N, C, H, W]`
//! tensors.
//!
//! Samples are independent in both directions, so the batch dimension is
//! partitioned across the thread pool: each task unfolds/folds and
//! multiplies its own samples with private scratch buffers. The one
//! cross-sample reduction — the weight gradient — is computed into
//! per-sample partials and reduced sequentially in ascending sample
//! order, which reproduces the sequential loop's addition chain exactly
//! (see `tyxe-par`'s determinism contract).
//!
//! Everything is generic over the storage dtype: data movement
//! (im2col/col2im, pooling argmax scatter) and all accumulations run
//! natively in the element type, and the fused bias/activation pass
//! rounds at the same boundaries as the standalone ops.

use crate::element::{Element, dispatch_dtype};
use crate::ops::fused::Activation;
use crate::ops::matmul::{gemm_at_ow, gemm_bt, gemm_bt_ow, gemm_ow};
use crate::pool;
use crate::tensor::Tensor;

/// Cached tyxe-obs counter for im2col invocations (both directions);
/// callers gate on `tyxe_obs::enabled()`.
fn im2col_counter() -> &'static tyxe_obs::metrics::Counter {
    static C: std::sync::OnceLock<tyxe_obs::metrics::Counter> = std::sync::OnceLock::new();
    C.get_or_init(|| tyxe_obs::metrics::counter("tensor.conv2d.im2col_calls"))
}

/// Output spatial size of a convolution/pooling dimension.
///
/// # Panics
///
/// Panics if the kernel exceeds the padded input (which would otherwise
/// wrap around in release builds and produce nonsense shapes).
fn conv_out(size: usize, k: usize, stride: usize, pad: usize) -> usize {
    assert!(
        k <= size + 2 * pad,
        "kernel size {k} exceeds padded input extent {}",
        size + 2 * pad
    );
    (size + 2 * pad - k) / stride + 1
}

/// Unfolds one image `[C, H, W]` into columns `[C*Kh*Kw, Ho*Wo]`.
#[allow(clippy::too_many_arguments)]
fn im2col<E: Element>(
    img: &[E],
    c: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    stride: usize,
    pad: usize,
    cols: &mut [E],
) {
    let ho = conv_out(h, kh, stride, pad);
    let wo = conv_out(w, kw, stride, pad);
    let ncols = ho * wo;
    for ch in 0..c {
        for ki in 0..kh {
            for kj in 0..kw {
                let row = (ch * kh + ki) * kw + kj;
                let dst = &mut cols[row * ncols..(row + 1) * ncols];
                for oy in 0..ho {
                    let iy = (oy * stride + ki) as isize - pad as isize;
                    for ox in 0..wo {
                        let ix = (ox * stride + kj) as isize - pad as isize;
                        dst[oy * wo + ox] = if iy >= 0 && (iy as usize) < h && ix >= 0 && (ix as usize) < w
                        {
                            img[(ch * h + iy as usize) * w + ix as usize]
                        } else {
                            E::ZERO
                        };
                    }
                }
            }
        }
    }
}

/// Folds columns `[C*Kh*Kw, Ho*Wo]` back into an image `[C, H, W]`,
/// accumulating overlapping contributions (the adjoint of [`im2col`])
/// natively in the element type.
#[allow(clippy::too_many_arguments)]
fn col2im<E: Element>(
    cols: &[E],
    c: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    stride: usize,
    pad: usize,
    img: &mut [E],
) {
    let ho = conv_out(h, kh, stride, pad);
    let wo = conv_out(w, kw, stride, pad);
    let ncols = ho * wo;
    for ch in 0..c {
        for ki in 0..kh {
            for kj in 0..kw {
                let row = (ch * kh + ki) * kw + kj;
                let src = &cols[row * ncols..(row + 1) * ncols];
                for oy in 0..ho {
                    let iy = (oy * stride + ki) as isize - pad as isize;
                    if iy < 0 || iy as usize >= h {
                        continue;
                    }
                    for ox in 0..wo {
                        let ix = (ox * stride + kj) as isize - pad as isize;
                        if ix < 0 || ix as usize >= w {
                            continue;
                        }
                        img[(ch * h + iy as usize) * w + ix as usize] += src[oy * wo + ox];
                    }
                }
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn conv2d_act_t<E: Element>(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    stride: usize,
    pad: usize,
    act: Activation,
) -> Tensor {
    let (n, cin, h, w) = (
        input.shape()[0],
        input.shape()[1],
        input.shape()[2],
        input.shape()[3],
    );
    let (cout, _, kh, kw) = (
        weight.shape()[0],
        weight.shape()[1],
        weight.shape()[2],
        weight.shape()[3],
    );
    let ho = conv_out(h, kh, stride, pad);
    let wo = conv_out(w, kw, stride, pad);
    let krows = cin * kh * kw;
    let ncols = ho * wo;

    let sample_in = cin * h * w;
    let sample_out = cout * ncols;
    // GEMM overwrites every output element ([`gemm_ow`]), so the
    // buffer comes from the pool uninitialized.
    let mut out = pool::alloc_uninit::<E>(n * sample_out);
    {
        let x = input.data_of::<E>();
        let wd = weight.data_of::<E>();
        let (x, wd): (&[E], &[E]) = (&x, &wd);
        let bref = bias.map(|b| b.data_of::<E>());
        let bd: Option<&[E]> = bref.as_ref().map(|r| &r[..]);
        let spl = tyxe_par::chunk_len(n, 1, 1);
        tyxe_par::parallel_for_chunks(&mut out, (spl * sample_out).max(1), |start, chunk| {
            let s0 = start / sample_out.max(1);
            // im2col writes every element (padding becomes explicit
            // zeros), so the worker scratch is also uninit-reused.
            let mut cols = pool::alloc_uninit::<E>(krows * ncols);
            for (si, o) in chunk.chunks_mut(sample_out.max(1)).enumerate() {
                let s = s0 + si;
                if tyxe_obs::enabled() {
                    im2col_counter().inc();
                }
                im2col(&x[s * sample_in..(s + 1) * sample_in], cin, h, w, kh, kw, stride, pad, &mut cols);
                gemm_ow(wd, &cols, o, cout, krows, ncols);
                match (bd, act) {
                    (Some(bd), _) => {
                        for co in 0..cout {
                            let b = bd[co];
                            for v in &mut o[co * ncols..(co + 1) * ncols] {
                                // Round the biased pre-activation to
                                // storage before the activation, as the
                                // unfused add → act chain would.
                                let pre = E::from_f64(v.to_f64() + b.to_f64());
                                *v = act.apply_e(pre);
                            }
                        }
                    }
                    (None, Activation::Identity) => {}
                    (None, _) => {
                        for v in o.iter_mut() {
                            *v = act.apply_e(*v);
                        }
                    }
                }
            }
        });
    }

    let xc = input.clone();
    let wc = weight.clone();
    let has_bias = bias.is_some();
    let mut parents = vec![input.clone(), weight.clone()];
    if let Some(b) = bias {
        parents.push(b.clone());
    }
    Tensor::make_op_t::<E>(out, vec![n, cout, ho, wo], parents, move |out, grad| {
        let _span = tyxe_obs::span!("tensor.conv2d.backward");
        // Pre-activation gradient from the stored output; with
        // Identity the incoming gradient is used directly.
        let yd = out.data_of::<E>();
        let gpre_buf: Option<pool::PoolBuf<E>> = match act {
            Activation::Identity => None,
            _ => {
                let mut g = pool::alloc_uninit::<E>(grad.len());
                for ((slot, &y), &gv) in g.iter_mut().zip(yd.iter()).zip(grad.iter()) {
                    *slot = E::from_f64(act.grad_from_output(y.to_f64(), gv.to_f64()));
                }
                Some(g)
            }
        };
        drop(yd);
        let grad: &[E] = gpre_buf.as_deref().unwrap_or(grad);
        let x = xc.data_of::<E>();
        let wd = wc.data_of::<E>();
        let (x, wd): (&[E], &[E]) = (&x, &wd);
        let sample_in = cin * h * w;
        let sample_out = cout * ncols;
        let wlen = cout * krows;
        // col2im accumulates overlapping windows into gx, so it
        // genuinely needs the zeroed pool path.
        let mut gx = pool::alloc_zeroed::<E>(n * sample_in);
        let mut gw = pool::alloc_zeroed::<E>(wlen);
        // Per-sample body: dW_s = G_s * cols^T (`overwrite` picks
        // whether `gws` is a fresh per-sample partial or the
        // sequential accumulator), dX_s = col2im(W^T * G_s).
        let do_sample = |s: usize, gxs: &mut [E], gws: &mut [E], overwrite: bool, cols: &mut [E], gcols: &mut [E]| {
            let gout = &grad[s * sample_out..(s + 1) * sample_out];
            if tyxe_obs::enabled() {
                im2col_counter().inc();
            }
            im2col(&x[s * sample_in..(s + 1) * sample_in], cin, h, w, kh, kw, stride, pad, cols);
            if overwrite {
                gemm_bt_ow(gout, cols, gws, cout, ncols, krows);
            } else {
                gemm_bt(gout, cols, gws, cout, ncols, krows);
            }
            gemm_at_ow(wd, gout, gcols, krows, cout, ncols);
            col2im(gcols, cin, h, w, kh, kw, stride, pad, gxs);
        };
        if n > 0 && sample_in > 0 && wlen > 0 {
            // Disjoint per-sample partials for dW; samples
            // partitioned across the pool in lock-step with dX.
            // Each partial is written exactly once (overwrite
            // GEMM), so the scratch comes from the pool uninit.
            let mut gw_part = pool::alloc_uninit::<E>(n * wlen);
            let spl = tyxe_par::chunk_len(n, 1, 1);
            tyxe_par::parallel_for_chunks2(
                &mut gx,
                &mut gw_part,
                spl * sample_in,
                spl * wlen,
                |ci, gxc, gwc| {
                    let mut cols = pool::alloc_uninit::<E>(krows * ncols);
                    let mut gcols = pool::alloc_uninit::<E>(krows * ncols);
                    for (si, (gxs, gws)) in
                        gxc.chunks_mut(sample_in).zip(gwc.chunks_mut(wlen)).enumerate()
                    {
                        do_sample(ci * spl + si, gxs, gws, true, &mut cols, &mut gcols);
                    }
                },
            );
            // Ascending-s reduction: the same per-element addition
            // chain as the sequential accumulation it replaces.
            for part in gw_part.chunks(wlen) {
                for (g, p) in gw.iter_mut().zip(part) {
                    *g += *p;
                }
            }
        } else {
            let mut cols = pool::alloc_uninit::<E>(krows * ncols);
            let mut gcols = pool::alloc_uninit::<E>(krows * ncols);
            for s in 0..n {
                do_sample(s, &mut gx[s * sample_in..(s + 1) * sample_in], &mut gw, false, &mut cols, &mut gcols);
            }
        }
        let mut grads = vec![Some(gx), Some(gw)];
        if has_bias {
            // db[co] = Σ_{s, pixels} gpre, accumulated natively in E in
            // the same nested order as the sequential loop.
            let mut gb = pool::alloc_zeroed::<E>(cout);
            for s in 0..n {
                for (co, g) in gb.iter_mut().enumerate() {
                    let base = (s * cout + co) * ncols;
                    let mut acc = E::ZERO;
                    for &v in &grad[base..base + ncols] {
                        acc += v;
                    }
                    *g += acc;
                }
            }
            grads.push(Some(gb));
        }
        grads
    })
}

impl Tensor {
    /// 2-D convolution.
    ///
    /// * `self`: input `[N, Cin, H, W]`
    /// * `weight`: filters `[Cout, Cin, Kh, Kw]`
    /// * `bias`: optional `[Cout]`
    ///
    /// Returns `[N, Cout, Ho, Wo]` with `Ho = (H + 2*pad - Kh)/stride + 1`.
    ///
    /// # Panics
    ///
    /// Panics on rank mismatch or if `Cin` disagrees between input and
    /// weight.
    pub fn conv2d(&self, weight: &Tensor, bias: Option<&Tensor>, stride: usize, pad: usize) -> Tensor {
        self.conv2d_act(weight, bias, stride, pad, Activation::Identity)
    }

    /// 2-D convolution with bias and activation fused into the forward
    /// pass: each output tile gets `act(conv + b)` applied while still
    /// cache-hot, and the backward recovers the activation derivative
    /// from the stored output. `act = Identity` is exactly [`Tensor::conv2d`].
    ///
    /// Dtype follows [`Tensor::matmul`]: mixed operands promote to the
    /// wider type, and under an active [`crate::autocast`] guard the
    /// convolution computes in the autocast target with the operand
    /// casts recorded as graph nodes.
    ///
    /// # Panics
    ///
    /// Panics on rank mismatch or if `Cin` disagrees between input and
    /// weight.
    pub fn conv2d_act(
        &self,
        weight: &Tensor,
        bias: Option<&Tensor>,
        stride: usize,
        pad: usize,
        act: Activation,
    ) -> Tensor {
        assert_eq!(self.ndim(), 4, "conv2d: input must be [N, C, H, W]");
        assert_eq!(weight.ndim(), 4, "conv2d: weight must be [Cout, Cin, Kh, Kw]");
        let (n, cin, h, w) = (
            self.shape()[0],
            self.shape()[1],
            self.shape()[2],
            self.shape()[3],
        );
        let (cout, cin2, kh, kw) = (
            weight.shape()[0],
            weight.shape()[1],
            weight.shape()[2],
            weight.shape()[3],
        );
        assert_eq!(cin, cin2, "conv2d: channel mismatch");
        if let Some(b) = bias {
            assert_eq!(b.shape(), &[cout], "conv2d: bias must be [Cout]");
        }

        let _span = tyxe_obs::enabled().then(|| {
            tyxe_obs::metrics::counter("tensor.conv2d.calls").inc();
            tyxe_obs::trace::SpanGuard::enter_with_arg(
                "tensor.conv2d.forward",
                format!("n{n} {cin}->{cout} {h}x{w} k{kh}x{kw}"),
            )
        });

        let mut dt = self.dtype().promote(weight.dtype());
        if let Some(b) = bias {
            dt = dt.promote(b.dtype());
        }
        let dt = crate::autocast::compute_dtype(dt);
        let x = self.cast(dt);
        let weight = weight.cast(dt);
        let bias = bias.map(|b| b.cast(dt));
        dispatch_dtype!(dt, E => conv2d_act_t::<E>(&x, &weight, bias.as_ref(), stride, pad, act))
    }

    /// 2-D max pooling with square kernel `k` and stride `s` over
    /// `[N, C, H, W]`.
    ///
    /// # Panics
    ///
    /// Panics if the input is not 4-D.
    pub fn max_pool2d(&self, k: usize, s: usize) -> Tensor {
        assert_eq!(self.ndim(), 4, "max_pool2d: input must be [N, C, H, W]");
        let (n, c, h, w) = (
            self.shape()[0],
            self.shape()[1],
            self.shape()[2],
            self.shape()[3],
        );
        let ho = conv_out(h, k, s, 0);
        let wo = conv_out(w, k, s, 0);
        let img_out = ho * wo;
        dispatch_dtype!(self.dtype(), E => {
            let mut out = pool::alloc_filled::<E>(n * c * img_out, E::from_f64(f64::NEG_INFINITY));
            let mut arg = vec![0usize; n * c * img_out];
            {
                let x = self.data_of::<E>();
                let x: &[E] = &x;
                // Each (image, output position) scans its own window in the
                // same ki/kj order at any thread count; ties keep the first
                // maximum, exactly as the sequential scan did.
                let ipc = tyxe_par::chunk_len(n * c, 1, 1);
                let chunk = (ipc * img_out).max(1);
                tyxe_par::parallel_for_chunks2(&mut out, &mut arg, chunk, chunk, |ci, oc, ac| {
                    for (li, (ov, av)) in oc.chunks_mut(img_out).zip(ac.chunks_mut(img_out)).enumerate() {
                        let img = ci * ipc + li;
                        for oy in 0..ho {
                            for ox in 0..wo {
                                let o = oy * wo + ox;
                                for ki in 0..k {
                                    for kj in 0..k {
                                        let iy = oy * s + ki;
                                        let ix = ox * s + kj;
                                        if iy < h && ix < w {
                                            let src = (img * h + iy) * w + ix;
                                            if x[src] > ov[o] {
                                                ov[o] = x[src];
                                                av[o] = src;
                                            }
                                        }
                                    }
                                }
                            }
                        }
                    }
                });
            }
            let total = self.numel();
            Tensor::make_op_t::<E>(
                out,
                vec![n, c, ho, wo],
                vec![self.clone()],
                move |_, grad| {
                    // Scatter-accumulate: zeroed pool path required.
                    let mut g = pool::alloc_zeroed::<E>(total);
                    for (o, &src) in arg.iter().enumerate() {
                        g[src] += grad[o];
                    }
                    vec![Some(g)]
                },
            )
        })
    }

    /// Global average pooling over the spatial dims of `[N, C, H, W]`,
    /// returning `[N, C]`.
    pub fn global_avg_pool2d(&self) -> Tensor {
        assert_eq!(self.ndim(), 4, "global_avg_pool2d: input must be [N, C, H, W]");
        let (n, c) = (self.shape()[0], self.shape()[1]);
        let hw = self.shape()[2] * self.shape()[3];
        self.reshape(&[n, c, hw]).mean_axis(2, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::DType;

    #[test]
    fn conv_identity_kernel() {
        // 1x1 kernel with weight 1 reproduces the input.
        let x = Tensor::from_vec((0..8).map(|v| v as f64).collect(), &[1, 2, 2, 2]);
        let w = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2, 1, 1]);
        let y = x.conv2d(&w, None, 1, 0);
        assert_eq!(y.to_vec(), x.to_vec());
    }

    #[test]
    fn conv_known_values() {
        // 3x3 input, 2x2 averaging-ish kernel, stride 1, no pad.
        let x = Tensor::from_vec((1..=9).map(|v| v as f64).collect(), &[1, 1, 3, 3]);
        let w = Tensor::from_vec(vec![1.0; 4], &[1, 1, 2, 2]);
        let y = x.conv2d(&w, None, 1, 0);
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        assert_eq!(y.to_vec(), vec![12.0, 16.0, 24.0, 28.0]);
    }

    #[test]
    fn conv_padding_preserves_size() {
        let x = Tensor::ones(&[2, 3, 5, 5]);
        let w = Tensor::ones(&[4, 3, 3, 3]);
        let y = x.conv2d(&w, None, 1, 1);
        assert_eq!(y.shape(), &[2, 4, 5, 5]);
        // Center output = 3*3*3 = 27 ones.
        assert_eq!(y.at(&[0, 0, 2, 2]), 27.0);
        // Corner output only sees a 2x2x3 window.
        assert_eq!(y.at(&[0, 0, 0, 0]), 12.0);
    }

    #[test]
    fn conv_bias_added_per_channel() {
        let x = Tensor::zeros(&[1, 1, 2, 2]);
        let w = Tensor::zeros(&[3, 1, 1, 1]);
        let b = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]);
        let y = x.conv2d(&w, Some(&b), 1, 0);
        assert_eq!(y.at(&[0, 0, 0, 0]), 1.0);
        assert_eq!(y.at(&[0, 2, 1, 1]), 3.0);
    }

    #[test]
    fn conv_grad_matches_finite_difference() {
        use tyxe_rand::SeedableRng;
        let mut rng = tyxe_rand::rngs::StdRng::seed_from_u64(7);
        let x = Tensor::randn(&[2, 2, 4, 4], &mut rng).requires_grad(true);
        let w = Tensor::randn(&[3, 2, 3, 3], &mut rng).requires_grad(true);
        let b = Tensor::randn(&[3], &mut rng).requires_grad(true);
        let y = x.conv2d(&w, Some(&b), 2, 1).sum();
        y.backward();
        let eps = 1e-5;
        // Check a few weight coordinates by central differences.
        for &i in &[0usize, 7, 35] {
            let mut wp = w.to_vec();
            wp[i] += eps;
            let yp = x
                .detach()
                .conv2d(&Tensor::from_vec(wp.clone(), w.shape()), Some(&b.detach()), 2, 1)
                .sum()
                .item();
            wp[i] -= 2.0 * eps;
            let ym = x
                .detach()
                .conv2d(&Tensor::from_vec(wp, w.shape()), Some(&b.detach()), 2, 1)
                .sum()
                .item();
            let fd = (yp - ym) / (2.0 * eps);
            let an = w.grad().unwrap()[i];
            assert!((fd - an).abs() < 1e-5, "weight grad {i}: fd={fd} an={an}");
        }
        // And an input coordinate.
        let mut xp = x.to_vec();
        xp[10] += eps;
        let yp = Tensor::from_vec(xp.clone(), x.shape())
            .conv2d(&w.detach(), Some(&b.detach()), 2, 1)
            .sum()
            .item();
        xp[10] -= 2.0 * eps;
        let ym = Tensor::from_vec(xp, x.shape())
            .conv2d(&w.detach(), Some(&b.detach()), 2, 1)
            .sum()
            .item();
        let fd = (yp - ym) / (2.0 * eps);
        assert!((fd - x.grad().unwrap()[10]).abs() < 1e-5);
    }

    /// An all-f32 convolution stays f32 end to end, agrees with the f64
    /// run to f32 working precision, and produces f32 gradients.
    #[test]
    fn f32_conv_matches_f64_within_tolerance() {
        use tyxe_rand::SeedableRng;
        let mut rng = tyxe_rand::rngs::StdRng::seed_from_u64(17);
        let x64 = Tensor::randn(&[2, 2, 4, 4], &mut rng).requires_grad(true);
        let w64 = Tensor::randn(&[3, 2, 3, 3], &mut rng).requires_grad(true);
        let b64 = Tensor::randn(&[3], &mut rng).requires_grad(true);
        let y64 = x64.conv2d_act(&w64, Some(&b64), 2, 1, Activation::Relu);
        y64.sum().backward();

        let x = x64.detach().cast(DType::F32).detach().requires_grad(true);
        let w = w64.detach().cast(DType::F32).detach().requires_grad(true);
        let b = b64.detach().cast(DType::F32).detach().requires_grad(true);
        let y = x.conv2d_act(&w, Some(&b), 2, 1, Activation::Relu);
        assert_eq!(y.dtype(), DType::F32);
        y.sum().backward();
        for (a, b) in y.to_vec().iter().zip(y64.to_vec().iter()) {
            assert!((a - b).abs() < 1e-4, "f32 conv value: {a} vs {b}");
        }
        for (g32, g64) in [(&x, &x64), (&w, &w64), (&b, &b64)] {
            for (a, b) in g32.grad().unwrap().iter().zip(g64.grad().unwrap().iter()) {
                assert!((a - b).abs() < 1e-3, "f32 conv grad: {a} vs {b}");
            }
        }
    }

    /// Under an autocast guard an all-f64 convolution computes in f32;
    /// the f64 masters still receive gradients.
    #[test]
    fn autocast_demotes_conv2d() {
        use tyxe_rand::SeedableRng;
        let mut rng = tyxe_rand::rngs::StdRng::seed_from_u64(18);
        let x = Tensor::randn(&[1, 2, 4, 4], &mut rng).requires_grad(true);
        let w = Tensor::randn(&[2, 2, 3, 3], &mut rng).requires_grad(true);
        let g = crate::autocast::autocast(DType::F32);
        let y = x.conv2d(&w, None, 1, 1);
        assert_eq!(y.dtype(), DType::F32);
        drop(g);
        y.sum().backward();
        assert_eq!(x.dtype(), DType::F64);
        assert!(x.grad().is_some());
        assert!(w.grad().is_some());
        assert_eq!(x.conv2d(&w, None, 1, 1).dtype(), DType::F64);
    }

    #[test]
    fn max_pool_values_and_grad() {
        let x = Tensor::from_vec(
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0, 11.0, 12.0, 13.0, 14.0, 15.0, 16.0],
            &[1, 1, 4, 4],
        )
        .requires_grad(true);
        let y = x.max_pool2d(2, 2);
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        assert_eq!(y.to_vec(), vec![6.0, 8.0, 14.0, 16.0]);
        y.sum().backward();
        let g = x.grad().unwrap();
        assert_eq!(g.iter().sum::<f64>(), 4.0);
        assert_eq!(g[5], 1.0);
        assert_eq!(g[15], 1.0);
    }

    #[test]
    fn f32_max_pool_values_and_grad() {
        let x = Tensor::from_vec_f32(
            (1..=16).map(|v| v as f32).collect(),
            &[1, 1, 4, 4],
        )
        .requires_grad(true);
        let y = x.max_pool2d(2, 2);
        assert_eq!(y.dtype(), DType::F32);
        assert_eq!(y.to_vec(), vec![6.0, 8.0, 14.0, 16.0]);
        y.sum().backward();
        let g = x.grad().unwrap();
        assert_eq!(g[5], 1.0);
        assert_eq!(g[15], 1.0);
    }

    #[test]
    #[should_panic]
    fn oversized_kernel_panics_with_named_error() {
        let x = Tensor::zeros(&[1, 1, 4, 4]);
        let w = Tensor::zeros(&[1, 1, 5, 5]);
        let _ = x.conv2d(&w, None, 1, 0);
    }

    #[test]
    fn global_avg_pool_shape() {
        let x = Tensor::ones(&[2, 3, 4, 4]);
        let y = x.global_avg_pool2d();
        assert_eq!(y.shape(), &[2, 3]);
        assert_eq!(y.to_vec(), vec![1.0; 6]);
    }
}
