//! Statistical and structural convenience ops: variance/standard deviation,
//! cumulative sums, outer products, triangular masks and top-k selection.

use crate::element::{Element, dispatch_dtype};
use crate::ops::PAR_MIN_ELEMS;
use crate::pool;
use crate::shape::normalize_axis;
use crate::tensor::Tensor;

fn cumsum_t<E: Element>(src: &Tensor, ax: usize) -> Tensor {
    let shape = src.shape().to_vec();
    let outer: usize = shape[..ax].iter().product();
    let len = shape[ax];
    let inner: usize = shape[ax + 1..].iter().product();
    // Each (outer, inner) pair owns an independent recurrence chain,
    // so outer-aligned chunks can run on separate threads without
    // touching any chain's order. The running sums accumulate natively
    // in the storage dtype.
    let block = len * inner;
    let outer_chunk = move |total: usize| {
        (tyxe_par::chunk_len(total, 1, (PAR_MIN_ELEMS / block.max(1)).max(1)) * block).max(1)
    };
    let mut data = pool::alloc_copy::<E>(&src.data_of::<E>());
    tyxe_par::parallel_for_chunks(&mut data, outer_chunk(outer), |_, piece| {
        for ob in piece.chunks_mut(block) {
            for i in 1..len {
                for q in 0..inner {
                    let prev = ob[(i - 1) * inner + q];
                    ob[i * inner + q] += prev;
                }
            }
        }
    });
    Tensor::make_op_t::<E>(data, shape, vec![src.clone()], move |_, grad| {
        let mut g = pool::alloc_copy::<E>(grad);
        tyxe_par::parallel_for_chunks(&mut g, outer_chunk(outer), |_, piece| {
            for ob in piece.chunks_mut(block) {
                for i in (0..len - 1).rev() {
                    for q in 0..inner {
                        let next = ob[(i + 1) * inner + q];
                        ob[i * inner + q] += next;
                    }
                }
            }
        });
        vec![Some(g)]
    })
}

fn triangular_mask_t<E: Element>(src: &Tensor, k: isize, lower: bool) -> Tensor {
    let (m, n) = (src.shape()[0], src.shape()[1]);
    let keep = move |i: usize, j: usize| {
        let d = j as isize - i as isize;
        if lower {
            d <= k
        } else {
            d >= k
        }
    };
    // Row-aligned chunks; the mask is elementwise, so partitioning is
    // free to vary.
    let row_chunk = (tyxe_par::chunk_len(m, 1, (PAR_MIN_ELEMS / n.max(1)).max(1)) * n).max(1);
    let mask_rows = move |start: usize, piece: &mut [E]| {
        let i0 = start / n.max(1);
        for (li, row) in piece.chunks_mut(n).enumerate() {
            for (j, v) in row.iter_mut().enumerate() {
                if !keep(i0 + li, j) {
                    *v = E::ZERO;
                }
            }
        }
    };
    let mut data = pool::alloc_copy::<E>(&src.data_of::<E>());
    tyxe_par::parallel_for_chunks(&mut data, row_chunk, mask_rows);
    Tensor::make_op_t::<E>(data, vec![m, n], vec![src.clone()], move |_, grad| {
        let mut g = pool::alloc_copy::<E>(grad);
        tyxe_par::parallel_for_chunks(&mut g, row_chunk, mask_rows);
        vec![Some(g)]
    })
}

impl Tensor {
    /// Population variance of all elements (differentiable).
    pub fn var(&self) -> Tensor {
        let mean = self.mean();
        self.sub(&mean).square().mean()
    }

    /// Population standard deviation of all elements (differentiable).
    pub fn std(&self) -> Tensor {
        self.var().sqrt()
    }

    /// Population variance along `axis` (differentiable).
    pub fn var_axis(&self, axis: isize, keepdim: bool) -> Tensor {
        let mean = self.mean_axis(axis, true);
        self.sub(&mean).square().mean_axis(axis, keepdim)
    }

    /// Cumulative sum along `axis` (differentiable: the adjoint is a
    /// reversed cumulative sum).
    pub fn cumsum(&self, axis: isize) -> Tensor {
        let ax = normalize_axis(axis, self.ndim());
        dispatch_dtype!(self.dtype(), E => cumsum_t::<E>(self, ax))
    }

    /// Outer product of two 1-D tensors: `[m] x [n] -> [m, n]`.
    ///
    /// # Panics
    ///
    /// Panics if either operand is not 1-D.
    pub fn outer(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.ndim(), 1, "outer: lhs must be 1-D");
        assert_eq!(other.ndim(), 1, "outer: rhs must be 1-D");
        let m = self.shape()[0];
        let n = other.shape()[0];
        self.reshape(&[m, 1]).matmul(&other.reshape(&[1, n]))
    }

    /// Lower-triangular part of a 2-D tensor (entries above diagonal `k`
    /// zeroed). Differentiable; the adjoint applies the same mask.
    pub fn tril(&self, k: isize) -> Tensor {
        self.triangular_mask(k, true)
    }

    /// Upper-triangular part of a 2-D tensor (entries below diagonal `k`
    /// zeroed).
    pub fn triu(&self, k: isize) -> Tensor {
        self.triangular_mask(k, false)
    }

    fn triangular_mask(&self, k: isize, lower: bool) -> Tensor {
        assert_eq!(self.ndim(), 2, "tril/triu: tensor must be 2-D");
        dispatch_dtype!(self.dtype(), E => triangular_mask_t::<E>(self, k, lower))
    }

    /// Indices of the `k` largest elements of a 1-D tensor, in descending
    /// value order (not differentiable).
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 1-D or `k` exceeds its length.
    pub fn topk_indices(&self, k: usize) -> Vec<usize> {
        assert_eq!(self.ndim(), 1, "topk_indices: tensor must be 1-D");
        let n = self.shape()[0];
        assert!(k <= n, "topk_indices: k = {k} exceeds length {n}");
        // Widened staging read keeps the comparison dtype-independent
        // (f32 → f64 is exact, so the order is unchanged).
        let d = self.to_vec();
        let mut idx: Vec<usize> = (0..n).collect();
        idx.sort_by(|&a, &b| d[b].partial_cmp(&d[a]).expect("no NaNs in topk"));
        idx.truncate(k);
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check_gradient;

    #[test]
    fn var_and_std_match_manual() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[4]);
        assert!((x.var().item() - 1.25).abs() < 1e-12);
        assert!((x.std().item() - 1.25f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn var_axis_per_row() {
        let x = Tensor::from_vec(vec![1.0, 3.0, 0.0, 0.0], &[2, 2]);
        let v = x.var_axis(1, false).to_vec();
        assert!((v[0] - 1.0).abs() < 1e-12);
        assert!(v[1].abs() < 1e-12);
    }

    #[test]
    fn cumsum_values_and_grad() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).requires_grad(true);
        let y = x.cumsum(0);
        assert_eq!(y.to_vec(), vec![1.0, 3.0, 6.0]);
        let w = Tensor::from_vec(vec![1.0, 10.0, 100.0], &[3]);
        y.mul(&w).sum().backward();
        // d/dx_i sum_j w_j cumsum_j = sum_{j >= i} w_j
        assert_eq!(x.grad().unwrap(), vec![111.0, 110.0, 100.0]);
    }

    #[test]
    fn cumsum_2d_axes() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        assert_eq!(x.cumsum(0).to_vec(), vec![1.0, 2.0, 4.0, 6.0]);
        assert_eq!(x.cumsum(1).to_vec(), vec![1.0, 3.0, 3.0, 7.0]);
    }

    #[test]
    fn outer_product() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let b = Tensor::from_vec(vec![3.0, 4.0, 5.0], &[3]);
        let o = a.outer(&b);
        assert_eq!(o.shape(), &[2, 3]);
        assert_eq!(o.to_vec(), vec![3.0, 4.0, 5.0, 6.0, 8.0, 10.0]);
    }

    #[test]
    fn tril_triu_partition() {
        let x = Tensor::from_vec((1..=9).map(|v| v as f64).collect(), &[3, 3]);
        let low = x.tril(0);
        let up = x.triu(1);
        assert_eq!(low.at(&[0, 1]), 0.0);
        assert_eq!(low.at(&[1, 0]), 4.0);
        assert_eq!(up.at(&[0, 1]), 2.0);
        assert_eq!(up.at(&[1, 1]), 0.0);
        // tril(0) + triu(1) reconstructs the matrix.
        assert_eq!(low.add(&up).to_vec(), x.to_vec());
    }

    #[test]
    fn tril_gradient_masks() {
        let x0 = Tensor::from_vec((1..=4).map(|v| v as f64).collect(), &[2, 2]);
        let report = check_gradient(|x| x.tril(0).square().sum(), &x0, 1e-6);
        assert!(report.passes(1e-6), "{report:?}");
    }

    #[test]
    fn var_gradient_checks() {
        let x0 = Tensor::from_vec(vec![0.5, -1.0, 2.0], &[3]);
        let report = check_gradient(|x| x.var(), &x0, 1e-6);
        assert!(report.passes(1e-6), "{report:?}");
    }

    #[test]
    fn topk_descending() {
        let x = Tensor::from_vec(vec![0.1, 5.0, -2.0, 3.0], &[4]);
        assert_eq!(x.topk_indices(2), vec![1, 3]);
        assert_eq!(x.topk_indices(4), vec![1, 3, 0, 2]);
    }

    #[test]
    #[should_panic]
    fn topk_rejects_large_k() {
        let _ = Tensor::zeros(&[2]).topk_indices(3);
    }

    #[test]
    fn f32_cumsum_tril_topk() {
        let x = Tensor::from_vec_f32(vec![1.0, 2.0, 3.0], &[3]).requires_grad(true);
        let y = x.cumsum(0);
        assert_eq!(y.dtype(), crate::element::DType::F32);
        assert_eq!(y.to_vec(), vec![1.0, 3.0, 6.0]);
        y.sum().backward();
        assert_eq!(x.grad().unwrap(), vec![3.0, 2.0, 1.0]);

        let m = Tensor::from_vec_f32((1..=4).map(|v| v as f32).collect(), &[2, 2]);
        let low = m.tril(0);
        assert_eq!(low.dtype(), crate::element::DType::F32);
        assert_eq!(low.to_vec(), vec![1.0, 0.0, 3.0, 4.0]);

        let t = Tensor::from_vec_f32(vec![0.1, 5.0, -2.0, 3.0], &[4]);
        assert_eq!(t.topk_indices(2), vec![1, 3]);
    }
}
