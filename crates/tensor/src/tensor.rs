//! The core [`Tensor`] type and the reverse-mode autodiff engine.
//!
//! A `Tensor` is a cheaply clonable handle (`Rc`) to a dense, row-major
//! buffer — `f64` or `f32`, see [`crate::element::DType`] — together with the
//! computation-graph metadata needed for reverse-mode automatic
//! differentiation. Every differentiable operation returns a fresh tensor
//! whose node records its parents and a backward closure; calling
//! [`Tensor::backward`] on a scalar output topologically sorts the graph and
//! accumulates gradients into every node that requires them.
//!
//! Dtype lives at runtime in the storage enum [`Buf`], so graph plumbing
//! (topological order, gradient slots, plan recording) is written once;
//! kernels dispatch to monomorphic code via
//! [`crate::element::dispatch_dtype`]. Gradients always carry the dtype of
//! the node they belong to — the only place a gradient changes dtype is the
//! backward edge of [`Tensor::cast`], which is exactly the mixed-precision
//! cast boundary (DESIGN.md §12).

use std::cell::{Cell, Ref, RefCell};
use std::fmt;
use std::rc::Rc;

use crate::element::{DType, Element, dispatch_dtype};
use crate::pool::{self, PoolBuf};
use crate::shape::{numel, strides_for};

/// Dtype-tagged, pool-managed storage for one tensor's data or gradient.
///
/// The enum (rather than a generic `Tensor<E>`) keeps the graph machinery
/// and every downstream crate monomorphic over a single `Tensor` type;
/// kernels reach the typed slice through [`Buf::as_slice`] after matching
/// on [`Buf::dtype`].
pub(crate) enum Buf {
    F32(PoolBuf<f32>),
    F64(PoolBuf<f64>),
}

impl Buf {
    /// Wraps a generic pooled buffer into the matching variant (no copy).
    #[inline]
    pub(crate) fn from_pool<E: Element>(b: PoolBuf<E>) -> Buf {
        match E::DTYPE {
            DType::F64 => Buf::F64(b.retype::<f64>()),
            DType::F32 => Buf::F32(b.retype::<f32>()),
        }
    }

    /// Pooled storage holding `src` converted to `dt` (round on narrow).
    pub(crate) fn from_f64_slice(src: &[f64], dt: DType) -> Buf {
        match dt {
            DType::F64 => Buf::F64(pool::alloc_copy(src)),
            DType::F32 => {
                let mut v = pool::alloc_uninit::<f32>(src.len());
                for (o, &x) in v.iter_mut().zip(src) {
                    *o = x as f32;
                }
                Buf::F32(v)
            }
        }
    }

    #[inline(always)]
    pub(crate) fn dtype(&self) -> DType {
        match self {
            Buf::F32(_) => DType::F32,
            Buf::F64(_) => DType::F64,
        }
    }

    #[inline(always)]
    pub(crate) fn len(&self) -> usize {
        match self {
            Buf::F32(v) => v.len(),
            Buf::F64(v) => v.len(),
        }
    }

    /// The typed element view.
    ///
    /// # Panics
    ///
    /// Panics if `E` is not this buffer's dtype — kernels must dispatch
    /// on [`Buf::dtype`] (or the tensor's) first.
    #[inline(always)]
    pub(crate) fn as_slice<E: Element>(&self) -> &[E] {
        match self {
            Buf::F64(v) => crate::element::same_slice::<f64, E>(v),
            Buf::F32(v) => crate::element::same_slice::<f32, E>(v),
        }
    }

    /// Mutable variant of [`Buf::as_slice`].
    #[inline(always)]
    pub(crate) fn as_mut_slice<E: Element>(&mut self) -> &mut [E] {
        match self {
            Buf::F64(v) => crate::element::same_slice_mut::<f64, E>(v),
            Buf::F32(v) => crate::element::same_slice_mut::<f32, E>(v),
        }
    }

    /// Reads one element, widened to `f64` (dtype-transparent accessor
    /// path: `item`, `at`, top-k selection).
    #[inline(always)]
    pub(crate) fn get_f64(&self, i: usize) -> f64 {
        match self {
            Buf::F64(v) => v[i],
            Buf::F32(v) => f64::from(v[i]),
        }
    }

    /// Copies out, widened to `f64`.
    pub(crate) fn to_f64_vec(&self) -> Vec<f64> {
        match self {
            Buf::F64(v) => v.to_vec(),
            Buf::F32(v) => v.iter().map(|&x| f64::from(x)).collect(),
        }
    }

    /// Overwrites every element from an `f64` slice, rounding on narrow
    /// storage. Keeps the buffer's dtype and capacity.
    pub(crate) fn copy_from_f64(&mut self, src: &[f64]) {
        match self {
            Buf::F64(v) => v.copy_from_slice(src),
            Buf::F32(v) => {
                for (o, &x) in v.iter_mut().zip(src) {
                    *o = x as f32;
                }
            }
        }
    }

    /// A pooled copy with the same dtype.
    pub(crate) fn clone_pooled(&self) -> Buf {
        match self {
            Buf::F64(v) => Buf::F64(pool::alloc_copy(v)),
            Buf::F32(v) => Buf::F32(pool::alloc_copy(v)),
        }
    }

    /// A pooled copy converted to `dt` (identity dtype included).
    pub(crate) fn cast_to(&self, dt: DType) -> Buf {
        match (self, dt) {
            (Buf::F64(v), DType::F32) => {
                let mut o = pool::alloc_uninit::<f32>(v.len());
                for (o, &x) in o.iter_mut().zip(v.iter()) {
                    *o = x as f32;
                }
                Buf::F32(o)
            }
            (Buf::F32(v), DType::F64) => {
                let mut o = pool::alloc_uninit::<f64>(v.len());
                for (o, &x) in o.iter_mut().zip(v.iter()) {
                    *o = f64::from(x);
                }
                Buf::F64(o)
            }
            _ => self.clone_pooled(),
        }
    }
}

impl From<Vec<f64>> for Buf {
    fn from(v: Vec<f64>) -> Buf {
        Buf::F64(pool::alloc_copy(&v))
    }
}

/// Plain, `Send + Sync` tensor data detached from the graph: a dtype-tagged
/// flat buffer. This is the hand-off format between the single-threaded
/// tensor world and worker threads (forward-plan replay, the posterior
/// weight-sample cache in `tyxe`): [`Tensor`] is `Rc`-based and cannot
/// cross threads, but its bits can.
#[derive(Debug, Clone, PartialEq)]
pub enum RawData {
    /// `f32` storage, bit-exact.
    F32(Vec<f32>),
    /// `f64` storage, bit-exact.
    F64(Vec<f64>),
}

impl RawData {
    /// Number of elements.
    pub fn len(&self) -> usize {
        match self {
            RawData::F32(v) => v.len(),
            RawData::F64(v) => v.len(),
        }
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The storage dtype.
    pub fn dtype(&self) -> DType {
        match self {
            RawData::F32(_) => DType::F32,
            RawData::F64(_) => DType::F64,
        }
    }

    /// The typed element view (panics on dtype mismatch, like
    /// [`Buf::as_slice`]).
    pub(crate) fn as_slice<E: Element>(&self) -> &[E] {
        match self {
            RawData::F64(v) => crate::element::same_slice::<f64, E>(v),
            RawData::F32(v) => crate::element::same_slice::<f32, E>(v),
        }
    }
}

impl Tensor {
    /// Copies this tensor's storage out as dtype-preserving, `Send`-able
    /// [`RawData`] — bit-exact at either dtype.
    pub fn raw_data(&self) -> RawData {
        match &*self.inner.data.borrow() {
            Buf::F64(v) => RawData::F64(v.to_vec()),
            Buf::F32(v) => RawData::F32(v.to_vec()),
        }
    }

    /// Builds a non-tracking leaf over [`RawData`], preserving dtype and
    /// bits — the inverse of [`Tensor::raw_data`].
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not match `shape`.
    pub fn from_raw(data: RawData, shape: &[usize]) -> Tensor {
        assert_eq!(data.len(), numel(shape), "from_raw: data length mismatch");
        let buf = match data {
            RawData::F64(v) => Buf::F64(pool::alloc_copy(&v)),
            RawData::F32(v) => Buf::F32(pool::alloc_copy(&v)),
        };
        Tensor::leaf_from_buf(buf, shape)
    }
}

/// Backward closure: given the output node and the gradient with respect to
/// it, produce one pool-managed gradient buffer per parent (aligned with
/// `parents`). Returned buffers transfer **ownership**: the engine moves
/// each into an empty parent gradient slot (no copy) or element-adds it and
/// lets it recycle, so every buffer returns to the thread-local pool
/// (`crate::pool`) once its slot clears. `None` entries signal "no gradient
/// flows to this parent". Each returned buffer must carry its parent's
/// dtype (only [`Tensor::cast`] produces a grad dtype different from its
/// own).
pub(crate) type BackwardFn = Box<dyn Fn(&Tensor, &Buf) -> Vec<Option<Buf>>>;

thread_local! {
    static ID_COUNTER: Cell<u64> = const { Cell::new(1) };
}

fn next_id() -> u64 {
    ID_COUNTER.with(|c| {
        let id = c.get();
        c.set(id + 1);
        id
    })
}

/// The next id this thread will assign: nodes with `id >=` this value at
/// `plan::begin_record` time were created during the recording. Used by
/// the plan coverage check ([`crate::plan`]).
pub(crate) fn id_watermark() -> u64 {
    ID_COUNTER.with(Cell::get)
}

pub(crate) struct Inner {
    /// Pool-managed storage: recycled into `crate::pool` when the node
    /// drops, so step `k+1` reuses step `k`'s buffers.
    pub(crate) data: RefCell<Buf>,
    pub(crate) shape: Vec<usize>,
    /// Whether gradients should be tracked through/into this node.
    pub(crate) requires_grad: Cell<bool>,
    /// Accumulated gradient, same length and dtype as `data`. Present only
    /// after a backward pass touched this node; also pool-managed.
    pub(crate) grad: RefCell<Option<Buf>>,
    pub(crate) parents: Vec<Tensor>,
    pub(crate) backward_fn: Option<BackwardFn>,
    pub(crate) id: u64,
}

/// A dense, row-major tensor (`f64` or `f32` storage) participating in a
/// reverse-mode autodiff graph.
///
/// Cloning a `Tensor` is cheap: clones share storage and gradient state.
///
/// # Examples
///
/// ```
/// use tyxe_tensor::Tensor;
/// let x = Tensor::from_vec(vec![1.0, 2.0], &[2]).requires_grad(true);
/// let y = x.mul(&x).sum();
/// y.backward();
/// assert_eq!(x.grad().unwrap(), vec![2.0, 4.0]);
/// ```
#[derive(Clone)]
pub struct Tensor {
    pub(crate) inner: Rc<Inner>,
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let data = self.inner.data.borrow();
        let preview: Vec<f64> = (0..data.len().min(8)).map(|i| data.get_f64(i)).collect();
        f.debug_struct("Tensor")
            .field("shape", &self.inner.shape)
            .field("dtype", &data.dtype())
            .field("requires_grad", &self.inner.requires_grad.get())
            .field("data[..8]", &preview)
            .finish()
    }
}

impl Tensor {
    // ------------------------------------------------------------------
    // Constructors
    // ------------------------------------------------------------------

    pub(crate) fn new_node_buf(
        data: Buf,
        shape: Vec<usize>,
        parents: Vec<Tensor>,
        backward_fn: Option<BackwardFn>,
        requires_grad: bool,
    ) -> Tensor {
        debug_assert_eq!(data.len(), numel(&shape), "data length must match shape");
        Tensor {
            inner: Rc::new(Inner {
                data: RefCell::new(data),
                shape,
                requires_grad: Cell::new(requires_grad),
                grad: RefCell::new(None),
                parents,
                backward_fn,
                id: next_id(),
            }),
        }
    }

    /// Non-tracking leaf over prebuilt storage — the terminal constructor
    /// every dtype-aware path funnels through.
    pub(crate) fn leaf_from_buf(data: Buf, shape: &[usize]) -> Tensor {
        Tensor::new_node_buf(data, shape.to_vec(), Vec::new(), None, false)
    }

    /// Builds a differentiable op node over `E`-typed storage. Gradient
    /// tracking is enabled iff any parent requires it and the thread is
    /// not inside an [`crate::inference::inference_mode`] scope;
    /// otherwise the parents and closure are dropped so inference-time
    /// graphs stay flat.
    /// The typed backward closure is erased into [`BackwardFn`] here —
    /// its `&[E]` incoming gradient and `PoolBuf<E>` outputs all carry
    /// the node's own dtype.
    pub(crate) fn make_op_t<E: Element>(
        data: impl Into<PoolBuf<E>>,
        shape: Vec<usize>,
        parents: Vec<Tensor>,
        backward: impl Fn(&Tensor, &[E]) -> Vec<Option<PoolBuf<E>>> + 'static,
    ) -> Tensor {
        let rg = !crate::inference::active()
            && parents.iter().any(Tensor::requires_grad_enabled);
        if rg {
            let bw: BackwardFn = Box::new(move |out, grad| {
                backward(out, grad.as_slice::<E>())
                    .into_iter()
                    .map(|g| g.map(Buf::from_pool))
                    .collect()
            });
            Tensor::new_node_buf(Buf::from_pool(data.into()), shape, parents, Some(bw), true)
        } else {
            Tensor::new_node_buf(Buf::from_pool(data.into()), shape, Vec::new(), None, false)
        }
    }

    /// The `f64` [`Tensor::make_op_t`] — the op-constructor surface from
    /// before storage went dtype-generic, kept for the ops that are
    /// defined to compute in `f64` (e.g. `linalg`).
    pub(crate) fn make_op(
        data: impl Into<PoolBuf<f64>>,
        shape: Vec<usize>,
        parents: Vec<Tensor>,
        backward: impl Fn(&Tensor, &[f64]) -> Vec<Option<PoolBuf<f64>>> + 'static,
    ) -> Tensor {
        Tensor::make_op_t::<f64>(data, shape, parents, backward)
    }

    /// Builds a custom differentiable operation node — the extension point
    /// for ops this crate does not provide (e.g. sparse matrix products in
    /// the graph crate). Always `f64` (the public extension surface is
    /// dtype-stable; cast inputs up if needed).
    ///
    /// `backward` receives the output node and the gradient with respect to
    /// it, and must return one gradient buffer per parent (in order;
    /// `None` = no gradient). It is only invoked when some parent requires
    /// gradients.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not match `shape`, or if any parent is
    /// not `f64` (cast first).
    pub fn custom_op(
        data: Vec<f64>,
        shape: &[usize],
        parents: Vec<Tensor>,
        backward: impl Fn(&Tensor, &[f64]) -> Vec<Option<Vec<f64>>> + 'static,
    ) -> Tensor {
        assert_eq!(data.len(), numel(shape), "custom_op: data length mismatch");
        for p in &parents {
            assert_eq!(p.dtype(), DType::F64, "custom_op: parents must be f64");
        }
        Tensor::make_op_t::<f64>(
            data,
            shape.to_vec(),
            parents,
            move |out, grad| {
                backward(out, grad).into_iter().map(|g| g.map(PoolBuf::from)).collect()
            },
        )
    }

    /// Creates an `f64` tensor from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not match the number of elements implied by
    /// `shape`.
    pub fn from_vec(data: Vec<f64>, shape: &[usize]) -> Tensor {
        assert_eq!(
            data.len(),
            numel(shape),
            "from_vec: data length {} does not match shape {:?}",
            data.len(),
            shape
        );
        Tensor::leaf_from_buf(Buf::F64(pool::alloc_copy(&data)), shape)
    }

    /// Creates an `f32` tensor from a flat row-major buffer (no
    /// conversion — the bits are stored as given).
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not match `shape`.
    pub fn from_vec_f32(data: Vec<f32>, shape: &[usize]) -> Tensor {
        assert_eq!(
            data.len(),
            numel(shape),
            "from_vec_f32: data length {} does not match shape {:?}",
            data.len(),
            shape
        );
        Tensor::leaf_from_buf(Buf::F32(pool::alloc_copy(&data)), shape)
    }

    /// Creates a rank-0 (scalar) `f64` tensor.
    ///
    /// A constant under plan recording: its value is frozen into the
    /// trace ([`crate::plan`]).
    pub fn scalar(value: f64) -> Tensor {
        let t = Tensor::from_vec(vec![value], &[]);
        crate::plan::record_const(&t);
        t
    }

    /// Creates a tensor filled with `value` (rounded into `dt`). A
    /// plan-recording constant, like [`Tensor::scalar`].
    pub fn full_dtype(shape: &[usize], value: f64, dt: DType) -> Tensor {
        let buf = dispatch_dtype!(dt, E => Buf::from_pool(pool::alloc_filled::<E>(
            numel(shape),
            E::from_f64(value),
        )));
        let t = Tensor::leaf_from_buf(buf, shape);
        crate::plan::record_const(&t);
        t
    }

    /// Creates an `f64` tensor filled with `value`. A plan-recording
    /// constant, like [`Tensor::scalar`].
    pub fn full(shape: &[usize], value: f64) -> Tensor {
        Tensor::full_dtype(shape, value, DType::F64)
    }

    /// Creates a tensor of zeros.
    pub fn zeros(shape: &[usize]) -> Tensor {
        Tensor::full(shape, 0.0)
    }

    /// Creates a tensor of zeros with the given dtype.
    pub fn zeros_dtype(shape: &[usize], dt: DType) -> Tensor {
        Tensor::full_dtype(shape, 0.0, dt)
    }

    /// Creates a tensor of ones.
    pub fn ones(shape: &[usize]) -> Tensor {
        Tensor::full(shape, 1.0)
    }

    /// Creates a tensor of zeros with the same shape and dtype as `self`.
    pub fn zeros_like(&self) -> Tensor {
        Tensor::full_dtype(self.shape(), 0.0, self.dtype())
    }

    /// Creates a tensor of ones with the same shape and dtype as `self`.
    pub fn ones_like(&self) -> Tensor {
        Tensor::full_dtype(self.shape(), 1.0, self.dtype())
    }

    /// Samples an `f64` tensor with i.i.d. standard normal entries.
    pub fn randn<R: tyxe_rand::Rng + ?Sized>(shape: &[usize], rng: &mut R) -> Tensor {
        Tensor::randn_dtype(shape, DType::F64, rng)
    }

    /// [`Tensor::randn`] with explicit storage dtype. The draw itself is
    /// always the `f64` stream (rounded on narrow storage), so an `f32`
    /// and an `f64` tensor sampled from the same seed hold the same
    /// values up to rounding — and consume the generator identically.
    pub fn randn_dtype<R: tyxe_rand::Rng + ?Sized>(
        shape: &[usize],
        dt: DType,
        rng: &mut R,
    ) -> Tensor {
        let buf = dispatch_dtype!(dt, E => Buf::from_pool(pool::alloc_uninit::<E>(numel(shape))));
        let t = Tensor::leaf_from_buf(buf, shape);
        t.refill_randn(rng);
        t
    }

    /// Redraws this tensor's contents as i.i.d. standard normals, in
    /// place, consuming `rng` exactly as the [`Tensor::randn`]
    /// constructor does (for either storage dtype). Out of band (no
    /// graph node): this is the plan replay path's RNG-refresh
    /// primitive.
    pub fn refill_randn<R: tyxe_rand::Rng + ?Sized>(&self, rng: &mut R) {
        let mut b = self.inner.data.borrow_mut();
        match &mut *b {
            Buf::F64(v) => tyxe_rand::fill::fill_standard_normal(v, rng),
            Buf::F32(v) => {
                // Draw through a pooled f64 stage so the f32 path consumes
                // the stream identically, then round per element.
                let mut stage = pool::alloc_uninit::<f64>(v.len());
                tyxe_rand::fill::fill_standard_normal(&mut stage, rng);
                for (o, &x) in v.iter_mut().zip(stage.iter()) {
                    *o = x as f32;
                }
            }
        }
    }

    /// Redraws this tensor's contents uniformly from `[lo, hi)` in
    /// place, consuming `rng` exactly as [`Tensor::rand_uniform`] does.
    /// Out of band, like [`Tensor::refill_randn`].
    pub fn refill_uniform<R: tyxe_rand::Rng + ?Sized>(&self, lo: f64, hi: f64, rng: &mut R) {
        let mut b = self.inner.data.borrow_mut();
        match &mut *b {
            Buf::F64(v) => tyxe_rand::fill::fill_uniform(v, lo, hi, rng),
            Buf::F32(v) => {
                let mut stage = pool::alloc_uninit::<f64>(v.len());
                tyxe_rand::fill::fill_uniform(&mut stage, lo, hi, rng);
                for (o, &x) in v.iter_mut().zip(stage.iter()) {
                    *o = x as f32;
                }
            }
        }
    }

    /// Samples an `f64` tensor with entries drawn uniformly from `[lo, hi)`.
    pub fn rand_uniform<R: tyxe_rand::Rng + ?Sized>(
        shape: &[usize],
        lo: f64,
        hi: f64,
        rng: &mut R,
    ) -> Tensor {
        let mut data = pool::alloc_uninit::<f64>(numel(shape));
        tyxe_rand::fill::fill_uniform(&mut data, lo, hi, rng);
        Tensor::leaf_from_buf(Buf::F64(data), shape)
    }

    /// Creates a 1-D `f64` tensor holding `n` evenly spaced values from `lo`
    /// to `hi` inclusive.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn linspace(lo: f64, hi: f64, n: usize) -> Tensor {
        assert!(n >= 2, "linspace needs at least two points");
        let step = (hi - lo) / (n - 1) as f64;
        let t = Tensor::from_vec((0..n).map(|i| lo + step * i as f64).collect(), &[n]);
        crate::plan::record_const(&t);
        t
    }

    /// Creates a 1-D `f64` tensor `[0, 1, ..., n-1]`.
    pub fn arange(n: usize) -> Tensor {
        let t = Tensor::from_vec((0..n).map(|i| i as f64).collect(), &[n]);
        crate::plan::record_const(&t);
        t
    }

    /// Creates an `f64` identity matrix of size `n x n`.
    pub fn eye(n: usize) -> Tensor {
        let mut data = pool::alloc_zeroed::<f64>(n * n);
        for i in 0..n {
            data[i * n + i] = 1.0;
        }
        let t = Tensor::leaf_from_buf(Buf::F64(data), &[n, n]);
        crate::plan::record_const(&t);
        t
    }

    // ------------------------------------------------------------------
    // Dtype
    // ------------------------------------------------------------------

    /// This tensor's storage dtype.
    pub fn dtype(&self) -> DType {
        self.inner.data.borrow().dtype()
    }

    /// Returns a tensor whose storage is `self` converted to `dt`, or
    /// `self` (same node) when the dtype already matches. Differentiable:
    /// the backward edge converts the gradient back to the source dtype —
    /// widening on the way to `f64` masters, rounding on the way to `f32`
    /// — which makes this op the mixed-precision **cast boundary**.
    /// Replayable under plan recording (the conversion re-reads the
    /// source each step).
    pub fn cast(&self, dt: DType) -> Tensor {
        let src_dt = self.dtype();
        if src_dt == dt {
            return self.clone();
        }
        let data = self.inner.data.borrow().cast_to(dt);
        let t = if !crate::inference::active() && self.requires_grad_enabled() {
            let bw: BackwardFn =
                Box::new(move |_out, grad| vec![Some(grad.cast_to(src_dt))]);
            Tensor::new_node_buf(
                data,
                self.shape().to_vec(),
                vec![self.clone()],
                Some(bw),
                true,
            )
        } else {
            Tensor::leaf_from_buf(data, self.shape())
        };
        let src = self.clone();
        dispatch_dtype!(dt, E => {
            crate::plan::record_op_t::<E>(&t, &[self], move |buf: &mut [E]| {
                let b = src.inner.data.borrow();
                match &*b {
                    Buf::F64(v) => {
                        for (o, &x) in buf.iter_mut().zip(v.iter()) {
                            *o = E::from_f64(x);
                        }
                    }
                    Buf::F32(v) => {
                        for (o, &x) in buf.iter_mut().zip(v.iter()) {
                            *o = E::from_f64(f64::from(x));
                        }
                    }
                }
            });
        });
        crate::plan::fwd_record_cast(&t, self);
        t
    }

    /// Converts this tensor's storage (and clears any gradient) to `dt`,
    /// **in place**, preserving the node id — so optimizer registrations
    /// and guide site maps keyed by [`Tensor::id`] survive a precision
    /// switch. Out of band; invalidates all compiled step plans (a traced
    /// graph bakes in slot dtypes, cf. `plan` slot signatures).
    pub fn convert_dtype_inplace(&self, dt: DType) {
        if self.dtype() == dt {
            return;
        }
        let converted = self.inner.data.borrow().cast_to(dt);
        *self.inner.data.borrow_mut() = converted;
        *self.inner.grad.borrow_mut() = None;
        crate::plan::invalidate_all();
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The shape of this tensor. The empty slice denotes a scalar.
    pub fn shape(&self) -> &[usize] {
        &self.inner.shape
    }

    /// Number of dimensions.
    pub fn ndim(&self) -> usize {
        self.inner.shape.len()
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        numel(&self.inner.shape)
    }

    /// Row-major strides.
    pub fn strides(&self) -> Vec<usize> {
        strides_for(&self.inner.shape)
    }

    /// Borrows the flat row-major data buffer of an `f64` tensor.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is mutably borrowed (e.g. mid `set_data`), or
    /// if the tensor stores `f32` — use [`Tensor::to_vec`] (converting) or
    /// dispatch on [`Tensor::dtype`] for dtype-generic reads.
    pub fn data(&self) -> Ref<'_, [f64]> {
        Ref::map(self.inner.data.borrow(), |b| match b {
            Buf::F64(v) => v.as_slice(),
            Buf::F32(_) => panic!("Tensor::data() on an f32 tensor; use to_vec()"),
        })
    }

    /// Borrows the typed data buffer (dtype-dispatched kernel path).
    ///
    /// # Panics
    ///
    /// Panics if `E` is not this tensor's dtype, or if the buffer is
    /// mutably borrowed.
    pub(crate) fn data_of<E: Element>(&self) -> Ref<'_, [E]> {
        Ref::map(self.inner.data.borrow(), |b| b.as_slice::<E>())
    }

    /// Copies the data out into a fresh `Vec<f64>`, widening `f32`
    /// storage (dtype-transparent: the checkpoint/metrics path).
    pub fn to_vec(&self) -> Vec<f64> {
        self.inner.data.borrow().to_f64_vec()
    }

    /// Returns the single element of a one-element tensor (widened).
    ///
    /// # Panics
    ///
    /// Panics if the tensor holds more than one element.
    pub fn item(&self) -> f64 {
        let data = self.inner.data.borrow();
        assert_eq!(data.len(), 1, "item() requires a single-element tensor");
        data.get_f64(0)
    }

    /// Reads the element at a multi-dimensional index (widened).
    ///
    /// # Panics
    ///
    /// Panics if the index rank or any coordinate is out of bounds.
    pub fn at(&self, idx: &[usize]) -> f64 {
        assert_eq!(idx.len(), self.ndim(), "index rank mismatch");
        let flat = crate::shape::ravel_index(idx, self.shape());
        self.inner.data.borrow().get_f64(flat)
    }

    /// Overwrites this tensor's buffer in place (used by optimizers),
    /// rounding into `f32` storage when applicable — the dtype is kept.
    ///
    /// This does **not** create a graph node; it is an out-of-band update.
    ///
    /// # Panics
    ///
    /// Panics if `data` has the wrong length.
    pub fn set_data(&self, data: Vec<f64>) {
        assert_eq!(data.len(), self.numel(), "set_data length mismatch");
        self.inner.data.borrow_mut().copy_from_f64(&data);
    }

    /// Runs `f` over the data buffer (mutably) and the gradient buffer
    /// simultaneously, returning `false` without calling `f` when no
    /// gradient is present. This is the fused-optimizer entry point: an
    /// update can walk data + grad (+ its own moment lanes) in a single
    /// loop with no intermediate allocation. Out-of-band like
    /// [`Tensor::set_data`]: no graph node is created.
    ///
    /// The view is always `f64`. For `f32` tensors the data and gradient
    /// are staged through pooled `f64` buffers and the updated data is
    /// rounded back once — i.e. optimizer arithmetic runs in `f64`
    /// regardless of storage dtype, a deliberate master-weights-style
    /// choice (DESIGN.md §12).
    pub fn with_data_and_grad(&self, f: impl FnOnce(&mut [f64], &[f64])) -> bool {
        let grad = self.inner.grad.borrow();
        let Some(g) = grad.as_ref() else { return false };
        let mut data = self.inner.data.borrow_mut();
        match (&mut *data, g) {
            (Buf::F64(d), Buf::F64(g)) => f(d, g),
            (d @ Buf::F32(_), Buf::F32(gs)) => {
                let mut dstage = pool::alloc_uninit::<f64>(d.len());
                for (o, &x) in dstage.iter_mut().zip(d.as_slice::<f32>()) {
                    *o = f64::from(x);
                }
                let mut gstage = pool::alloc_uninit::<f64>(gs.len());
                for (o, &x) in gstage.iter_mut().zip(gs.iter()) {
                    *o = f64::from(x);
                }
                f(&mut dstage, &gstage);
                for (o, &x) in d.as_mut_slice::<f32>().iter_mut().zip(dstage.iter()) {
                    *o = x as f32;
                }
            }
            _ => panic!("with_data_and_grad: gradient dtype differs from data"),
        }
        true
    }

    /// Unique node id (useful as a map key, e.g. for effect handlers that
    /// track which distribution a sample came from).
    pub fn id(&self) -> u64 {
        self.inner.id
    }

    /// Whether gradients are tracked into this node.
    pub fn requires_grad_enabled(&self) -> bool {
        self.inner.requires_grad.get()
    }

    /// Marks this tensor as a leaf that accumulates gradients (consuming
    /// builder-style, mirroring `torch.Tensor.requires_grad_`).
    pub fn requires_grad(self, enabled: bool) -> Tensor {
        self.inner.requires_grad.set(enabled);
        self
    }

    /// Returns the accumulated gradient as `f64` (widening `f32`
    /// storage), if a backward pass reached this node.
    pub fn grad(&self) -> Option<Vec<f64>> {
        self.inner.grad.borrow().as_ref().map(Buf::to_f64_vec)
    }

    /// Returns the gradient as a (non-tracking) tensor with this node's
    /// dtype.
    pub fn grad_tensor(&self) -> Option<Tensor> {
        self.inner
            .grad
            .borrow()
            .as_ref()
            .map(|g| Tensor::leaf_from_buf(g.clone_pooled(), self.shape()))
    }

    /// Clears the accumulated gradient.
    pub fn zero_grad(&self) {
        *self.inner.grad.borrow_mut() = None;
    }

    /// Overwrites the accumulated gradient, rounding into this node's
    /// dtype (used by gradient clipping and fault-injection harnesses;
    /// `None` clears it like [`Tensor::zero_grad`]).
    ///
    /// # Panics
    ///
    /// Panics if `grad` is `Some` with the wrong length.
    pub fn set_grad(&self, grad: Option<Vec<f64>>) {
        if let Some(g) = &grad {
            assert_eq!(g.len(), self.numel(), "set_grad length mismatch");
        }
        let dt = self.dtype();
        *self.inner.grad.borrow_mut() = grad.map(|g| Buf::from_f64_slice(&g, dt));
    }

    /// Returns a new leaf tensor sharing **no** graph history with `self`
    /// (same dtype). The data is copied; gradient tracking is off. Under
    /// plan recording the copy replays (reads `self` fresh each step), so
    /// detached values — frozen guide sites, stop-gradient terms — stay
    /// current without poisoning the plan.
    pub fn detach(&self) -> Tensor {
        dispatch_dtype!(self.dtype(), E => {
            let t = Tensor::leaf_from_buf(
                Buf::from_pool(pool::alloc_copy::<E>(&self.data_of::<E>())),
                self.shape(),
            );
            let src = self.clone();
            crate::plan::record_op_t::<E>(&t, &[self], move |buf: &mut [E]| {
                buf.copy_from_slice(&src.data_of::<E>());
            });
            t
        })
    }

    // ------------------------------------------------------------------
    // Backward
    // ------------------------------------------------------------------

    /// Runs reverse-mode differentiation from this scalar output.
    ///
    /// Gradients are **accumulated** into every reachable node with
    /// `requires_grad` (call [`Tensor::zero_grad`] between steps).
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not a scalar (one element); use
    /// [`Tensor::backward_with_grad`] for non-scalar outputs.
    pub fn backward(&self) {
        assert_eq!(
            self.numel(),
            1,
            "backward() requires a scalar output; use backward_with_grad"
        );
        self.backward_with_grad(&[1.0]);
    }

    /// Runs reverse-mode differentiation seeding the output gradient with
    /// `grad_output` (same length as this tensor's buffer; rounded into
    /// the output's dtype before propagation).
    ///
    /// # Panics
    ///
    /// Panics if `grad_output.len()` does not match `self.numel()`.
    pub fn backward_with_grad(&self, grad_output: &[f64]) {
        assert_eq!(grad_output.len(), self.numel(), "backward grad length mismatch");
        if !self.requires_grad_enabled() {
            return;
        }

        // Topological order via iterative post-order DFS.
        let topo = self.topo_order();
        self.backward_over(&topo, grad_output);
    }

    /// The reverse-mode walk over an explicit topological order — the
    /// shared tail of [`Tensor::backward_with_grad`] and the plan replay
    /// path ([`crate::plan::StepPlan::backward`]), which caches the
    /// order instead of recomputing it. `topo_order` is deterministic
    /// for a fixed graph, so both callers walk the identical sequence
    /// and produce bit-identical gradients.
    pub(crate) fn backward_over(&self, topo: &[Tensor], grad_output: &[f64]) {
        // Seed, in the output's own dtype.
        accumulate_grad(self, Buf::from_f64_slice(grad_output, self.dtype()));

        // Walk in reverse topological order, propagating to parents.
        for node in topo.iter().rev() {
            let Some(bw) = node.inner.backward_fn.as_ref() else { continue };
            // Op nodes (the only nodes with a backward closure) never keep
            // gradients past their visit, so move the buffer out instead of
            // cloning; dropping it below recycles it for later nodes.
            let grad = node.inner.grad.borrow_mut().take();
            let Some(grad) = grad else { continue };
            let parent_grads = bw(node, &grad);
            drop(grad);
            debug_assert_eq!(parent_grads.len(), node.inner.parents.len());
            for (parent, pg) in node.inner.parents.iter().zip(parent_grads) {
                if let Some(pg) = pg {
                    if parent.requires_grad_enabled() {
                        accumulate_grad(parent, pg);
                    }
                }
            }
        }
    }

    pub(crate) fn topo_order(&self) -> Vec<Tensor> {
        use std::collections::HashSet;
        let mut topo: Vec<Tensor> = Vec::new();
        let mut visited: HashSet<u64> = HashSet::new();
        // (node, child_cursor)
        let mut stack: Vec<(Tensor, usize)> = vec![(self.clone(), 0)];
        visited.insert(self.inner.id);
        while let Some((node, cursor)) = stack.pop() {
            if cursor < node.inner.parents.len() {
                let parent = node.inner.parents[cursor].clone();
                stack.push((node, cursor + 1));
                if parent.requires_grad_enabled() && visited.insert(parent.inner.id) {
                    stack.push((parent, 0));
                }
            } else {
                topo.push(node);
            }
        }
        topo
    }
}

/// Adds `g` into the node's gradient slot, taking ownership: an empty slot
/// receives the buffer directly (no copy); an occupied slot element-adds
/// (natively, in the slot's dtype) and lets `g` drop back into the pool.
///
/// # Panics
///
/// Panics if `g`'s dtype differs from an occupied slot's — backward
/// closures return parent-dtype gradients by contract, so a mismatch is
/// an engine bug, not a user error.
fn accumulate_grad(t: &Tensor, g: Buf) {
    let mut slot = t.inner.grad.borrow_mut();
    match slot.as_mut() {
        Some(acc) => match (acc, &g) {
            (Buf::F64(a), Buf::F64(b)) => {
                for (a, b) in a.iter_mut().zip(b.iter()) {
                    *a += *b;
                }
            }
            (Buf::F32(a), Buf::F32(b)) => {
                for (a, b) in a.iter_mut().zip(b.iter()) {
                    *a += *b;
                }
            }
            _ => panic!("accumulate_grad: gradient dtype mismatch"),
        },
        None => *slot = Some(g),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        let t = Tensor::scalar(3.5);
        assert_eq!(t.shape(), &[] as &[usize]);
        assert_eq!(t.item(), 3.5);
    }

    #[test]
    fn from_vec_shape_checked() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        assert_eq!(t.at(&[1, 2]), 6.0);
        assert_eq!(t.numel(), 6);
    }

    #[test]
    #[should_panic]
    fn from_vec_length_mismatch_panics() {
        let _ = Tensor::from_vec(vec![1.0], &[2]);
    }

    #[test]
    fn backward_accumulates_through_diamond() {
        // y = x*x + x*x -> dy/dx = 4x
        let x = Tensor::from_vec(vec![3.0], &[1]).requires_grad(true);
        let a = x.mul(&x);
        let y = a.add(&a).sum();
        y.backward();
        assert_eq!(x.grad().unwrap(), vec![12.0]);
    }

    #[test]
    fn backward_twice_accumulates() {
        let x = Tensor::from_vec(vec![2.0], &[1]).requires_grad(true);
        let y = x.mul(&x).sum();
        y.backward();
        y.backward();
        assert_eq!(x.grad().unwrap(), vec![8.0]);
        x.zero_grad();
        assert!(x.grad().is_none());
    }

    #[test]
    fn detach_blocks_gradient() {
        let x = Tensor::from_vec(vec![2.0], &[1]).requires_grad(true);
        let y = x.detach().mul(&x).sum();
        y.backward();
        // Only the non-detached path contributes: dy/dx = detach(x) = 2.
        assert_eq!(x.grad().unwrap(), vec![2.0]);
    }

    #[test]
    fn randn_moments_are_plausible() {
        let mut rng = tyxe_rand::rngs::mock::StepRng::new(12345, 98765);
        // StepRng is too regular for moment checks; use a seeded StdRng instead.
        let _ = &mut rng;
        use tyxe_rand::SeedableRng;
        let mut rng = tyxe_rand::rngs::StdRng::seed_from_u64(0);
        let t = Tensor::randn(&[10000], &mut rng);
        let mean = t.data().iter().sum::<f64>() / 10000.0;
        let var = t.data().iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / 10000.0;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn linspace_endpoints() {
        let t = Tensor::linspace(-1.0, 1.0, 5);
        assert_eq!(t.to_vec(), vec![-1.0, -0.5, 0.0, 0.5, 1.0]);
    }

    #[test]
    fn eye_diag() {
        let t = Tensor::eye(3);
        assert_eq!(t.at(&[1, 1]), 1.0);
        assert_eq!(t.at(&[1, 2]), 0.0);
    }

    #[test]
    fn no_grad_graph_is_flat() {
        let x = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let y = x.mul(&x);
        assert!(!y.requires_grad_enabled());
        assert!(y.inner.parents.is_empty());
    }

    #[test]
    fn f32_storage_roundtrips_through_f64_accessors() {
        let t = Tensor::from_vec_f32(vec![1.5, -2.25, 0.1], &[3]);
        assert_eq!(t.dtype(), DType::F32);
        assert_eq!(t.to_vec()[0], 1.5);
        assert_eq!(t.at(&[1]), -2.25);
        // 0.1f32 widened is NOT 0.1f64 — the accessor must expose the
        // stored f32 value exactly.
        assert_eq!(t.to_vec()[2], f64::from(0.1f32));
        t.set_data(vec![0.25, 0.5, 0.75]);
        assert_eq!(t.to_vec(), vec![0.25, 0.5, 0.75]);
        assert_eq!(t.dtype(), DType::F32, "set_data must keep the dtype");
    }

    #[test]
    #[should_panic(expected = "f32 tensor")]
    fn data_on_f32_panics() {
        let t = Tensor::from_vec_f32(vec![1.0], &[1]);
        let _ = t.data();
    }

    #[test]
    fn cast_converts_and_backpropagates() {
        let x = Tensor::from_vec(vec![0.1, 2.0], &[2]).requires_grad(true);
        let y = x.cast(DType::F32);
        assert_eq!(y.dtype(), DType::F32);
        assert_eq!(y.to_vec()[0], f64::from(0.1f32));
        let loss = y.mul(&y).sum();
        assert_eq!(loss.dtype(), DType::F32);
        loss.backward();
        // d/dx (cast(x))^2 = 2·cast(x), widened back to f64 at the cast.
        let g = x.grad().unwrap();
        assert_eq!(g[0], f64::from(2.0f32 * 0.1f32));
        assert_eq!(g[1], 4.0);
        // Same-dtype cast is the identity node.
        let z = x.cast(DType::F64);
        assert_eq!(z.id(), x.id());
    }

    #[test]
    fn convert_dtype_inplace_keeps_id() {
        let x = Tensor::from_vec(vec![1.0, 2.0], &[2]).requires_grad(true);
        let id = x.id();
        x.convert_dtype_inplace(DType::F32);
        assert_eq!(x.id(), id);
        assert_eq!(x.dtype(), DType::F32);
        assert_eq!(x.to_vec(), vec![1.0, 2.0]);
        x.convert_dtype_inplace(DType::F64);
        assert_eq!(x.dtype(), DType::F64);
    }

    #[test]
    fn randn_dtype_shares_the_stream() {
        use tyxe_rand::SeedableRng;
        let mut r1 = tyxe_rand::rngs::StdRng::seed_from_u64(7);
        let mut r2 = tyxe_rand::rngs::StdRng::seed_from_u64(7);
        let a = Tensor::randn(&[64], &mut r1);
        let b = Tensor::randn_dtype(&[64], DType::F32, &mut r2);
        for (x, y) in a.to_vec().iter().zip(b.to_vec()) {
            assert_eq!(*x as f32, y as f32, "f32 draw must be the rounded f64 draw");
        }
        // And the streams stay in lockstep afterwards.
        let a2 = Tensor::randn(&[8], &mut r1);
        let b2 = Tensor::randn(&[8], &mut r2);
        assert_eq!(a2.to_vec(), b2.to_vec());
    }
}
