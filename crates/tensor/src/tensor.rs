//! The core [`Tensor`] type and the reverse-mode autodiff engine.
//!
//! A `Tensor` is a cheaply clonable handle (`Rc`) to a dense, row-major `f64`
//! buffer together with the computation-graph metadata needed for reverse-mode
//! automatic differentiation. Every differentiable operation returns a fresh
//! tensor whose node records its parents and a backward closure; calling
//! [`Tensor::backward`] on a scalar output topologically sorts the graph and
//! accumulates gradients into every node that requires them.

use std::cell::{Cell, Ref, RefCell};
use std::fmt;
use std::rc::Rc;

use crate::pool::{self, PoolBuf};
use crate::shape::{numel, strides_for};

/// Backward closure: given the output node and the gradient with respect to
/// it, produce one pool-managed gradient buffer per parent (aligned with
/// `parents`). Returned buffers transfer **ownership**: the engine moves
/// each into an empty parent gradient slot (no copy) or element-adds it and
/// lets it recycle, so every buffer returns to the thread-local pool
/// (`crate::pool`) once its slot clears. `None` entries signal "no gradient
/// flows to this parent".
pub(crate) type BackwardFn = Box<dyn Fn(&Tensor, &[f64]) -> Vec<Option<PoolBuf>>>;

thread_local! {
    static ID_COUNTER: Cell<u64> = const { Cell::new(1) };
}

fn next_id() -> u64 {
    ID_COUNTER.with(|c| {
        let id = c.get();
        c.set(id + 1);
        id
    })
}

/// The next id this thread will assign: nodes with `id >=` this value at
/// `plan::begin_record` time were created during the recording. Used by
/// the plan coverage check ([`crate::plan`]).
pub(crate) fn id_watermark() -> u64 {
    ID_COUNTER.with(Cell::get)
}

pub(crate) struct Inner {
    /// Pool-managed storage: recycled into `crate::pool` when the node
    /// drops, so step `k+1` reuses step `k`'s buffers.
    pub(crate) data: RefCell<PoolBuf>,
    pub(crate) shape: Vec<usize>,
    /// Whether gradients should be tracked through/into this node.
    pub(crate) requires_grad: Cell<bool>,
    /// Accumulated gradient, same length as `data`. Present only after a
    /// backward pass touched this node; also pool-managed.
    pub(crate) grad: RefCell<Option<PoolBuf>>,
    pub(crate) parents: Vec<Tensor>,
    pub(crate) backward_fn: Option<BackwardFn>,
    pub(crate) id: u64,
}

/// A dense, row-major `f64` tensor participating in a reverse-mode autodiff
/// graph.
///
/// Cloning a `Tensor` is cheap: clones share storage and gradient state.
///
/// # Examples
///
/// ```
/// use tyxe_tensor::Tensor;
/// let x = Tensor::from_vec(vec![1.0, 2.0], &[2]).requires_grad(true);
/// let y = x.mul(&x).sum();
/// y.backward();
/// assert_eq!(x.grad().unwrap(), vec![2.0, 4.0]);
/// ```
#[derive(Clone)]
pub struct Tensor {
    pub(crate) inner: Rc<Inner>,
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let data = self.inner.data.borrow();
        let preview: Vec<f64> = data.iter().take(8).copied().collect();
        f.debug_struct("Tensor")
            .field("shape", &self.inner.shape)
            .field("requires_grad", &self.inner.requires_grad.get())
            .field("data[..8]", &preview)
            .finish()
    }
}

impl Tensor {
    // ------------------------------------------------------------------
    // Constructors
    // ------------------------------------------------------------------

    pub(crate) fn new_node(
        data: Vec<f64>,
        shape: Vec<usize>,
        parents: Vec<Tensor>,
        backward_fn: Option<BackwardFn>,
        requires_grad: bool,
    ) -> Tensor {
        debug_assert_eq!(data.len(), numel(&shape), "data length must match shape");
        Tensor {
            inner: Rc::new(Inner {
                data: RefCell::new(data.into()),
                shape,
                requires_grad: Cell::new(requires_grad),
                grad: RefCell::new(None),
                parents,
                backward_fn,
                id: next_id(),
            }),
        }
    }

    /// Builds a differentiable op node. Gradient tracking is enabled iff any
    /// parent requires it; otherwise the parents and closure are dropped so
    /// inference-time graphs stay flat.
    pub(crate) fn make_op(
        data: Vec<f64>,
        shape: Vec<usize>,
        parents: Vec<Tensor>,
        backward_fn: BackwardFn,
    ) -> Tensor {
        let rg = parents.iter().any(Tensor::requires_grad_enabled);
        if rg {
            Tensor::new_node(data, shape, parents, Some(backward_fn), true)
        } else {
            Tensor::new_node(data, shape, Vec::new(), None, false)
        }
    }

    /// Builds a custom differentiable operation node — the extension point
    /// for ops this crate does not provide (e.g. sparse matrix products in
    /// the graph crate).
    ///
    /// `backward` receives the output node and the gradient with respect to
    /// it, and must return one gradient buffer per parent (in order;
    /// `None` = no gradient). It is only invoked when some parent requires
    /// gradients.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not match `shape`.
    pub fn custom_op(
        data: Vec<f64>,
        shape: &[usize],
        parents: Vec<Tensor>,
        backward: impl Fn(&Tensor, &[f64]) -> Vec<Option<Vec<f64>>> + 'static,
    ) -> Tensor {
        assert_eq!(data.len(), numel(shape), "custom_op: data length mismatch");
        Tensor::make_op(
            data,
            shape.to_vec(),
            parents,
            Box::new(move |out, grad| {
                backward(out, grad).into_iter().map(|g| g.map(PoolBuf::from)).collect()
            }),
        )
    }

    /// Creates a tensor from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not match the number of elements implied by
    /// `shape`.
    pub fn from_vec(data: Vec<f64>, shape: &[usize]) -> Tensor {
        assert_eq!(
            data.len(),
            numel(shape),
            "from_vec: data length {} does not match shape {:?}",
            data.len(),
            shape
        );
        Tensor::new_node(data, shape.to_vec(), Vec::new(), None, false)
    }

    /// Creates a rank-0 (scalar) tensor.
    ///
    /// A constant under plan recording: its value is frozen into the
    /// trace ([`crate::plan`]).
    pub fn scalar(value: f64) -> Tensor {
        let t = Tensor::from_vec(vec![value], &[]);
        crate::plan::record_const(&t);
        t
    }

    /// Creates a tensor filled with `value`. A plan-recording constant,
    /// like [`Tensor::scalar`].
    pub fn full(shape: &[usize], value: f64) -> Tensor {
        let t = Tensor::from_vec(pool::alloc_filled(numel(shape), value), shape);
        crate::plan::record_const(&t);
        t
    }

    /// Creates a tensor of zeros.
    pub fn zeros(shape: &[usize]) -> Tensor {
        Tensor::full(shape, 0.0)
    }

    /// Creates a tensor of ones.
    pub fn ones(shape: &[usize]) -> Tensor {
        Tensor::full(shape, 1.0)
    }

    /// Creates a tensor of zeros with the same shape as `self`.
    pub fn zeros_like(&self) -> Tensor {
        Tensor::zeros(self.shape())
    }

    /// Creates a tensor of ones with the same shape as `self`.
    pub fn ones_like(&self) -> Tensor {
        Tensor::ones(self.shape())
    }

    /// Samples a tensor with i.i.d. standard normal entries.
    pub fn randn<R: tyxe_rand::Rng + ?Sized>(shape: &[usize], rng: &mut R) -> Tensor {
        let mut data = pool::alloc_uninit(numel(shape));
        tyxe_rand::fill::fill_standard_normal(&mut data, rng);
        Tensor::from_vec(data, shape)
    }

    /// Redraws this tensor's contents as i.i.d. standard normals, in
    /// place, consuming `rng` exactly as the [`Tensor::randn`]
    /// constructor does. Out of band (no graph node): this is the plan
    /// replay path's RNG-refresh primitive.
    pub fn refill_randn<R: tyxe_rand::Rng + ?Sized>(&self, rng: &mut R) {
        tyxe_rand::fill::fill_standard_normal(self.inner.data.borrow_mut().as_mut_slice(), rng);
    }

    /// Redraws this tensor's contents uniformly from `[lo, hi)` in
    /// place, consuming `rng` exactly as [`Tensor::rand_uniform`] does.
    /// Out of band, like [`Tensor::refill_randn`].
    pub fn refill_uniform<R: tyxe_rand::Rng + ?Sized>(&self, lo: f64, hi: f64, rng: &mut R) {
        tyxe_rand::fill::fill_uniform(self.inner.data.borrow_mut().as_mut_slice(), lo, hi, rng);
    }

    /// Samples a tensor with entries drawn uniformly from `[lo, hi)`.
    pub fn rand_uniform<R: tyxe_rand::Rng + ?Sized>(
        shape: &[usize],
        lo: f64,
        hi: f64,
        rng: &mut R,
    ) -> Tensor {
        let mut data = pool::alloc_uninit(numel(shape));
        tyxe_rand::fill::fill_uniform(&mut data, lo, hi, rng);
        Tensor::from_vec(data, shape)
    }

    /// Creates a 1-D tensor holding `n` evenly spaced values from `lo` to
    /// `hi` inclusive.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn linspace(lo: f64, hi: f64, n: usize) -> Tensor {
        assert!(n >= 2, "linspace needs at least two points");
        let step = (hi - lo) / (n - 1) as f64;
        let t = Tensor::from_vec((0..n).map(|i| lo + step * i as f64).collect(), &[n]);
        crate::plan::record_const(&t);
        t
    }

    /// Creates a 1-D tensor `[0, 1, ..., n-1]`.
    pub fn arange(n: usize) -> Tensor {
        let t = Tensor::from_vec((0..n).map(|i| i as f64).collect(), &[n]);
        crate::plan::record_const(&t);
        t
    }

    /// Creates an identity matrix of size `n x n`.
    pub fn eye(n: usize) -> Tensor {
        let mut data = pool::alloc_zeroed(n * n);
        for i in 0..n {
            data[i * n + i] = 1.0;
        }
        let t = Tensor::from_vec(data, &[n, n]);
        crate::plan::record_const(&t);
        t
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The shape of this tensor. The empty slice denotes a scalar.
    pub fn shape(&self) -> &[usize] {
        &self.inner.shape
    }

    /// Number of dimensions.
    pub fn ndim(&self) -> usize {
        self.inner.shape.len()
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        numel(&self.inner.shape)
    }

    /// Row-major strides.
    pub fn strides(&self) -> Vec<usize> {
        strides_for(&self.inner.shape)
    }

    /// Borrows the flat row-major data buffer.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is mutably borrowed (e.g. mid `set_data`).
    pub fn data(&self) -> Ref<'_, Vec<f64>> {
        Ref::map(self.inner.data.borrow(), |b| &**b)
    }

    /// Copies the data out into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<f64> {
        (*self.inner.data.borrow()).clone()
    }

    /// Returns the single element of a one-element tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor holds more than one element.
    pub fn item(&self) -> f64 {
        let data = self.inner.data.borrow();
        assert_eq!(data.len(), 1, "item() requires a single-element tensor");
        data[0]
    }

    /// Reads the element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if the index rank or any coordinate is out of bounds.
    pub fn at(&self, idx: &[usize]) -> f64 {
        assert_eq!(idx.len(), self.ndim(), "index rank mismatch");
        let flat = crate::shape::ravel_index(idx, self.shape());
        self.inner.data.borrow()[flat]
    }

    /// Overwrites this tensor's buffer in place (used by optimizers).
    ///
    /// This does **not** create a graph node; it is an out-of-band update.
    ///
    /// # Panics
    ///
    /// Panics if `data` has the wrong length.
    pub fn set_data(&self, data: Vec<f64>) {
        assert_eq!(data.len(), self.numel(), "set_data length mismatch");
        *self.inner.data.borrow_mut() = data.into();
    }

    /// Runs `f` over the data buffer (mutably) and the gradient buffer
    /// simultaneously, returning `false` without calling `f` when no
    /// gradient is present. This is the fused-optimizer entry point: an
    /// update can walk data + grad (+ its own moment lanes) in a single
    /// loop with no intermediate allocation. Out-of-band like
    /// [`Tensor::set_data`]: no graph node is created.
    pub fn with_data_and_grad(&self, f: impl FnOnce(&mut [f64], &[f64])) -> bool {
        let grad = self.inner.grad.borrow();
        let Some(g) = grad.as_ref() else { return false };
        let mut data = self.inner.data.borrow_mut();
        f(&mut data, g);
        true
    }

    /// Unique node id (useful as a map key, e.g. for effect handlers that
    /// track which distribution a sample came from).
    pub fn id(&self) -> u64 {
        self.inner.id
    }

    /// Whether gradients are tracked into this node.
    pub fn requires_grad_enabled(&self) -> bool {
        self.inner.requires_grad.get()
    }

    /// Marks this tensor as a leaf that accumulates gradients (consuming
    /// builder-style, mirroring `torch.Tensor.requires_grad_`).
    pub fn requires_grad(self, enabled: bool) -> Tensor {
        self.inner.requires_grad.set(enabled);
        self
    }

    /// Returns the accumulated gradient, if a backward pass reached this node.
    pub fn grad(&self) -> Option<Vec<f64>> {
        self.inner.grad.borrow().as_ref().map(|g| (**g).clone())
    }

    /// Returns the gradient as a (non-tracking) tensor.
    pub fn grad_tensor(&self) -> Option<Tensor> {
        self.grad().map(|g| Tensor::from_vec(g, self.shape()))
    }

    /// Clears the accumulated gradient.
    pub fn zero_grad(&self) {
        *self.inner.grad.borrow_mut() = None;
    }

    /// Overwrites the accumulated gradient (used by gradient clipping and
    /// fault-injection harnesses; `None` clears it like [`Tensor::zero_grad`]).
    ///
    /// # Panics
    ///
    /// Panics if `grad` is `Some` with the wrong length.
    pub fn set_grad(&self, grad: Option<Vec<f64>>) {
        if let Some(g) = &grad {
            assert_eq!(g.len(), self.numel(), "set_grad length mismatch");
        }
        *self.inner.grad.borrow_mut() = grad.map(PoolBuf::from);
    }

    /// Returns a new leaf tensor sharing **no** graph history with `self`.
    /// The data is copied; gradient tracking is off. Under plan
    /// recording the copy replays (reads `self` fresh each step), so
    /// detached values — frozen guide sites, stop-gradient terms — stay
    /// current without poisoning the plan.
    pub fn detach(&self) -> Tensor {
        let t = Tensor::from_vec(pool::alloc_copy(&self.data()), self.shape());
        let src = self.clone();
        crate::plan::record_op(&t, &[self], move |buf| buf.copy_from_slice(&src.data()));
        t
    }

    // ------------------------------------------------------------------
    // Backward
    // ------------------------------------------------------------------

    /// Runs reverse-mode differentiation from this scalar output.
    ///
    /// Gradients are **accumulated** into every reachable node with
    /// `requires_grad` (call [`Tensor::zero_grad`] between steps).
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not a scalar (one element); use
    /// [`Tensor::backward_with_grad`] for non-scalar outputs.
    pub fn backward(&self) {
        assert_eq!(
            self.numel(),
            1,
            "backward() requires a scalar output; use backward_with_grad"
        );
        self.backward_with_grad(&[1.0]);
    }

    /// Runs reverse-mode differentiation seeding the output gradient with
    /// `grad_output` (same length as this tensor's buffer).
    ///
    /// # Panics
    ///
    /// Panics if `grad_output.len()` does not match `self.numel()`.
    pub fn backward_with_grad(&self, grad_output: &[f64]) {
        assert_eq!(grad_output.len(), self.numel(), "backward grad length mismatch");
        if !self.requires_grad_enabled() {
            return;
        }

        // Topological order via iterative post-order DFS.
        let topo = self.topo_order();
        self.backward_over(&topo, grad_output);
    }

    /// The reverse-mode walk over an explicit topological order — the
    /// shared tail of [`Tensor::backward_with_grad`] and the plan replay
    /// path ([`crate::plan::StepPlan::backward`]), which caches the
    /// order instead of recomputing it. `topo_order` is deterministic
    /// for a fixed graph, so both callers walk the identical sequence
    /// and produce bit-identical gradients.
    pub(crate) fn backward_over(&self, topo: &[Tensor], grad_output: &[f64]) {
        // Seed.
        accumulate_grad(self, pool::alloc_copy(grad_output).into());

        // Walk in reverse topological order, propagating to parents.
        for node in topo.iter().rev() {
            let Some(bw) = node.inner.backward_fn.as_ref() else { continue };
            // Op nodes (the only nodes with a backward closure) never keep
            // gradients past their visit, so move the buffer out instead of
            // cloning; dropping it below recycles it for later nodes.
            let grad = node.inner.grad.borrow_mut().take();
            let Some(grad) = grad else { continue };
            let parent_grads = bw(node, &grad);
            drop(grad);
            debug_assert_eq!(parent_grads.len(), node.inner.parents.len());
            for (parent, pg) in node.inner.parents.iter().zip(parent_grads) {
                if let Some(pg) = pg {
                    if parent.requires_grad_enabled() {
                        accumulate_grad(parent, pg);
                    }
                }
            }
        }
    }

    pub(crate) fn topo_order(&self) -> Vec<Tensor> {
        use std::collections::HashSet;
        let mut topo: Vec<Tensor> = Vec::new();
        let mut visited: HashSet<u64> = HashSet::new();
        // (node, child_cursor)
        let mut stack: Vec<(Tensor, usize)> = vec![(self.clone(), 0)];
        visited.insert(self.inner.id);
        while let Some((node, cursor)) = stack.pop() {
            if cursor < node.inner.parents.len() {
                let parent = node.inner.parents[cursor].clone();
                stack.push((node, cursor + 1));
                if parent.requires_grad_enabled() && visited.insert(parent.inner.id) {
                    stack.push((parent, 0));
                }
            } else {
                topo.push(node);
            }
        }
        topo
    }
}

/// Adds `g` into the node's gradient slot, taking ownership: an empty slot
/// receives the buffer directly (no copy); an occupied slot element-adds
/// and lets `g` drop back into the pool.
fn accumulate_grad(t: &Tensor, g: PoolBuf) {
    let mut slot = t.inner.grad.borrow_mut();
    match slot.as_mut() {
        Some(acc) => {
            for (a, b) in acc.iter_mut().zip(g.iter()) {
                *a += b;
            }
        }
        None => *slot = Some(g),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        let t = Tensor::scalar(3.5);
        assert_eq!(t.shape(), &[] as &[usize]);
        assert_eq!(t.item(), 3.5);
    }

    #[test]
    fn from_vec_shape_checked() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        assert_eq!(t.at(&[1, 2]), 6.0);
        assert_eq!(t.numel(), 6);
    }

    #[test]
    #[should_panic]
    fn from_vec_length_mismatch_panics() {
        let _ = Tensor::from_vec(vec![1.0], &[2]);
    }

    #[test]
    fn backward_accumulates_through_diamond() {
        // y = x*x + x*x -> dy/dx = 4x
        let x = Tensor::from_vec(vec![3.0], &[1]).requires_grad(true);
        let a = x.mul(&x);
        let y = a.add(&a).sum();
        y.backward();
        assert_eq!(x.grad().unwrap(), vec![12.0]);
    }

    #[test]
    fn backward_twice_accumulates() {
        let x = Tensor::from_vec(vec![2.0], &[1]).requires_grad(true);
        let y = x.mul(&x).sum();
        y.backward();
        y.backward();
        assert_eq!(x.grad().unwrap(), vec![8.0]);
        x.zero_grad();
        assert!(x.grad().is_none());
    }

    #[test]
    fn detach_blocks_gradient() {
        let x = Tensor::from_vec(vec![2.0], &[1]).requires_grad(true);
        let y = x.detach().mul(&x).sum();
        y.backward();
        // Only the non-detached path contributes: dy/dx = detach(x) = 2.
        assert_eq!(x.grad().unwrap(), vec![2.0]);
    }

    #[test]
    fn randn_moments_are_plausible() {
        let mut rng = tyxe_rand::rngs::mock::StepRng::new(12345, 98765);
        // StepRng is too regular for moment checks; use a seeded StdRng instead.
        let _ = &mut rng;
        use tyxe_rand::SeedableRng;
        let mut rng = tyxe_rand::rngs::StdRng::seed_from_u64(0);
        let t = Tensor::randn(&[10000], &mut rng);
        let mean = t.data().iter().sum::<f64>() / 10000.0;
        let var = t.data().iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / 10000.0;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn linspace_endpoints() {
        let t = Tensor::linspace(-1.0, 1.0, 5);
        assert_eq!(t.to_vec(), vec![-1.0, -0.5, 0.0, 0.5, 1.0]);
    }

    #[test]
    fn eye_diag() {
        let t = Tensor::eye(3);
        assert_eq!(t.at(&[1, 1]), 1.0);
        assert_eq!(t.at(&[1, 2]), 0.0);
    }

    #[test]
    fn no_grad_graph_is_flat() {
        let x = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let y = x.mul(&x);
        assert!(!y.requires_grad_enabled());
        assert!(y.inner.parents.is_empty());
    }
}
