//! Thread-local, size-bucketed buffer pool for tensor storage.
//!
//! SVI training rebuilds the same computation graph every step, so the
//! engine allocates (and frees) an identical multiset of buffers
//! thousands of times. This module recycles them: freed buffers go into
//! per-thread power-of-2 free-lists and are handed back out by
//! [`alloc_uninit`]/[`alloc_zeroed`] instead of hitting the system
//! allocator. See DESIGN.md §10 for the full memory-reuse contract.
//!
//! # Bucket layout — bytes, not elements
//!
//! Storage is dtype-agnostic: every pooled buffer is a `Vec<u64>` of
//! 8-byte words, and free-lists are keyed by **byte capacity** (bucket
//! `b` holds buffers of `2^b` words = `2^(b+3)` bytes). A [`PoolBuf<E>`]
//! of `n` elements views `ceil(n·size_of::<E>() / 8)` words as `[E]`,
//! so an `f32` buffer and an `f64` buffer of the same byte footprint
//! recycle through the *same* bucket — freeing an `f32` activation can
//! serve the next `f64` gradient and vice versa, with no per-dtype
//! fragmentation. Requests above [`MAX_POOL_WORDS`] words (32 MiB) and
//! zero-length requests bypass the pool. Each bucket retains at most
//! [`bucket_cap`] buffers — generous for small buckets (a live autodiff
//! graph holds hundreds of small tensors at once), tight for multi-MiB
//! ones — and excess returns are simply freed, so pool growth plateaus
//! (the leak guard in `tests/pool.rs` pins this).
//!
//! # Uninit-overwrite safety
//!
//! [`alloc_uninit`] may return a buffer still holding **stale bytes
//! from its previous life** (always initialized memory — everything
//! here is safe Rust; "uninit" refers only to the values). Callers must
//! therefore overwrite every element before any read. This is only used
//! where full overwrite is structural: elementwise map outputs,
//! overwrite-mode GEMM outputs (`ops::gemm_kernels`), gather/copy
//! targets, RNG fills. Kernels that *accumulate* into their output
//! (`col2im`, scatter-adds, broadcast reductions) use [`alloc_zeroed`].
//! Because results never depend on a buffer's prior contents, numerics
//! are bit-identical with the pool on or off — pinned end to end by
//! `tests/determinism.rs`, per dtype.
//!
//! # `TYXE_POOL` semantics
//!
//! `TYXE_POOL=0` disables recycling at process start: every allocation
//! falls back to a plain zeroed vector and every return is freed. Any
//! other value (or unset) enables the pool. [`set_enabled`] toggles at
//! runtime (used by the parity tests). Obs counters
//! `tensor.alloc.pool_hit`/`pool_miss`/`bytes_recycled`, their
//! per-dtype variants (`tensor.alloc.pool_hit.f32`, …) and the
//! `tensor.alloc.pool_size` gauge are updated unconditionally so
//! hit-rate accounting stays exact — same policy as the PR 3/4
//! exactness-critical counters. **All pool metrics are
//! byte-denominated** where they carry a size: `bytes_recycled` and
//! `pool_size` count bytes of word storage, never element counts.

use std::cell::RefCell;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicI64, AtomicUsize, Ordering};

use crate::element::Element;

/// Cached tyxe-obs handles. Ungated: pool accounting must stay exact
/// (the bench harness and the hit-ratio acceptance gate read these).
mod probe {
    use std::sync::OnceLock;

    use tyxe_obs::metrics::{Counter, Gauge};

    use crate::element::DType;

    /// Allocations served from a free-list.
    pub fn pool_hit() -> &'static Counter {
        static C: OnceLock<Counter> = OnceLock::new();
        C.get_or_init(|| tyxe_obs::metrics::counter("tensor.alloc.pool_hit"))
    }

    /// Allocations that fell through to the system allocator (pool
    /// disabled, empty bucket, or out-of-range size).
    pub fn pool_miss() -> &'static Counter {
        static C: OnceLock<Counter> = OnceLock::new();
        C.get_or_init(|| tyxe_obs::metrics::counter("tensor.alloc.pool_miss"))
    }

    /// Per-dtype hit/miss splits of the aggregate counters above: the
    /// free-lists themselves are dtype-blind (byte buckets), but the
    /// allocation *traffic* is attributed to the element type that
    /// requested it, so a mixed-precision run shows both streams.
    pub fn pool_hit_dtype(dt: DType) -> &'static Counter {
        static F32: OnceLock<Counter> = OnceLock::new();
        static F64: OnceLock<Counter> = OnceLock::new();
        match dt {
            DType::F32 => F32.get_or_init(|| tyxe_obs::metrics::counter("tensor.alloc.pool_hit.f32")),
            DType::F64 => F64.get_or_init(|| tyxe_obs::metrics::counter("tensor.alloc.pool_hit.f64")),
        }
    }

    /// See [`pool_hit_dtype`].
    pub fn pool_miss_dtype(dt: DType) -> &'static Counter {
        static F32: OnceLock<Counter> = OnceLock::new();
        static F64: OnceLock<Counter> = OnceLock::new();
        match dt {
            DType::F32 => {
                F32.get_or_init(|| tyxe_obs::metrics::counter("tensor.alloc.pool_miss.f32"))
            }
            DType::F64 => {
                F64.get_or_init(|| tyxe_obs::metrics::counter("tensor.alloc.pool_miss.f64"))
            }
        }
    }

    /// Total bytes returned to free-lists over the process lifetime.
    pub fn bytes_recycled() -> &'static Counter {
        static C: OnceLock<Counter> = OnceLock::new();
        C.get_or_init(|| {
            tyxe_obs::metrics::counter_tagged("tensor.alloc.bytes_recycled", &[], "bytes")
        })
    }

    /// Bytes currently retained in free-lists, summed over all threads.
    pub fn pool_size() -> &'static Gauge {
        static G: OnceLock<Gauge> = OnceLock::new();
        G.get_or_init(|| tyxe_obs::metrics::gauge_tagged("tensor.alloc.pool_size", &[], "bytes"))
    }
}

/// Number of size buckets: bucket `b` holds buffers of capacity `2^b`
/// words (= `2^(b+3)` bytes).
const BUCKETS: usize = 23;

/// Largest pooled buffer, in 8-byte words (`2^22` words = 32 MiB, the
/// same byte ceiling the f64-only pool had). Bigger allocations go
/// straight to the system allocator.
const MAX_POOL_WORDS: usize = 1 << (BUCKETS - 1);

/// Retained-bytes target per bucket, used to derive [`bucket_cap`].
const BUCKET_TARGET_BYTES: usize = 2 << 20;

/// Free-list length cap for bucket `b`; returns beyond it are freed.
/// Sized so each bucket retains ~[`BUCKET_TARGET_BYTES`], clamped to
/// [4, 256]: small buckets must hold enough buffers for a whole live
/// graph (steady-state hit rate depends on it), while the clamp floor
/// keeps a few large buffers warm without letting one bucket pin
/// hundreds of MiB. Bounds worst-case retention per thread and makes
/// pool size plateau.
fn bucket_cap(b: usize) -> usize {
    (BUCKET_TARGET_BYTES / ((1usize << b) * 8)).clamp(4, 256)
}

/// Words needed to back `n` elements of `E`.
#[inline(always)]
fn words_for<E: Element>(n: usize) -> usize {
    n.div_ceil(8 / std::mem::size_of::<E>())
}

/// A thread's free-lists, wrapped so thread death gives the retained
/// bytes back to the shared [`HELD_BYTES`] accounting. Without the
/// [`Drop`] impl, every exiting worker thread stranded whatever its
/// lists held in the `tensor.alloc.pool_size` gauge forever (the
/// buffers themselves were freed — only the gauge leaked). Safe during
/// TLS destruction: [`sub_held`] touches only process-global atomics.
struct ThreadLists(RefCell<[Vec<Vec<u64>>; BUCKETS]>);

impl Drop for ThreadLists {
    fn drop(&mut self) {
        for list in self.0.get_mut() {
            for v in list.drain(..) {
                sub_held(v.capacity());
            }
        }
    }
}

thread_local! {
    static FREE_LISTS: ThreadLists =
        ThreadLists(RefCell::new(std::array::from_fn(|_| Vec::new())));
}

/// Bytes currently retained across all thread pools (mirrors into the
/// `tensor.alloc.pool_size` gauge). Signed so concurrent add/sub races
/// can transiently dip without wrapping.
static HELD_BYTES: AtomicI64 = AtomicI64::new(0);

/// 0 = off, 1 = on, 2 = not yet read from the environment.
static ENABLED: AtomicUsize = AtomicUsize::new(2);

fn default_enabled() -> bool {
    !matches!(std::env::var("TYXE_POOL").as_deref(), Ok(v) if v.trim() == "0")
}

/// Whether buffer recycling is active (`TYXE_POOL` env gate, overridable
/// via [`set_enabled`]). One relaxed atomic load on the fast path.
#[inline]
pub fn enabled() -> bool {
    match ENABLED.load(Ordering::Relaxed) {
        1 => true,
        0 => false,
        _ => {
            let on = default_enabled();
            ENABLED.store(on as usize, Ordering::Relaxed);
            on
        }
    }
}

/// Runtime override of the `TYXE_POOL` gate (used by the pool-parity
/// determinism tests). Disabling does not drop already-retained buffers;
/// they are reused again once re-enabled.
pub fn set_enabled(on: bool) {
    ENABLED.store(on as usize, Ordering::Relaxed);
}

/// (buffer count, total bytes) currently retained by **this** thread's
/// free-lists. Byte-denominated: an `f32` and an `f64` buffer of equal
/// byte footprint report identically.
pub fn thread_stats() -> (usize, usize) {
    FREE_LISTS.with(|fl| {
        let fl = fl.0.borrow();
        let count = fl.iter().map(Vec::len).sum();
        let bytes = fl.iter().flatten().map(|v| v.capacity() * 8).sum();
        (count, bytes)
    })
}

/// Frees every buffer retained by this thread's free-lists.
pub fn trim_thread() {
    FREE_LISTS.with(|fl| {
        for list in fl.0.borrow_mut().iter_mut() {
            for v in list.drain(..) {
                sub_held(v.capacity());
            }
        }
    });
}

fn bucket_index(words: usize) -> Option<usize> {
    if words == 0 || words > MAX_POOL_WORDS {
        return None;
    }
    // ceil(log2(words)): 1 -> 0, w in (2^(b-1), 2^b] -> b.
    Some((usize::BITS - (words - 1).leading_zeros()) as usize)
}

fn add_held(words: usize) {
    let now = HELD_BYTES.fetch_add((words * 8) as i64, Ordering::Relaxed) + (words * 8) as i64;
    probe::pool_size().set(now as f64);
}

fn sub_held(words: usize) {
    let now = HELD_BYTES.fetch_sub((words * 8) as i64, Ordering::Relaxed) - (words * 8) as i64;
    probe::pool_size().set(now as f64);
}

/// Takes a word buffer of length `words` from the free-lists (or the
/// system allocator), returning it together with whether it was a pool
/// hit. On a hit with `zero == false` the buffer keeps stale words up
/// to its previously stored length; the gap to `words` (if it grew
/// within its bucket) is zero-filled.
fn take(words: usize, zero: bool) -> (Vec<u64>, bool) {
    let bucket = if enabled() { bucket_index(words) } else { None };
    let Some(b) = bucket else {
        return (vec![0u64; words], false);
    };
    match FREE_LISTS.with(|fl| fl.0.borrow_mut()[b].pop()) {
        Some(mut v) => {
            sub_held(v.capacity());
            if zero {
                v.clear();
                v.resize(words, 0);
            } else if v.len() >= words {
                // Stale contents stay — this is the "uninit" fast path;
                // the caller overwrites every element.
                v.truncate(words);
            } else {
                v.resize(words, 0);
            }
            (v, true)
        }
        None => {
            // Allocate the full bucket so the buffer recycles into the
            // same bucket later; `vec![0; _]` is a calloc, so this
            // costs no explicit memset.
            let mut v = vec![0u64; 1 << b];
            v.truncate(words);
            (v, false)
        }
    }
}

fn take_counted<E: Element>(n: usize, zero: bool) -> Vec<u64> {
    let (v, hit) = take(words_for::<E>(n), zero);
    if hit {
        probe::pool_hit().inc();
        probe::pool_hit_dtype(E::DTYPE).inc();
    } else {
        probe::pool_miss().inc();
        probe::pool_miss_dtype(E::DTYPE).inc();
    }
    v
}

/// A length-`n` buffer whose contents are **unspecified** (stale values
/// from a previous tensor, or zeros on a pool miss). The caller must
/// overwrite every element before reading any.
pub(crate) fn alloc_uninit<E: Element>(n: usize) -> PoolBuf<E> {
    PoolBuf { words: take_counted::<E>(n, false), len: n, _e: PhantomData }
}

/// A length-`n` buffer of zeros, for kernels that accumulate into their
/// output.
pub(crate) fn alloc_zeroed<E: Element>(n: usize) -> PoolBuf<E> {
    PoolBuf { words: take_counted::<E>(n, true), len: n, _e: PhantomData }
}

/// A pooled copy of `src`.
pub(crate) fn alloc_copy<E: Element>(src: &[E]) -> PoolBuf<E> {
    let mut v = alloc_uninit(src.len());
    v.copy_from_slice(src);
    v
}

/// A length-`n` buffer filled with `value`.
pub(crate) fn alloc_filled<E: Element>(n: usize, value: E) -> PoolBuf<E> {
    let mut v = alloc_uninit(n);
    v.fill(value);
    v
}

/// Returns a word buffer to this thread's free-lists. Only buffers
/// whose word capacity is exactly a bucket size are retained
/// (pool-allocated buffers qualify); everything else — and everything
/// beyond the per-bucket cap — is freed normally.
fn recycle_words(v: Vec<u64>) {
    if !enabled() {
        return;
    }
    let cap = v.capacity();
    if cap == 0 || !cap.is_power_of_two() || cap > MAX_POOL_WORDS {
        return;
    }
    let b = cap.trailing_zeros() as usize;
    let stored = FREE_LISTS.with(|fl| {
        let mut fl = fl.0.borrow_mut();
        if fl[b].len() < bucket_cap(b) {
            fl[b].push(v);
            true
        } else {
            false
        }
    });
    if stored {
        add_held(cap);
        probe::bytes_recycled().add((cap * 8) as u64);
    }
}

/// Owning, dtype-typed view over pooled word storage: recycles the
/// words into the (byte-bucketed, dtype-blind) free-lists when dropped,
/// so graph teardown — and `zero_grad` — feeds the next step's
/// allocations regardless of which dtype asks next.
pub(crate) struct PoolBuf<E: Element> {
    /// Backing storage. `words.len() == words_for::<E>(len)`; 8-byte
    /// alignment satisfies both element types, and any slack bytes in
    /// the final word are simply never part of the element view.
    words: Vec<u64>,
    /// Element count of the `[E]` view.
    len: usize,
    _e: PhantomData<E>,
}

impl<E: Element> PoolBuf<E> {
    #[inline(always)]
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    #[inline(always)]
    pub(crate) fn as_slice(&self) -> &[E] {
        // SAFETY: the words vec holds at least `words_for::<E>(len)`
        // initialized 8-byte words (alignment 8 ≥ align_of::<E>()), and
        // every bit pattern is a valid f32/f64.
        unsafe { std::slice::from_raw_parts(self.words.as_ptr().cast::<E>(), self.len) }
    }

    #[inline(always)]
    pub(crate) fn as_mut_slice(&mut self) -> &mut [E] {
        // SAFETY: as in `as_slice`; `&mut self` gives unique access.
        unsafe { std::slice::from_raw_parts_mut(self.words.as_mut_ptr().cast::<E>(), self.len) }
    }

    /// Word capacity of the backing storage (test introspection).
    #[cfg(test)]
    pub(crate) fn word_capacity(&self) -> usize {
        self.words.capacity()
    }

    /// Moves this buffer into a differently-parameterized `PoolBuf`
    /// where the caller holds runtime proof (a match on
    /// [`Element::DTYPE`]) that `B` *is* `E`. Bridges generic code to
    /// the concrete `Buf` enum variants without copying.
    ///
    /// # Panics
    ///
    /// Panics if `B` and `E` are different types.
    pub(crate) fn retype<B: Element>(self) -> PoolBuf<B> {
        assert_eq!(
            std::any::TypeId::of::<E>(),
            std::any::TypeId::of::<B>(),
            "PoolBuf::retype: dtype mismatch"
        );
        let mut this = std::mem::ManuallyDrop::new(self);
        PoolBuf { words: std::mem::take(&mut this.words), len: this.len, _e: PhantomData }
    }
}

impl<E: Element> From<Vec<E>> for PoolBuf<E> {
    /// Copies a plain vector into pooled word storage. Constructor-path
    /// only (`from_vec`, `set_data`); kernels allocate through
    /// [`alloc_uninit`]/[`alloc_zeroed`] and never pay this copy.
    fn from(v: Vec<E>) -> PoolBuf<E> {
        alloc_copy(&v)
    }
}

impl<E: Element> Drop for PoolBuf<E> {
    fn drop(&mut self) {
        recycle_words(std::mem::take(&mut self.words));
    }
}

impl<E: Element> std::ops::Deref for PoolBuf<E> {
    type Target = [E];
    fn deref(&self) -> &[E] {
        self.as_slice()
    }
}

impl<E: Element> std::ops::DerefMut for PoolBuf<E> {
    fn deref_mut(&mut self) -> &mut [E] {
        self.as_mut_slice()
    }
}

impl<E: Element> std::fmt::Debug for PoolBuf<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.as_slice().fmt(f)
    }
}

/// Recycles a raw `Vec<u64>` word buffer (test helper mirror of the
/// old element-vec recycle entry point).
#[cfg(test)]
pub(crate) fn recycle_raw(v: Vec<u64>) {
    recycle_words(v);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that toggle the global enable flag or assert on
    /// this thread's free-list state.
    fn with_pool_lock<R>(f: impl FnOnce() -> R) -> R {
        use std::sync::Mutex;
        static LOCK: Mutex<()> = Mutex::new(());
        let _g = LOCK.lock().unwrap_or_else(|p| p.into_inner());
        let prev = enabled();
        let r = f();
        set_enabled(prev);
        r
    }

    #[test]
    fn bucket_index_is_ceil_log2() {
        assert_eq!(bucket_index(0), None);
        assert_eq!(bucket_index(1), Some(0));
        assert_eq!(bucket_index(2), Some(1));
        assert_eq!(bucket_index(3), Some(2));
        assert_eq!(bucket_index(4), Some(2));
        assert_eq!(bucket_index(MAX_POOL_WORDS), Some(BUCKETS - 1));
        assert_eq!(bucket_index(MAX_POOL_WORDS + 1), None);
    }

    #[test]
    fn words_for_rounds_up_subword_tails() {
        assert_eq!(words_for::<f64>(100), 100);
        assert_eq!(words_for::<f32>(100), 50);
        assert_eq!(words_for::<f32>(101), 51);
        assert_eq!(words_for::<f32>(1), 1);
        assert_eq!(words_for::<f32>(0), 0);
        assert_eq!(words_for::<f64>(0), 0);
    }

    #[test]
    fn recycled_buffer_is_reused_with_stale_contents() {
        with_pool_lock(|| {
            set_enabled(true);
            trim_thread();
            let mut v = alloc_uninit::<f64>(100);
            assert_eq!(v.len(), 100);
            assert_eq!(v.word_capacity(), 128);
            v.fill(7.25);
            drop(v);
            assert_eq!(thread_stats().0, 1);
            // Same bucket, smaller request: stale contents visible.
            let v2 = alloc_uninit::<f64>(65);
            assert_eq!(v2.len(), 65);
            assert!(v2.iter().all(|&x| x == 7.25));
            // Zeroed requests scrub.
            drop(v2);
            let v3 = alloc_zeroed::<f64>(80);
            assert!(v3.iter().all(|&x| x == 0.0));
            trim_thread();
        });
    }

    #[test]
    fn f32_and_f64_share_byte_buckets() {
        with_pool_lock(|| {
            set_enabled(true);
            trim_thread();
            // 100 f64s = 800 bytes = 100 words -> bucket 7 (128 words).
            let mut v = alloc_uninit::<f64>(100);
            v.fill(-1.5);
            drop(v);
            assert_eq!(thread_stats(), (1, 128 * 8));
            // 200 f32s = 800 bytes = the same bucket: the f64 buffer is
            // reused, stale bits and all.
            let v2 = alloc_uninit::<f32>(200);
            assert_eq!(v2.len(), 200);
            assert_eq!(v2.word_capacity(), 128);
            assert_eq!(thread_stats().0, 0, "served from the shared bucket");
            // And back: recycling the f32 buffer serves f64 again.
            drop(v2);
            let v3 = alloc_zeroed::<f64>(128);
            assert_eq!(thread_stats().0, 0);
            assert!(v3.iter().all(|&x| x == 0.0));
            trim_thread();
        });
    }

    #[test]
    fn growing_within_bucket_zero_fills_the_gap() {
        with_pool_lock(|| {
            set_enabled(true);
            trim_thread();
            let mut v = alloc_uninit::<f64>(60);
            v.fill(3.0);
            drop(v);
            let v2 = alloc_uninit::<f64>(64); // same bucket, longer than stored len
            assert_eq!(v2.len(), 64);
            assert!(v2[..60].iter().all(|&x| x == 3.0));
            assert!(v2[60..].iter().all(|&x| x == 0.0));
            trim_thread();
        });
    }

    #[test]
    fn disabled_pool_neither_stores_nor_serves() {
        with_pool_lock(|| {
            set_enabled(true);
            trim_thread();
            set_enabled(false);
            let v = alloc_uninit::<f64>(50);
            assert!(v.iter().all(|&x| x == 0.0), "disabled alloc must be plain");
            drop(v);
            assert_eq!(thread_stats().0, 0, "disabled recycle must drop");
        });
    }

    #[test]
    fn per_bucket_cap_bounds_retention() {
        with_pool_lock(|| {
            set_enabled(true);
            trim_thread();
            let cap = bucket_cap(4);
            for _ in 0..(cap + 10) {
                recycle_raw(vec![0u64; 16]);
            }
            let (count, bytes) = thread_stats();
            assert_eq!(count, cap);
            assert_eq!(bytes, cap * 16 * 8);
            trim_thread();
            assert_eq!(thread_stats(), (0, 0));
        });
    }

    #[test]
    fn bucket_cap_scales_inversely_with_size() {
        // Small buckets hit the 256 ceiling, the largest hit the 4
        // floor, and no bucket may retain more than ~max(target, 4
        // buffers) worth of bytes.
        assert_eq!(bucket_cap(0), 256);
        assert_eq!(bucket_cap(BUCKETS - 1), 4);
        for b in 0..BUCKETS {
            let bytes = bucket_cap(b) * (1 << b) * 8;
            assert!(bytes <= BUCKET_TARGET_BYTES.max(4 * (1 << b) * 8));
            assert!(bucket_cap(b) >= 4);
        }
    }

    #[test]
    fn odd_capacity_and_oversized_buffers_are_not_pooled() {
        with_pool_lock(|| {
            set_enabled(true);
            trim_thread();
            let odd = vec![0u64; 24];
            recycle_raw(odd);
            recycle_raw(Vec::new());
            assert_eq!(thread_stats().0, 0);
        });
    }

    #[test]
    fn interleaved_sizes_and_dtypes_stress() {
        with_pool_lock(|| {
            set_enabled(true);
            trim_thread();
            let mut live64: Vec<PoolBuf<f64>> = Vec::new();
            let mut live32: Vec<PoolBuf<f32>> = Vec::new();
            let sizes = [1usize, 3, 17, 64, 100, 257, 1024, 4000, 5000, 33];
            for round in 0..50 {
                for (i, &n) in sizes.iter().enumerate() {
                    if (round + i) % 3 == 0 {
                        let mut v = alloc_uninit::<f32>(n);
                        assert_eq!(v.len(), n);
                        v.fill(round as f32);
                        live32.push(v);
                    } else {
                        let mut v = if (round + i) % 2 == 0 {
                            alloc_uninit::<f64>(n)
                        } else {
                            alloc_zeroed::<f64>(n)
                        };
                        assert_eq!(v.len(), n);
                        v.fill(round as f64);
                        live64.push(v);
                    }
                }
                // Return half, keep half across "steps".
                let k64 = (live64.len() / 2).min(sizes.len() / 2);
                drop(live64.drain(..k64).collect::<Vec<_>>());
                let k32 = live32.len() / 2;
                drop(live32.drain(..k32).collect::<Vec<_>>());
            }
            live64.clear();
            live32.clear();
            let (count, _) = thread_stats();
            assert!(count <= (0..BUCKETS).map(bucket_cap).sum());
            trim_thread();
        });
    }

    #[test]
    fn dead_threads_release_their_gauge_bytes() {
        with_pool_lock(|| {
            set_enabled(true);
            // Each worker retains bucket_cap(19) × 4 MiB buffers, then
            // exits; the TLS Drop must hand those bytes back. Without it
            // HELD_BYTES climbs by ~16 MiB per dead thread. Other tests
            // churn the gauge concurrently, so assert a plateau (less
            // than one thread's worth of growth) rather than equality.
            let words = 1usize << 19;
            let cap = bucket_cap(19);
            let per_thread = (cap * words * 8) as i64;
            let before = HELD_BYTES.load(Ordering::Relaxed);
            for _ in 0..8 {
                std::thread::spawn(move || {
                    for _ in 0..cap + 2 {
                        recycle_raw(vec![0u64; words]);
                    }
                    let (count, held) = thread_stats();
                    assert_eq!(count, cap);
                    assert_eq!(held, cap * words * 8);
                })
                .join()
                .unwrap();
            }
            let after = HELD_BYTES.load(Ordering::Relaxed);
            assert!(
                after - before < per_thread,
                "dead threads stranded pool_size bytes: before={before} after={after}"
            );
        });
    }

    #[test]
    fn poolbuf_drop_recycles() {
        with_pool_lock(|| {
            set_enabled(true);
            trim_thread();
            {
                let _b = alloc_uninit::<f64>(512);
            }
            assert_eq!(thread_stats(), (1, 512 * 8));
            // The f32 twin of the same byte footprint lands in the same
            // bucket.
            {
                let _b = alloc_uninit::<f32>(1024);
            }
            assert_eq!(thread_stats(), (1, 512 * 8));
            trim_thread();
        });
    }
}
