//! Thread-local, size-bucketed buffer pool for tensor storage.
//!
//! SVI training rebuilds the same computation graph every step, so the
//! engine allocates (and frees) an identical multiset of `Vec<f64>`
//! buffers thousands of times. This module recycles them: freed buffers
//! go into per-thread power-of-2 free-lists and are handed back out by
//! [`alloc_uninit`]/[`alloc_zeroed`] instead of hitting the system
//! allocator. See DESIGN.md §10 for the full memory-reuse contract.
//!
//! # Bucket layout
//!
//! A request for `n` elements is served from bucket `ceil(log2(n))`,
//! whose buffers all have capacity exactly `2^b`. Requests above
//! [`MAX_POOL_ELEMS`] elements (and zero-length requests) bypass the
//! pool. Each bucket retains at most [`bucket_cap`] buffers — generous
//! for small buckets (a live autodiff graph holds hundreds of small
//! tensors at once), tight for multi-MiB ones — and excess returns are
//! simply freed, so pool growth plateaus (the leak guard in
//! `tests/pool.rs` pins this).
//!
//! # Uninit-overwrite safety
//!
//! [`alloc_uninit`] may return a buffer still holding **stale values
//! from its previous life** (always valid `f64`s — never uninitialized
//! memory in the UB sense; everything here is safe Rust). Callers must
//! therefore overwrite every element before any read. This is only used
//! where full overwrite is structural: elementwise map outputs,
//! overwrite-mode GEMM outputs (`ops::gemm_kernels`), gather/copy
//! targets, RNG fills. Kernels that *accumulate* into their output
//! (`col2im`, scatter-adds, broadcast reductions) use [`alloc_zeroed`].
//! Because results never depend on a buffer's prior contents, numerics
//! are bit-identical with the pool on or off — pinned end to end by
//! `svi_step_is_bit_identical_with_pool_on_and_off` in
//! `tests/determinism.rs`.
//!
//! # `TYXE_POOL` semantics
//!
//! `TYXE_POOL=0` disables recycling at process start: every allocation
//! falls back to a plain `vec![0.0; n]` and every return is freed. Any
//! other value (or unset) enables the pool. [`set_enabled`] toggles at
//! runtime (used by the parity tests). Obs counters
//! `tensor.alloc.pool_hit`/`pool_miss`/`bytes_recycled` and the
//! `tensor.alloc.pool_size` gauge (bytes currently retained, across all
//! threads) are updated unconditionally so hit-rate accounting stays
//! exact — same policy as the PR 3/4 exactness-critical counters.

use std::cell::RefCell;
use std::sync::atomic::{AtomicI64, AtomicUsize, Ordering};

/// Cached tyxe-obs handles. Ungated: pool accounting must stay exact
/// (the bench harness and the hit-ratio acceptance gate read these).
mod probe {
    use std::sync::OnceLock;

    use tyxe_obs::metrics::{Counter, Gauge};

    /// Allocations served from a free-list.
    pub fn pool_hit() -> &'static Counter {
        static C: OnceLock<Counter> = OnceLock::new();
        C.get_or_init(|| tyxe_obs::metrics::counter("tensor.alloc.pool_hit"))
    }

    /// Allocations that fell through to the system allocator (pool
    /// disabled, empty bucket, or out-of-range size).
    pub fn pool_miss() -> &'static Counter {
        static C: OnceLock<Counter> = OnceLock::new();
        C.get_or_init(|| tyxe_obs::metrics::counter("tensor.alloc.pool_miss"))
    }

    /// Total bytes returned to free-lists over the process lifetime.
    pub fn bytes_recycled() -> &'static Counter {
        static C: OnceLock<Counter> = OnceLock::new();
        C.get_or_init(|| {
            tyxe_obs::metrics::counter_tagged("tensor.alloc.bytes_recycled", &[], "bytes")
        })
    }

    /// Bytes currently retained in free-lists, summed over all threads.
    pub fn pool_size() -> &'static Gauge {
        static G: OnceLock<Gauge> = OnceLock::new();
        G.get_or_init(|| tyxe_obs::metrics::gauge_tagged("tensor.alloc.pool_size", &[], "bytes"))
    }
}

/// Number of size buckets: bucket `b` holds buffers of capacity `2^b`.
const BUCKETS: usize = 23;

/// Largest pooled buffer, in elements (`2^22` f64s = 32 MiB). Bigger
/// allocations go straight to the system allocator.
const MAX_POOL_ELEMS: usize = 1 << (BUCKETS - 1);

/// Retained-bytes target per bucket, used to derive [`bucket_cap`].
const BUCKET_TARGET_BYTES: usize = 2 << 20;

/// Free-list length cap for bucket `b`; returns beyond it are freed.
/// Sized so each bucket retains ~[`BUCKET_TARGET_BYTES`], clamped to
/// [4, 256]: small buckets must hold enough buffers for a whole live
/// graph (steady-state hit rate depends on it), while the clamp floor
/// keeps a few large buffers warm without letting one bucket pin
/// hundreds of MiB. Bounds worst-case retention per thread and makes
/// pool size plateau.
fn bucket_cap(b: usize) -> usize {
    (BUCKET_TARGET_BYTES / ((1usize << b) * 8)).clamp(4, 256)
}

/// A thread's free-lists, wrapped so thread death gives the retained
/// bytes back to the shared [`HELD_BYTES`] accounting. Without the
/// [`Drop`] impl, every exiting worker thread stranded whatever its
/// lists held in the `tensor.alloc.pool_size` gauge forever (the
/// buffers themselves were freed — only the gauge leaked). Safe during
/// TLS destruction: [`sub_held`] touches only process-global atomics.
struct ThreadLists(RefCell<[Vec<Vec<f64>>; BUCKETS]>);

impl Drop for ThreadLists {
    fn drop(&mut self) {
        for list in self.0.get_mut() {
            for v in list.drain(..) {
                sub_held(v.capacity());
            }
        }
    }
}

thread_local! {
    static FREE_LISTS: ThreadLists =
        ThreadLists(RefCell::new(std::array::from_fn(|_| Vec::new())));
}

/// Bytes currently retained across all thread pools (mirrors into the
/// `tensor.alloc.pool_size` gauge). Signed so concurrent add/sub races
/// can transiently dip without wrapping.
static HELD_BYTES: AtomicI64 = AtomicI64::new(0);

/// 0 = off, 1 = on, 2 = not yet read from the environment.
static ENABLED: AtomicUsize = AtomicUsize::new(2);

fn default_enabled() -> bool {
    !matches!(std::env::var("TYXE_POOL").as_deref(), Ok(v) if v.trim() == "0")
}

/// Whether buffer recycling is active (`TYXE_POOL` env gate, overridable
/// via [`set_enabled`]). One relaxed atomic load on the fast path.
#[inline]
pub fn enabled() -> bool {
    match ENABLED.load(Ordering::Relaxed) {
        1 => true,
        0 => false,
        _ => {
            let on = default_enabled();
            ENABLED.store(on as usize, Ordering::Relaxed);
            on
        }
    }
}

/// Runtime override of the `TYXE_POOL` gate (used by the pool-parity
/// determinism tests). Disabling does not drop already-retained buffers;
/// they are reused again once re-enabled.
pub fn set_enabled(on: bool) {
    ENABLED.store(on as usize, Ordering::Relaxed);
}

/// (buffer count, total elements) currently retained by **this**
/// thread's free-lists.
pub fn thread_stats() -> (usize, usize) {
    FREE_LISTS.with(|fl| {
        let fl = fl.0.borrow();
        let count = fl.iter().map(Vec::len).sum();
        let elems = fl.iter().flatten().map(Vec::capacity).sum();
        (count, elems)
    })
}

/// Frees every buffer retained by this thread's free-lists.
pub fn trim_thread() {
    FREE_LISTS.with(|fl| {
        for list in fl.0.borrow_mut().iter_mut() {
            for v in list.drain(..) {
                sub_held(v.capacity());
            }
        }
    });
}

fn bucket_index(n: usize) -> Option<usize> {
    if n == 0 || n > MAX_POOL_ELEMS {
        return None;
    }
    // ceil(log2(n)): n=1 -> 0, n in (2^(b-1), 2^b] -> b.
    Some((usize::BITS - (n - 1).leading_zeros()) as usize)
}

fn add_held(elems: usize) {
    let now = HELD_BYTES.fetch_add((elems * 8) as i64, Ordering::Relaxed) + (elems * 8) as i64;
    probe::pool_size().set(now as f64);
}

fn sub_held(elems: usize) {
    let now = HELD_BYTES.fetch_sub((elems * 8) as i64, Ordering::Relaxed) - (elems * 8) as i64;
    probe::pool_size().set(now as f64);
}

fn take(n: usize, zero: bool) -> Vec<f64> {
    let bucket = if enabled() { bucket_index(n) } else { None };
    let Some(b) = bucket else {
        probe::pool_miss().inc();
        return vec![0.0; n];
    };
    match FREE_LISTS.with(|fl| fl.0.borrow_mut()[b].pop()) {
        Some(mut v) => {
            probe::pool_hit().inc();
            sub_held(v.capacity());
            if zero {
                v.clear();
                v.resize(n, 0.0);
            } else if v.len() >= n {
                // Stale contents stay — this is the "uninit" fast path;
                // the caller overwrites every element.
                v.truncate(n);
            } else {
                v.resize(n, 0.0);
            }
            v
        }
        None => {
            probe::pool_miss().inc();
            // Allocate the full bucket so the buffer recycles into the
            // same bucket later; `vec![0.0; _]` is a calloc, so this
            // costs no explicit memset.
            let mut v = vec![0.0; 1 << b];
            v.truncate(n);
            v
        }
    }
}

/// A length-`n` buffer whose contents are **unspecified** (stale values
/// from a previous tensor, or zeros on a pool miss). The caller must
/// overwrite every element before reading any.
pub(crate) fn alloc_uninit(n: usize) -> Vec<f64> {
    take(n, false)
}

/// A length-`n` buffer of zeros, for kernels that accumulate into their
/// output.
pub(crate) fn alloc_zeroed(n: usize) -> Vec<f64> {
    take(n, true)
}

/// A pooled copy of `src`.
pub(crate) fn alloc_copy(src: &[f64]) -> Vec<f64> {
    let mut v = take(src.len(), false);
    v.copy_from_slice(src);
    v
}

/// A length-`n` buffer filled with `value`.
pub(crate) fn alloc_filled(n: usize, value: f64) -> Vec<f64> {
    let mut v = take(n, false);
    v.fill(value);
    v
}

/// Returns a buffer to this thread's free-lists. Only buffers whose
/// capacity is exactly a bucket size are retained (pool-allocated
/// buffers and exact-sized `vec![_; 2^b]`s qualify); everything else —
/// and everything beyond the per-bucket cap — is freed normally.
pub(crate) fn recycle(v: Vec<f64>) {
    if !enabled() {
        return;
    }
    let cap = v.capacity();
    if cap == 0 || !cap.is_power_of_two() || cap > MAX_POOL_ELEMS {
        return;
    }
    let b = cap.trailing_zeros() as usize;
    let stored = FREE_LISTS.with(|fl| {
        let mut fl = fl.0.borrow_mut();
        if fl[b].len() < bucket_cap(b) {
            fl[b].push(v);
            true
        } else {
            false
        }
    });
    if stored {
        add_held(cap);
        probe::bytes_recycled().add((cap * 8) as u64);
    }
}

/// Owning wrapper for a tensor's data or gradient buffer: recycles the
/// buffer into the pool when dropped, so graph teardown (and
/// `zero_grad`) feeds the next step's allocations.
pub(crate) struct PoolBuf(Vec<f64>);

impl From<Vec<f64>> for PoolBuf {
    fn from(v: Vec<f64>) -> PoolBuf {
        PoolBuf(v)
    }
}

impl Drop for PoolBuf {
    fn drop(&mut self) {
        recycle(std::mem::take(&mut self.0));
    }
}

impl std::ops::Deref for PoolBuf {
    type Target = Vec<f64>;
    fn deref(&self) -> &Vec<f64> {
        &self.0
    }
}

impl std::ops::DerefMut for PoolBuf {
    fn deref_mut(&mut self) -> &mut Vec<f64> {
        &mut self.0
    }
}

impl std::fmt::Debug for PoolBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that toggle the global enable flag or assert on
    /// this thread's free-list state.
    fn with_pool_lock<R>(f: impl FnOnce() -> R) -> R {
        use std::sync::Mutex;
        static LOCK: Mutex<()> = Mutex::new(());
        let _g = LOCK.lock().unwrap_or_else(|p| p.into_inner());
        let prev = enabled();
        let r = f();
        set_enabled(prev);
        r
    }

    #[test]
    fn bucket_index_is_ceil_log2() {
        assert_eq!(bucket_index(0), None);
        assert_eq!(bucket_index(1), Some(0));
        assert_eq!(bucket_index(2), Some(1));
        assert_eq!(bucket_index(3), Some(2));
        assert_eq!(bucket_index(4), Some(2));
        assert_eq!(bucket_index(5), Some(3));
        assert_eq!(bucket_index(MAX_POOL_ELEMS), Some(BUCKETS - 1));
        assert_eq!(bucket_index(MAX_POOL_ELEMS + 1), None);
    }

    #[test]
    fn recycled_buffer_is_reused_with_stale_contents() {
        with_pool_lock(|| {
            set_enabled(true);
            trim_thread();
            let mut v = alloc_uninit(100);
            assert_eq!(v.len(), 100);
            assert_eq!(v.capacity(), 128);
            v.fill(7.25);
            recycle(v);
            assert_eq!(thread_stats().0, 1);
            // Same bucket, smaller request: stale contents visible.
            let v2 = alloc_uninit(65);
            assert_eq!(v2.len(), 65);
            assert!(v2.iter().all(|&x| x == 7.25));
            // Zeroed requests scrub.
            recycle(v2);
            let v3 = alloc_zeroed(80);
            assert!(v3.iter().all(|&x| x == 0.0));
            trim_thread();
        });
    }

    #[test]
    fn growing_within_bucket_zero_fills_the_gap() {
        with_pool_lock(|| {
            set_enabled(true);
            trim_thread();
            let mut v = alloc_uninit(60);
            v.fill(3.0);
            recycle(v);
            let v2 = alloc_uninit(64); // same bucket, longer than stored len
            assert_eq!(v2.len(), 64);
            assert!(v2[..60].iter().all(|&x| x == 3.0));
            assert!(v2[60..].iter().all(|&x| x == 0.0));
            trim_thread();
        });
    }

    #[test]
    fn disabled_pool_neither_stores_nor_serves() {
        with_pool_lock(|| {
            set_enabled(true);
            trim_thread();
            set_enabled(false);
            let v = alloc_uninit(50);
            assert!(v.iter().all(|&x| x == 0.0), "disabled alloc must be plain");
            recycle(v);
            assert_eq!(thread_stats().0, 0, "disabled recycle must drop");
        });
    }

    #[test]
    fn per_bucket_cap_bounds_retention() {
        with_pool_lock(|| {
            set_enabled(true);
            trim_thread();
            let cap = bucket_cap(4);
            for _ in 0..(cap + 10) {
                recycle(vec![0.0; 16]);
            }
            let (count, elems) = thread_stats();
            assert_eq!(count, cap);
            assert_eq!(elems, cap * 16);
            trim_thread();
            assert_eq!(thread_stats(), (0, 0));
        });
    }

    #[test]
    fn bucket_cap_scales_inversely_with_size() {
        // Small buckets hit the 256 ceiling, the largest hit the 4
        // floor, and no bucket may retain more than ~max(target, 4
        // buffers) worth of bytes.
        assert_eq!(bucket_cap(0), 256);
        assert_eq!(bucket_cap(BUCKETS - 1), 4);
        for b in 0..BUCKETS {
            let bytes = bucket_cap(b) * (1 << b) * 8;
            assert!(bytes <= BUCKET_TARGET_BYTES.max(4 * (1 << b) * 8));
            assert!(bucket_cap(b) >= 4);
        }
    }

    #[test]
    fn odd_capacity_and_oversized_buffers_are_not_pooled() {
        with_pool_lock(|| {
            set_enabled(true);
            trim_thread();
            let mut odd = Vec::with_capacity(24);
            odd.resize(24, 0.0);
            recycle(odd);
            recycle(Vec::new());
            assert_eq!(thread_stats().0, 0);
        });
    }

    #[test]
    fn interleaved_sizes_stress() {
        with_pool_lock(|| {
            set_enabled(true);
            trim_thread();
            let mut live: Vec<Vec<f64>> = Vec::new();
            let sizes = [1usize, 3, 17, 64, 100, 257, 1024, 4000, 5000, 33];
            for round in 0..50 {
                for (i, &n) in sizes.iter().enumerate() {
                    let mut v = if (round + i) % 2 == 0 {
                        alloc_uninit(n)
                    } else {
                        alloc_zeroed(n)
                    };
                    assert_eq!(v.len(), n);
                    v.fill(round as f64);
                    live.push(v);
                }
                // Return half, keep half across "steps".
                for v in live.drain(..sizes.len() / 2) {
                    recycle(v);
                }
            }
            for v in live.drain(..) {
                recycle(v);
            }
            let (count, _) = thread_stats();
            assert!(count <= (0..BUCKETS).map(bucket_cap).sum());
            trim_thread();
        });
    }

    #[test]
    fn dead_threads_release_their_gauge_bytes() {
        with_pool_lock(|| {
            set_enabled(true);
            // Each worker retains bucket_cap(19) × 4 MiB buffers, then
            // exits; the TLS Drop must hand those bytes back. Without it
            // HELD_BYTES climbs by ~16 MiB per dead thread. Other tests
            // churn the gauge concurrently, so assert a plateau (less
            // than one thread's worth of growth) rather than equality.
            let elems = 1usize << 19;
            let cap = bucket_cap(19);
            let per_thread = (cap * elems * 8) as i64;
            let before = HELD_BYTES.load(Ordering::Relaxed);
            for _ in 0..8 {
                std::thread::spawn(move || {
                    for _ in 0..cap + 2 {
                        recycle(vec![0.0; elems]);
                    }
                    let (count, held) = thread_stats();
                    assert_eq!(count, cap);
                    assert_eq!(held, cap * elems);
                })
                .join()
                .unwrap();
            }
            let after = HELD_BYTES.load(Ordering::Relaxed);
            assert!(
                after - before < per_thread,
                "dead threads stranded pool_size bytes: before={before} after={after}"
            );
        });
    }

    #[test]
    fn poolbuf_drop_recycles() {
        with_pool_lock(|| {
            set_enabled(true);
            trim_thread();
            {
                let _b = PoolBuf::from(alloc_uninit(512));
            }
            assert_eq!(thread_stats(), (1, 512));
            trim_thread();
        });
    }
}
