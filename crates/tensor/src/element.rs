//! The [`Element`] trait: the scalar types a [`crate::Tensor`] can store.
//!
//! The tensor substrate is generic over its element type — `f64` (the
//! historical default) and `f32` (half the bytes, twice the SIMD lanes).
//! `Element` is **sealed**: the storage layer, the buffer pool and the
//! GEMM kernel tables are written against exactly these two types, and
//! the per-dtype determinism contract (DESIGN.md §12) is stated per
//! instance.
//!
//! # Arithmetic contract
//!
//! Elementwise op recipes are written once, as `f64` scalar closures,
//! and applied to generic storage by widening each operand
//! ([`Element::to_f64`]), evaluating the recipe in `f64`, and rounding
//! the result once into the element type ([`Element::from_f64`]). For
//! `f64` both conversions are the identity, so the historical bit
//! patterns are preserved by construction. For `f32`, a *single* IEEE
//! add/sub/mul/div/sqrt of `f32` inputs evaluated in `f64` and rounded
//! once is exactly the natively computed `f32` result (the `f64`
//! intermediate is wide enough that no double rounding occurs), while
//! longer recipes (e.g. a fused `-g·a/(b·b)`) round once at the end —
//! slightly *more* accurate than a native `f32` chain, and equally
//! deterministic. Accumulation loops (reductions, gradient sums, GEMM)
//! instead run natively in the element type, so every accumulation
//! chain is a fixed per-dtype sequence of correctly rounded ops.
//!
//! **Exception — hot transcendentals.** `tanh` and `exp` forward maps
//! go through [`Element::tanh_e`] / [`Element::exp_e`] instead of the
//! widen-compute-round recipe: `f64` storage keeps libm (historical
//! bits), while `f32` storage uses dedicated polynomial/rational
//! approximants that the compiler can vectorize — libm's `tanh` costs
//! ~23 ns/element on this substrate's reference box and dominates the
//! non-GEMM share of an SVI step, with `tanhf` no faster. Every kernel
//! that evaluates these maps (the standalone unary ops, the fused
//! linear/conv activation pass, the fused reparameterized draw's scale
//! transform) calls the *same* per-dtype function, so fusing a call
//! site still never changes bits. Accuracy for the `f32` approximants
//! is a few ulps of the correctly rounded result — tighter than any
//! downstream f32 tolerance (DESIGN.md §12).

use std::fmt::{Debug, Display};
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

mod sealed {
    pub trait Sealed {}
    impl Sealed for f32 {}
    impl Sealed for f64 {}
}

/// Runtime tag for a tensor's element type.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum DType {
    /// 32-bit IEEE-754 (4 bytes, 16 AVX-512 lanes).
    F32,
    /// 64-bit IEEE-754 (8 bytes, 8 AVX-512 lanes) — the default.
    #[default]
    F64,
}

impl DType {
    /// Bytes per element.
    pub fn size_of(self) -> usize {
        match self {
            DType::F32 => 4,
            DType::F64 => 8,
        }
    }

    /// Short lowercase name (`"f32"` / `"f64"`), used in metric names
    /// and bench JSON tags.
    pub fn name(self) -> &'static str {
        match self {
            DType::F32 => "f32",
            DType::F64 => "f64",
        }
    }

    /// The wider of two dtypes — the promotion target for mixed-dtype
    /// binary ops (`f32 ⊕ f64 → f64`, mirroring NumPy/PyTorch).
    pub fn promote(self, other: DType) -> DType {
        if self == DType::F64 || other == DType::F64 {
            DType::F64
        } else {
            DType::F32
        }
    }
}

impl Display for DType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A scalar type tensors can store. Sealed to `f32` and `f64`.
pub trait Element:
    sealed::Sealed
    + Copy
    + PartialOrd
    + PartialEq
    + Debug
    + Display
    + Default
    + Send
    + Sync
    + 'static
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
{
    /// The runtime tag for this type.
    const DTYPE: DType;
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;

    /// Rounds an `f64` into this type (identity for `f64`).
    fn from_f64(x: f64) -> Self;
    /// Widens losslessly into `f64` (identity for `f64`).
    fn to_f64(self) -> f64;
    /// Fused multiply-add `self * a + b` (single rounding).
    fn mul_add(self, a: Self, b: Self) -> Self;
    /// IEEE maximum (NaN-ignoring, like `f64::max`).
    fn maximum(self, other: Self) -> Self;
    /// IEEE minimum.
    fn minimum(self, other: Self) -> Self;
    /// Raw bits, zero-extended to 64 — for bitwise determinism checks.
    fn to_bits_u64(self) -> u64;
    /// Hyperbolic tangent in storage precision: libm for `f64`, the
    /// vectorizable rational approximant [`tanh_f32`] for `f32`. The
    /// single definition every tanh-evaluating kernel (unary op, fused
    /// linear/conv activation) must share — see the module docs.
    fn tanh_e(self) -> Self;
    /// Exponential in storage precision: libm for `f64`, the
    /// vectorizable base-2 approximant [`exp_f32`] for `f32`. Shared by
    /// the unary op and the fused reparam draw's `ScaleMap::Exp`.
    fn exp_e(self) -> Self;
}

impl Element for f64 {
    const DTYPE: DType = DType::F64;
    const ZERO: f64 = 0.0;
    const ONE: f64 = 1.0;

    #[inline(always)]
    fn from_f64(x: f64) -> f64 {
        x
    }
    #[inline(always)]
    fn to_f64(self) -> f64 {
        self
    }
    #[inline(always)]
    fn mul_add(self, a: f64, b: f64) -> f64 {
        f64::mul_add(self, a, b)
    }
    #[inline(always)]
    fn maximum(self, other: f64) -> f64 {
        f64::max(self, other)
    }
    #[inline(always)]
    fn minimum(self, other: f64) -> f64 {
        f64::min(self, other)
    }
    #[inline(always)]
    fn to_bits_u64(self) -> u64 {
        self.to_bits()
    }
    #[inline(always)]
    fn tanh_e(self) -> f64 {
        self.tanh()
    }
    #[inline(always)]
    fn exp_e(self) -> f64 {
        self.exp()
    }
}

impl Element for f32 {
    const DTYPE: DType = DType::F32;
    const ZERO: f32 = 0.0;
    const ONE: f32 = 1.0;

    #[inline(always)]
    fn from_f64(x: f64) -> f32 {
        x as f32
    }
    #[inline(always)]
    fn to_f64(self) -> f64 {
        f64::from(self)
    }
    #[inline(always)]
    fn mul_add(self, a: f32, b: f32) -> f32 {
        f32::mul_add(self, a, b)
    }
    #[inline(always)]
    fn maximum(self, other: f32) -> f32 {
        f32::max(self, other)
    }
    #[inline(always)]
    fn minimum(self, other: f32) -> f32 {
        f32::min(self, other)
    }
    #[inline(always)]
    fn to_bits_u64(self) -> u64 {
        u64::from(self.to_bits())
    }
    #[inline(always)]
    fn tanh_e(self) -> f32 {
        tanh_f32(self)
    }
    #[inline(always)]
    fn exp_e(self) -> f32 {
        exp_f32(self)
    }
}

/// Fast `f32` tanh: the rational approximant P₁₃(x)/Q₆(x) on
/// `|x| ≤ 7.905` (the float saturation point, where `tanh` rounds to
/// ±1), odd in `x`, accurate to a few ulps. Plain mul/add/div so LLVM
/// vectorizes the surrounding elementwise loops; `clamp` propagates
/// NaN, so NaN in → NaN out.
// The coefficient literals below are the canonical decimal expansions
// of the intended bit patterns; shortening them (as clippy suggests)
// would obscure where they come from without changing the value.
#[allow(clippy::excessive_precision)]
#[inline(always)]
pub fn tanh_f32(x: f32) -> f32 {
    const CLAMP: f32 = 7.905_311;
    const A1: f32 = 4.893_525e-3;
    const A3: f32 = 6.372_619e-4;
    const A5: f32 = 1.485_722_4e-5;
    const A7: f32 = 5.122_297e-8;
    const A9: f32 = -8.604_671_5e-11;
    const A11: f32 = 2.000_188e-13;
    const A13: f32 = -2.760_768_4e-16;
    const B0: f32 = 4.893_525_2e-3;
    const B2: f32 = 2.268_434_6e-3;
    const B4: f32 = 1.185_347e-4;
    const B6: f32 = 1.198_258_4e-6;
    let xc = x.clamp(-CLAMP, CLAMP);
    let x2 = xc * xc;
    let p = ((((((A13 * x2 + A11) * x2 + A9) * x2 + A7) * x2 + A5) * x2 + A3) * x2 + A1) * xc;
    let q = ((B6 * x2 + B4) * x2 + B2) * x2 + B0;
    let t = p / q;
    // Saturate exactly past the clamp point (the rational form tops out
    // one ulp shy of ±1); NaN fails both compares and falls through.
    if x >= CLAMP {
        1.0
    } else if x <= -CLAMP {
        -1.0
    } else {
        t
    }
}

/// Fast `f32` exp via base-2 range reduction: `e^x = 2^n · e^r` with
/// `n = round(x / ln 2)` and `|r| ≤ ln2/2`, a degree-5 polynomial for
/// `e^r`, and the `2^n` scale built by exponent-field arithmetic.
/// Accurate to a few ulps; underflows to `0` below the normal range
/// and overflows to `+∞`, matching libm at the extremes. Branch-free
/// apart from NaN, so elementwise loops over it vectorize.
// Canonical constants again — in particular LN2_HI must read as the
// exact value 0.693359375 (low mantissa bits zero, the Cody–Waite
// invariant), which clippy's truncation would hide.
#[allow(clippy::excessive_precision)]
#[inline(always)]
pub fn exp_f32(x: f32) -> f32 {
    // exp(EXP_LO) underflows even the subnormal range; exp(EXP_HI)
    // overflows f32::MAX.
    const EXP_LO: f32 = -103.972_08;
    const EXP_HI: f32 = 88.722_839;
    const LOG2E: f32 = std::f32::consts::LOG2_E;
    // ln 2 split for Cody–Waite reduction (exact high part).
    const LN2_HI: f32 = 0.693_359_375;
    const LN2_LO: f32 = -2.121_944_4e-4;
    // Round to nearest via the 1.5·2²³ magic constant: the baseline
    // x86-64 target lowers `f32::round`/`floor` to libm calls, which
    // would cost more than the rest of the kernel combined.
    const ROUND_MAGIC: f32 = 12_582_912.0;
    let xc = x.clamp(EXP_LO, EXP_HI); // NaN propagates through clamp
    let n = (xc * LOG2E + ROUND_MAGIC) - ROUND_MAGIC;
    let r = (xc - n * LN2_HI) - n * LN2_LO;
    // e^r on |r| ≤ ln2/2: the Cephes `expf` minimax polynomial
    // (~2 ulps), 1 + r + r²·P(r).
    const C0: f32 = 1.987_569_2e-4;
    const C1: f32 = 1.398_199_9e-3;
    const C2: f32 = 8.333_452e-3;
    const C3: f32 = 4.166_579_6e-2;
    const C4: f32 = 1.666_666_5e-1;
    const C5: f32 = 0.5;
    let y = ((((C0 * r + C1) * r + C2) * r + C3) * r + C4) * r + C5;
    let p = (y * r) * r + r + 1.0;
    // 2^n applied as two normal-range factors (n ∈ [-150, 128], each
    // half ∈ [-75, 64]), so results that land in the subnormal range
    // underflow gradually through ordinary IEEE multiplies. `n` is
    // integral, so `as i32` is exact (NaN casts to 0, discarded below);
    // the arithmetic shift is floor division by two.
    let ni = n as i32;
    let h = ni >> 1;
    let scale_a = f32::from_bits(((h + 127) as u32) << 23);
    let scale_b = f32::from_bits((((ni - h) + 127) as u32) << 23);
    let res = p * scale_a * scale_b;
    // Exact edge semantics past the clamp range (NaN fails both
    // compares and keeps the propagated NaN in `res`).
    if x >= EXP_HI {
        f32::INFINITY
    } else if x <= EXP_LO {
        0.0
    } else {
        res
    }
}

/// Reinterprets `&[A]` as `&[B]` where the caller has runtime proof
/// that `A` and `B` are the same type (e.g. matched on [`Element::DTYPE`]
/// inside a generic function). Panics if they are not.
#[inline(always)]
pub(crate) fn same_slice<A: Element, B: Element>(s: &[A]) -> &[B] {
    assert_eq!(
        std::any::TypeId::of::<A>(),
        std::any::TypeId::of::<B>(),
        "same_slice: dtype mismatch"
    );
    // SAFETY: A and B are the identical type (checked above), so layout,
    // validity and lifetime are trivially preserved.
    unsafe { std::slice::from_raw_parts(s.as_ptr().cast::<B>(), s.len()) }
}

/// Mutable variant of [`same_slice`].
#[inline(always)]
pub(crate) fn same_slice_mut<A: Element, B: Element>(s: &mut [A]) -> &mut [B] {
    assert_eq!(
        std::any::TypeId::of::<A>(),
        std::any::TypeId::of::<B>(),
        "same_slice_mut: dtype mismatch"
    );
    // SAFETY: as in `same_slice`.
    unsafe { std::slice::from_raw_parts_mut(s.as_mut_ptr().cast::<B>(), s.len()) }
}

/// Dispatches a generic expression on a runtime [`DType`]: the named
/// type parameter is bound to `f32` or `f64` in the corresponding arm.
///
/// ```ignore
/// dispatch_dtype!(t.dtype(), E => some_generic_fn::<E>(&t))
/// ```
macro_rules! dispatch_dtype {
    ($dt:expr, $E:ident => $e:expr) => {
        match $dt {
            $crate::element::DType::F64 => {
                type $E = f64;
                $e
            }
            $crate::element::DType::F32 => {
                type $E = f32;
                $e
            }
        }
    };
}
pub(crate) use dispatch_dtype;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn promote_widens() {
        assert_eq!(DType::F32.promote(DType::F32), DType::F32);
        assert_eq!(DType::F32.promote(DType::F64), DType::F64);
        assert_eq!(DType::F64.promote(DType::F32), DType::F64);
        assert_eq!(DType::F64.promote(DType::F64), DType::F64);
    }

    #[test]
    fn f32_single_op_via_f64_matches_native() {
        // The widen-compute-round contract: one IEEE op on f32 inputs
        // evaluated in f64 and rounded once equals the native f32 op.
        let xs = [1.0f32, 0.1, -3.75, 1e-30, 1e30, std::f32::consts::PI];
        for &a in &xs {
            for &b in &xs {
                assert_eq!(a + b, f32::from_f64(a.to_f64() + b.to_f64()));
                assert_eq!(a - b, f32::from_f64(a.to_f64() - b.to_f64()));
                assert_eq!(a * b, f32::from_f64(a.to_f64() * b.to_f64()));
                assert_eq!(a / b, f32::from_f64(a.to_f64() / b.to_f64()));
            }
        }
    }

    #[test]
    fn fast_tanh_f32_accuracy_and_edges() {
        // A few ulps of the correctly rounded result across the whole
        // active range, exact saturation beyond it.
        let mut i = -79_000i32;
        while i <= 79_000 {
            let x = i as f32 * 1e-4; // [-7.9, 7.9] in 1e-4 steps
            let got = tanh_f32(x);
            let want = f64::from(x).tanh() as f32;
            assert!(
                (f64::from(got) - f64::from(want)).abs() <= 4.0 * f64::from(want.abs().max(1e-30)) * f32::EPSILON as f64 + 1e-9,
                "tanh_f32({x}) = {got} vs {want}"
            );
            i += 7;
        }
        // Saturation region: exact ±1 past the clamp point, absolute
        // error below 3e-7 (true tanh is within 2.8e-7 of 1 there).
        for x in [7.91f32, 8.2, 8.66, 9.0] {
            assert_eq!(tanh_f32(x), 1.0);
            assert_eq!(tanh_f32(-x), -1.0);
            assert!((f64::from(x).tanh() - 1.0).abs() < 3e-7);
        }
        assert_eq!(tanh_f32(30.0), 1.0);
        assert_eq!(tanh_f32(-30.0), -1.0);
        assert_eq!(tanh_f32(0.0), 0.0);
        assert!(tanh_f32(f32::NAN).is_nan());
        assert_eq!(tanh_f32(f32::INFINITY), 1.0);
        assert_eq!(tanh_f32(f32::NEG_INFINITY), -1.0);
    }

    #[test]
    fn fast_exp_f32_accuracy_and_edges() {
        let mut i = -870_000i32;
        while i <= 880_000 {
            let x = i as f32 * 1e-4; // [-87, 88] in 1e-4 steps
            let got = exp_f32(x);
            let want = f64::from(x).exp() as f32;
            let rel = (f64::from(got) - f64::from(want)).abs() / f64::from(want);
            assert!(rel <= 4.0 * f64::from(f32::EPSILON), "exp_f32({x}) = {got} vs {want}");
            i += 97;
        }
        assert_eq!(exp_f32(0.0), 1.0);
        assert_eq!(exp_f32(f32::NEG_INFINITY), 0.0);
        assert_eq!(exp_f32(-200.0), 0.0);
        assert_eq!(exp_f32(f32::INFINITY), f32::INFINITY);
        assert_eq!(exp_f32(200.0), f32::INFINITY);
        assert!(exp_f32(f32::NAN).is_nan());
        // Gradual underflow into the subnormal range.
        let tiny = exp_f32(-95.0);
        assert!(tiny > 0.0 && tiny < 1e-38, "exp_f32(-95) = {tiny}");
    }

    #[test]
    fn dispatch_binds_the_type() {
        fn numel_bytes<E: Element>(n: usize) -> usize {
            n * std::mem::size_of::<E>()
        }
        let dt = DType::F32;
        let bytes = dispatch_dtype!(dt, E => numel_bytes::<E>(10));
        assert_eq!(bytes, 40);
        assert_eq!(dispatch_dtype!(DType::F64, E => numel_bytes::<E>(10)), 80);
    }
}
