//! `tyxe-tensor`: a dense tensor library with reverse-mode automatic
//! differentiation, generic over its storage dtype (`f64` and `f32`).
//!
//! This crate is the Pytorch substitute underlying the `tyxe` Bayesian neural
//! network stack. It provides:
//!
//! * [`Tensor`] — a cheaply clonable handle to a dense, row-major buffer
//!   participating in a dynamically built autodiff graph; storage is
//!   `f64` by default, `f32` on request ([`DType`], [`Tensor::cast`],
//!   the `*_dtype` constructors), with [`autocast`] demoting the
//!   matmul/conv/linear hot paths wholesale for mixed-precision
//!   training;
//! * broadcasting element-wise arithmetic, matrix multiplication, 2-D
//!   convolution and pooling, reductions, softmax and shape manipulation;
//! * [`grad_check`] — finite-difference gradient checking used by the test
//!   suites of every downstream crate.
//!
//! # Example
//!
//! ```
//! use tyxe_tensor::Tensor;
//!
//! let w = Tensor::from_vec(vec![1.0, -1.0], &[2, 1]).requires_grad(true);
//! let x = Tensor::from_vec(vec![0.5, 2.0], &[1, 2]);
//! let loss = x.matmul(&w).square().sum();
//! loss.backward();
//! assert!(w.grad().is_some());
//! ```
//!
//! The graph is built dynamically: every differentiable op records its
//! parents and a backward closure, and [`Tensor::backward`] runs a
//! topological traversal. Tensors are `Rc`-based and therefore neither `Send`
//! nor `Sync`: the autodiff *graph* — construction, traversal, gradient
//! bookkeeping — is single-threaded by design. Parallelism lives strictly
//! *inside* the op kernels, which hand disjoint chunks of their flat
//! output buffers to the in-tree `tyxe-par` thread pool (blocked GEMM,
//! convolution, pooling, elementwise maps, axis reductions).
//!
//! # Threading and determinism
//!
//! * `TYXE_NUM_THREADS` caps kernel parallelism (default: available
//!   hardware parallelism; `1` bypasses the pool entirely).
//! * Work is always partitioned by output element: each element's
//!   floating-point operation sequence is fixed, independent of thread
//!   count or chunk boundaries, so every result is **bit-identical** for
//!   every `TYXE_NUM_THREADS` setting. The seeded-reproducibility
//!   contract in `tests/determinism.rs` therefore holds at any thread
//!   count, and `crates/tensor/tests/parallel_identity.rs` pins the
//!   kernels to their naive references bitwise. The contract is stated
//!   **per dtype**: at fixed [`DType`], results are bit-identical across
//!   thread count × pool × fusion × plan; `f32` and `f64` runs of the
//!   same program of course differ from each other (DESIGN.md §12).
//! * On x86-64 CPUs with FMA the matrix kernels (and their retained
//!   references) use fused multiply-adds, so results can differ between
//!   *machines* with different instruction sets — the usual BLAS caveat —
//!   but never between runs, thread counts, or code paths on one machine.
//!   See [`ops::gemm_kernels`] for the full contract.
//!
//! # Memory reuse
//!
//! Tensor data and gradient buffers are recycled through a thread-local,
//! size-bucketed buffer pool ([`pool`]; `TYXE_POOL=0` disables it).
//! Recycled buffers may be handed back with stale contents where the
//! consumer provably overwrites every element — no result ever depends
//! on a buffer's prior life, so numerics are **bit-identical with the
//! pool on or off**, an invariant the determinism contract above extends
//! to and `tests/pool_stress.rs` pins. See DESIGN.md §10 for the full
//! memory-reuse contract and the fused hot-path kernels that accompany
//! it.
//!
//! # Compiled step plans
//!
//! On top of buffer recycling, [`plan`] removes per-step graph
//! construction entirely: a recording pass traces one SVI step into a
//! [`plan::StepPlan`] whose replay recomputes every op in place over
//! the retained graph — zero allocation, bit-identical to the dynamic
//! path, gated by `TYXE_PLAN` (default on, `0` disables). Traces that
//! cannot be replayed (unsupported ops, unregistered RNG draws) fall
//! back to the dynamic path; see DESIGN.md §11 for the contract.

pub mod autocast;
pub mod element;
pub mod grad_check;
pub mod inference;
pub mod ops;
pub mod plan;
pub mod pool;
pub mod shape;
mod tensor;

pub use element::{DType, Element};
pub use grad_check::{check_gradient, GradCheckReport};
pub use tensor::{RawData, Tensor};

#[cfg(test)]
mod integration_tests {
    use super::*;
    use tyxe_rand::SeedableRng;

    /// A two-layer MLP regression step exercising most ops together.
    #[test]
    fn mlp_training_reduces_loss() {
        let mut rng = tyxe_rand::rngs::StdRng::seed_from_u64(0);
        let x = Tensor::rand_uniform(&[32, 1], -1.0, 1.0, &mut rng);
        let target = x.mul_scalar(2.0).add_scalar(0.5);

        let w1 = Tensor::randn(&[1, 16], &mut rng).mul_scalar(0.5).requires_grad(true);
        let b1 = Tensor::zeros(&[16]).requires_grad(true);
        let w2 = Tensor::randn(&[16, 1], &mut rng).mul_scalar(0.5).requires_grad(true);
        let b2 = Tensor::zeros(&[1]).requires_grad(true);

        let forward = |w1: &Tensor, b1: &Tensor, w2: &Tensor, b2: &Tensor| {
            let h = x.matmul(w1).add(b1).tanh();
            let y = h.matmul(w2).add(b2);
            y.sub(&target).square().mean()
        };

        let mut last = f64::INFINITY;
        for _ in 0..200 {
            let loss = forward(&w1, &b1, &w2, &b2);
            last = loss.item();
            for p in [&w1, &b1, &w2, &b2] {
                p.zero_grad();
            }
            loss.backward();
            for p in [&w1, &b1, &w2, &b2] {
                let g = p.grad().unwrap();
                let mut d = p.to_vec();
                for (v, gi) in d.iter_mut().zip(&g) {
                    *v -= 0.1 * gi;
                }
                p.set_data(d);
            }
        }
        assert!(last < 1e-2, "final loss {last}");
    }

    #[test]
    fn softmax_classifier_gradient_is_correct() {
        let mut rng = tyxe_rand::rngs::StdRng::seed_from_u64(3);
        let x0 = Tensor::randn(&[4, 5], &mut rng);
        let report = check_gradient(
            |logits| logits.log_softmax(1).gather_rows(&[0, 1, 2, 3]).sum().neg(),
            &x0,
            1e-6,
        );
        assert!(report.passes(1e-6), "{report:?}");
    }
}
