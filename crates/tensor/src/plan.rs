//! Compiled step plans: trace one SVI step, replay it many times
//! (`TYXE_PLAN`; default on, `0` disables).
//!
//! SVI training rebuilds an identical autodiff graph every step. The
//! buffer pool ([`crate::pool`]) recycles the *storage*, but graph
//! construction, effect-handler dispatch and per-op closure allocation
//! are still paid per step. This module removes them: a **recording**
//! pass runs one ordinary dynamic step while every supported op also
//! registers a *replay closure* — a `Fn` that recomputes the op's
//! forward values in place, into the same output buffer, from the same
//! (retained) input tensors. The resulting [`StepPlan`] owns the flat
//! closure list, the retained graph, and a cached topological order;
//! [`StepPlan::replay`] re-executes the forward pass with **zero graph
//! or buffer allocation**, and [`StepPlan::backward`] walks the cached
//! topological order — byte for byte the same arithmetic as the dynamic
//! path, so replay is bit-identical to rebuilding the graph (pinned by
//! `tests/determinism.rs`).
//!
//! # Trace semantics and the coverage check
//!
//! Recording captures *one concrete execution*: constant constructors
//! ([`Tensor::scalar`], [`Tensor::full`], …) are baked at their recorded
//! values, and data-dependent control flow is frozen the way a JAX trace
//! freezes Python control flow. A plan is only returned when the trace
//! is provably replayable; [`end_record`] rejects it (→ permanent
//! dynamic fallback, never wrong answers) if:
//!
//! * any node reachable from the loss was produced during recording by
//!   an op without a replay closure (e.g. `matmul`, `custom_op`,
//!   `from_vec` — including dropout masks);
//! * any *input* read by a recorded op was produced during recording
//!   without being covered (catches non-gradient subgraphs whose
//!   parent links the graph drops, and externally drawn noise);
//! * any RNG draw went through `tyxe-prob`'s global stream without
//!   registering a refresh closure ([`mark_unsupported`]); a replay
//!   could not reproduce the draw and every later sample would desync.
//!
//! RNG-backed leaves (`rng::randn` et al.) register *refresh* closures
//! via [`record_leaf`]: replay re-draws them in recorded program order,
//! so the global stream advances exactly as the dynamic path would.
//!
//! # Invalidation
//!
//! Replay is only valid for the exact input/target tensors (by node id
//! and shape) the plan was recorded against — the step driver in
//! `tyxe::VariationalBnn` checks this signature and re-records on
//! mismatch. Out-of-band state surgery (checkpoint restore, fault
//! rollback) calls [`invalidate_all`], which bumps a global generation
//! every live plan is compared against. Counters `plan.hit` /
//! `plan.invalidated` and the `plan.record`/`plan.replay`/
//! `plan.invalidate` spans make the hit ratio observable; DESIGN.md §11
//! states the full contract.

use std::cell::{Cell, RefCell};
use std::collections::HashSet;
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use crate::tensor::Tensor;

/// Cached tyxe-obs handles. Ungated like the pool counters: plan-hit
/// accounting backs an acceptance gate and must stay exact.
mod probe {
    use std::sync::OnceLock;

    use tyxe_obs::metrics::Counter;

    /// Steps served by replaying a compiled plan.
    pub fn plan_hit() -> &'static Counter {
        static C: OnceLock<Counter> = OnceLock::new();
        C.get_or_init(|| tyxe_obs::metrics::counter("plan.hit"))
    }

    /// Plans discarded before their time: global generation bumps
    /// ([`super::invalidate_all`]) and driver-side signature mismatches.
    pub fn plan_invalidated() -> &'static Counter {
        static C: OnceLock<Counter> = OnceLock::new();
        C.get_or_init(|| tyxe_obs::metrics::counter("plan.invalidated"))
    }
}

/// 0 = off, 1 = on, 2 = not yet read from the environment.
static ENABLED: AtomicUsize = AtomicUsize::new(2);

fn default_enabled() -> bool {
    !matches!(std::env::var("TYXE_PLAN").as_deref(), Ok(v) if v.trim() == "0")
}

/// Whether plan compilation is active (`TYXE_PLAN` env gate, overridable
/// via [`set_enabled`]). One relaxed atomic load on the fast path.
#[inline]
pub fn enabled() -> bool {
    match ENABLED.load(Ordering::Relaxed) {
        1 => true,
        0 => false,
        _ => {
            let on = default_enabled();
            ENABLED.store(on as usize, Ordering::Relaxed);
            on
        }
    }
}

/// Runtime override of the `TYXE_PLAN` gate (used by the plan-parity
/// determinism tests). Disabling does not drop already-compiled plans;
/// drivers simply stop consulting them.
pub fn set_enabled(on: bool) {
    ENABLED.store(on as usize, Ordering::Relaxed);
}

/// Global plan generation. Bumped by [`invalidate_all`]; every compiled
/// plan remembers the generation it was recorded under and is discarded
/// by its driver once the two disagree.
static GENERATION: AtomicU64 = AtomicU64::new(0);

/// The current plan generation (compare against [`StepPlan::generation`]).
pub fn generation() -> u64 {
    GENERATION.load(Ordering::Relaxed)
}

/// Invalidates every compiled plan, process-wide. Called on out-of-band
/// state surgery — checkpoint restore, fault rollback — after which a
/// recorded trace can no longer be trusted to match the live graph.
pub fn invalidate_all() {
    let _span = tyxe_obs::span!("plan.invalidate");
    GENERATION.fetch_add(1, Ordering::Relaxed);
    probe::plan_invalidated().inc();
}

/// Records a replay served from a compiled plan (`plan.hit`).
pub fn note_replay_hit() {
    probe::plan_hit().inc();
}

/// Records a driver-side plan discard — signature mismatch, not a
/// [`invalidate_all`] bump (those count themselves).
pub fn note_invalidated() {
    probe::plan_invalidated().inc();
}

thread_local! {
    /// Fast-path recording flag, checked by every op constructor.
    static ACTIVE: Cell<bool> = const { Cell::new(false) };
    static RECORDER: RefCell<Option<Recorder>> = const { RefCell::new(None) };
}

struct Recorder {
    /// Node-id watermark at `begin_record`: ids at or above it were
    /// created during the recording and must be covered to replay.
    watermark: u64,
    /// Replay closures, in program order.
    ops: Vec<Box<dyn Fn()>>,
    /// Ids whose per-step values the plan reproduces (op and leaf
    /// outputs) or that are frozen by contract (constants).
    covered: HashSet<u64>,
    /// Ids read as inputs by recorded ops — checked against `covered`
    /// at `end_record` so no replayed op consumes a stale value.
    reads: Vec<u64>,
    unsupported: Option<String>,
}

/// Whether a recording is active on this thread.
#[inline]
pub fn is_recording() -> bool {
    ACTIVE.with(Cell::get)
}

/// Starts recording on this thread. Unconditionally replaces any stale
/// recorder (e.g. left behind by a panic mid-step) so a supervised
/// retry always records from a clean slate.
pub fn begin_record() {
    RECORDER.with(|r| {
        *r.borrow_mut() = Some(Recorder {
            watermark: crate::tensor::id_watermark(),
            ops: Vec::new(),
            covered: HashSet::new(),
            reads: Vec::new(),
            unsupported: None,
        });
    });
    ACTIVE.with(|a| a.set(true));
    // Touch both plan counters so any metrics snapshot taken after the
    // first recording carries them, replayed-or-not.
    probe::plan_hit();
    probe::plan_invalidated();
}

/// Poisons the active recording (if any): `end_record` will report
/// `reason` and the driver falls back to the dynamic path permanently.
/// Called by anything a trace cannot reproduce — unregistered global
/// RNG draws above all.
pub fn mark_unsupported(reason: &str) {
    if !is_recording() {
        return;
    }
    RECORDER.with(|r| {
        if let Some(rec) = r.borrow_mut().as_mut() {
            if rec.unsupported.is_none() {
                rec.unsupported = Some(reason.to_string());
            }
        }
    });
}

/// Registers an op output with its replay closure. `compute` must
/// recompute the op's forward values into the (fully overwritten)
/// output buffer — viewed in the output's element type `E` — from the
/// same retained inputs; `reads` lists those inputs for the
/// end-of-record coverage check. Replay panics (via the typed-buffer
/// accessor) if the output's dtype changed after recording, but drivers
/// key their plan signatures on dtype and re-record first, and
/// [`Tensor::convert_dtype_inplace`] bumps the generation besides.
pub(crate) fn record_op_t<E: crate::element::Element>(
    out: &Tensor,
    reads: &[&Tensor],
    compute: impl Fn(&mut [E]) + 'static,
) {
    if !is_recording() {
        return;
    }
    RECORDER.with(|r| {
        if let Some(rec) = r.borrow_mut().as_mut() {
            rec.covered.insert(out.id());
            rec.reads.extend(reads.iter().map(|t| t.id()));
            let dst = out.clone();
            rec.ops.push(Box::new(move || {
                compute(dst.inner.data.borrow_mut().as_mut_slice::<E>())
            }));
        }
    });
}

/// Registers an RNG-backed leaf with a refresh closure that re-draws it
/// in place. Refreshes replay in recorded program order, so the global
/// RNG stream advances exactly as under the dynamic path.
pub fn record_leaf(out: &Tensor, refresh: impl Fn() + 'static) {
    if !is_recording() {
        return;
    }
    RECORDER.with(|r| {
        if let Some(rec) = r.borrow_mut().as_mut() {
            rec.covered.insert(out.id());
            rec.ops.push(Box::new(refresh));
        }
    });
}

/// Registers a constant constructor's output: its recorded values are
/// frozen into the plan by the trace contract, so replay needs no
/// closure — only the coverage mark.
pub(crate) fn record_const(out: &Tensor) {
    if !is_recording() {
        return;
    }
    RECORDER.with(|r| {
        if let Some(rec) = r.borrow_mut().as_mut() {
            rec.covered.insert(out.id());
        }
    });
}

/// Finishes the recording started by [`begin_record`] and compiles a
/// plan that replays `loss` (the step's scalar output), or explains why
/// the trace cannot be replayed. Always clears the recording state.
pub fn end_record(loss: &Tensor) -> Result<StepPlan, String> {
    ACTIVE.with(|a| a.set(false));
    let rec = RECORDER.with(|r| r.borrow_mut().take());
    let Some(rec) = rec else {
        return Err("end_record without begin_record".to_string());
    };
    if let Some(reason) = rec.unsupported {
        return Err(reason);
    }
    // Every input a recorded op reads must itself be replayed (or
    // pre-exist the recording): this catches per-step tensors whose
    // producer recorded nothing, even when the graph dropped the parent
    // link (non-gradient subgraphs, reparameterization noise).
    for id in &rec.reads {
        if *id >= rec.watermark && !rec.covered.contains(id) {
            return Err(format!(
                "recorded op reads node {id}, which was created during \
                 recording by an op the plan cannot replay"
            ));
        }
    }
    // And every node the backward pass can reach must be covered, so no
    // unreplayed op feeds the loss through the retained graph.
    let mut visited: HashSet<u64> = HashSet::new();
    let mut stack = vec![loss.clone()];
    visited.insert(loss.id());
    while let Some(node) = stack.pop() {
        if node.id() >= rec.watermark && !rec.covered.contains(&node.id()) {
            return Err(format!(
                "node {} (shape {:?}) reachable from the loss was created \
                 during recording by an op the plan cannot replay",
                node.id(),
                node.shape()
            ));
        }
        for parent in &node.inner.parents {
            if visited.insert(parent.id()) {
                stack.push(parent.clone());
            }
        }
    }
    let topo = loss.topo_order();
    Ok(StepPlan { ops: rec.ops, topo, loss: loss.clone(), generation: generation() })
}

/// A compiled SVI step: the retained graph of one recorded execution,
/// the flat list of replay closures that recompute it in place, and the
/// cached topological order its backward pass walks.
pub struct StepPlan {
    ops: Vec<Box<dyn Fn()>>,
    /// `loss.topo_order()` at record time. The retained graph never
    /// changes shape, so the cached order stays exact — and because the
    /// dynamic path recomputes the identical order each step, walking
    /// the cache is bit-identical to a dynamic backward.
    topo: Vec<Tensor>,
    loss: Tensor,
    generation: u64,
}

impl StepPlan {
    /// The generation this plan was recorded under; stale once it
    /// differs from [`generation`].
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The retained scalar loss node; holds the freshly replayed value
    /// after [`StepPlan::replay`].
    pub fn loss(&self) -> &Tensor {
        &self.loss
    }

    /// Number of replay closures (op recomputes + RNG refreshes).
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the plan contains no replay closures.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Re-executes the recorded forward pass in place: every closure
    /// overwrites its output buffer inside the retained graph. No graph
    /// nodes and no buffers are allocated.
    pub fn replay(&self) {
        for op in &self.ops {
            op();
        }
    }

    /// Runs the backward pass over the cached topological order —
    /// identical arithmetic, in identical order, to the dynamic
    /// `Tensor::backward`. Any gradient left on an op node by a
    /// previously interrupted walk (e.g. an injected panic) is cleared
    /// first; a completed walk leaves none, so this is normally a no-op
    /// sweep.
    pub fn backward(&self) {
        if !self.loss.requires_grad_enabled() {
            return;
        }
        for node in &self.topo {
            if node.inner.backward_fn.is_some() {
                node.inner.grad.borrow_mut().take();
            }
        }
        self.loss.backward_over(&self.topo, &[1.0]);
    }
}

impl fmt::Debug for StepPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StepPlan")
            .field("ops", &self.ops.len())
            .field("nodes", &self.topo.len())
            .field("generation", &self.generation)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that toggle recording state on this thread (the
    /// test harness runs tests concurrently, but TLS isolates them; the
    /// lock guards the process-global generation assertions).
    fn with_plan_lock<R>(f: impl FnOnce() -> R) -> R {
        use std::sync::Mutex;
        static LOCK: Mutex<()> = Mutex::new(());
        let _g = LOCK.lock().unwrap_or_else(|p| p.into_inner());
        f()
    }

    #[test]
    fn replay_recomputes_wired_ops_in_place() {
        with_plan_lock(|| {
            let x = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).requires_grad(true);
            begin_record();
            let loss = x.mul(&x).sum();
            let plan = end_record(&loss).expect("mul/sum are plannable");
            loss.backward();
            assert_eq!(x.grad().unwrap(), vec![2.0, 4.0, 6.0]);

            // Mutate the input out of band (the supported "new batch into
            // the same tensor" idiom) and replay: values and gradients
            // must match a fresh dynamic evaluation.
            x.set_data(vec![4.0, 5.0, 6.0]);
            plan.replay();
            assert_eq!(plan.loss().item(), 16.0 + 25.0 + 36.0);
            x.zero_grad();
            plan.backward();
            assert_eq!(x.grad().unwrap(), vec![8.0, 10.0, 12.0]);
        });
    }

    #[test]
    fn replay_is_bit_identical_to_dynamic() {
        with_plan_lock(|| {
            let x = Tensor::from_vec(vec![0.3, -1.7, 2.9], &[3]).requires_grad(true);
            let dynamic = || {
                let loss = x.tanh().mul(&x).add_scalar(0.25).sum();
                loss.backward();
                let g = x.grad().unwrap();
                x.zero_grad();
                (loss.item(), g)
            };
            let (want_loss, want_grad) = dynamic();

            begin_record();
            let loss = x.tanh().mul(&x).add_scalar(0.25).sum();
            let plan = end_record(&loss).unwrap();
            for _ in 0..3 {
                plan.replay();
                plan.backward();
                let g = x.grad().unwrap();
                x.zero_grad();
                assert_eq!(plan.loss().item().to_bits(), want_loss.to_bits());
                assert_eq!(g.len(), want_grad.len());
                for (a, b) in g.iter().zip(&want_grad) {
                    assert_eq!(a.to_bits(), b.to_bits());
                }
            }
        });
    }

    #[test]
    fn unplannable_op_reachable_from_loss_is_rejected() {
        with_plan_lock(|| {
            let x = Tensor::from_vec(vec![1.0, 2.0], &[1, 2]).requires_grad(true);
            let w = Tensor::from_vec(vec![3.0, 4.0], &[2, 1]).requires_grad(true);
            begin_record();
            // matmul records no replay closure, so the trace must refuse
            // to compile rather than replay stale values.
            let loss = x.matmul(&w).sum();
            let err = end_record(&loss).unwrap_err();
            assert!(err.contains("cannot replay"), "{err}");
        });
    }

    #[test]
    fn per_step_tensor_behind_nongrad_op_is_rejected() {
        with_plan_lock(|| {
            let x = Tensor::from_vec(vec![1.0, 2.0], &[2]).requires_grad(true);
            begin_record();
            // `from_vec` inside the recording models a per-step value the
            // plan cannot refresh (a dropout mask, external noise). The
            // multiply below it carries no gradient, so the graph drops
            // the parent link — only the read check can catch it.
            let mask = Tensor::from_vec(vec![1.0, 0.0], &[2]);
            let gated = mask.mul(&mask);
            let loss = x.mul(&gated).sum();
            let err = end_record(&loss).unwrap_err();
            assert!(err.contains("cannot replay"), "{err}");
        });
    }

    #[test]
    fn constants_are_frozen_not_rejected() {
        with_plan_lock(|| {
            let x = Tensor::from_vec(vec![1.0, 2.0], &[2]).requires_grad(true);
            begin_record();
            let scale = Tensor::full(&[2], 0.5);
            let loss = x.mul(&scale).sum();
            let plan = end_record(&loss).expect("consts are baked, not rejected");
            plan.replay();
            assert_eq!(plan.loss().item(), 1.5);
        });
    }

    #[test]
    fn mark_unsupported_poisons_the_recording() {
        with_plan_lock(|| {
            let x = Tensor::from_vec(vec![1.0], &[1]).requires_grad(true);
            begin_record();
            let loss = x.mul(&x).sum();
            mark_unsupported("unregistered rng draw");
            let err = end_record(&loss).unwrap_err();
            assert_eq!(err, "unregistered rng draw");
        });
    }

    #[test]
    fn invalidate_all_bumps_generation() {
        with_plan_lock(|| {
            let x = Tensor::from_vec(vec![2.0], &[1]).requires_grad(true);
            begin_record();
            let loss = x.mul(&x).sum();
            let plan = end_record(&loss).unwrap();
            assert_eq!(plan.generation(), generation());
            invalidate_all();
            assert_ne!(plan.generation(), generation());
        });
    }

    #[test]
    fn begin_record_replaces_a_stale_recorder() {
        with_plan_lock(|| {
            let x = Tensor::from_vec(vec![1.0], &[1]).requires_grad(true);
            // A "panicked" step leaves recording active with junk state.
            begin_record();
            mark_unsupported("leftover");
            assert!(is_recording());
            // The retry must start clean.
            begin_record();
            let loss = x.mul(&x).sum();
            let plan = end_record(&loss).expect("stale recorder must not leak");
            assert!(!is_recording());
            plan.replay();
            assert_eq!(plan.loss().item(), 1.0);
        });
    }
}
