//! Compiled step plans: trace one SVI step, replay it many times
//! (`TYXE_PLAN`; default on, `0` disables).
//!
//! SVI training rebuilds an identical autodiff graph every step. The
//! buffer pool ([`crate::pool`]) recycles the *storage*, but graph
//! construction, effect-handler dispatch and per-op closure allocation
//! are still paid per step. This module removes them: a **recording**
//! pass runs one ordinary dynamic step while every supported op also
//! registers a *replay closure* — a `Fn` that recomputes the op's
//! forward values in place, into the same output buffer, from the same
//! (retained) input tensors. The resulting [`StepPlan`] owns the flat
//! closure list, the retained graph, and a cached topological order;
//! [`StepPlan::replay`] re-executes the forward pass with **zero graph
//! or buffer allocation**, and [`StepPlan::backward`] walks the cached
//! topological order — byte for byte the same arithmetic as the dynamic
//! path, so replay is bit-identical to rebuilding the graph (pinned by
//! `tests/determinism.rs`).
//!
//! # Trace semantics and the coverage check
//!
//! Recording captures *one concrete execution*: constant constructors
//! ([`Tensor::scalar`], [`Tensor::full`], …) are baked at their recorded
//! values, and data-dependent control flow is frozen the way a JAX trace
//! freezes Python control flow. A plan is only returned when the trace
//! is provably replayable; [`end_record`] rejects it (→ permanent
//! dynamic fallback, never wrong answers) if:
//!
//! * any node reachable from the loss was produced during recording by
//!   an op without a replay closure (e.g. `matmul`, `custom_op`,
//!   `from_vec` — including dropout masks);
//! * any *input* read by a recorded op was produced during recording
//!   without being covered (catches non-gradient subgraphs whose
//!   parent links the graph drops, and externally drawn noise);
//! * any RNG draw went through `tyxe-prob`'s global stream without
//!   registering a refresh closure ([`mark_unsupported`]); a replay
//!   could not reproduce the draw and every later sample would desync.
//!
//! RNG-backed leaves (`rng::randn` et al.) register *refresh* closures
//! via [`record_leaf`]: replay re-draws them in recorded program order,
//! so the global stream advances exactly as the dynamic path would.
//!
//! # Invalidation
//!
//! Replay is only valid for the exact input/target tensors (by node id
//! and shape) the plan was recorded against — the step driver in
//! `tyxe::VariationalBnn` checks this signature and re-records on
//! mismatch. Out-of-band state surgery (checkpoint restore, fault
//! rollback) calls [`invalidate_all`], which bumps a global generation
//! every live plan is compared against. Counters `plan.hit` /
//! `plan.invalidated` and the `plan.record`/`plan.replay`/
//! `plan.invalidate` spans make the hit ratio observable; DESIGN.md §11
//! states the full contract.

use std::cell::{Cell, Ref, RefCell, RefMut};
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use crate::element::DType;
use crate::pool;
use crate::tensor::{Buf, RawData, Tensor};

/// Cached tyxe-obs handles. Ungated like the pool counters: plan-hit
/// accounting backs an acceptance gate and must stay exact.
mod probe {
    use std::sync::OnceLock;

    use tyxe_obs::metrics::Counter;

    /// Steps served by replaying a compiled plan.
    pub fn plan_hit() -> &'static Counter {
        static C: OnceLock<Counter> = OnceLock::new();
        C.get_or_init(|| tyxe_obs::metrics::counter("plan.hit"))
    }

    /// Plans discarded before their time: global generation bumps
    /// ([`super::invalidate_all`]) and driver-side signature mismatches.
    pub fn plan_invalidated() -> &'static Counter {
        static C: OnceLock<Counter> = OnceLock::new();
        C.get_or_init(|| tyxe_obs::metrics::counter("plan.invalidated"))
    }
}

/// 0 = off, 1 = on, 2 = not yet read from the environment.
static ENABLED: AtomicUsize = AtomicUsize::new(2);

fn default_enabled() -> bool {
    !matches!(std::env::var("TYXE_PLAN").as_deref(), Ok(v) if v.trim() == "0")
}

/// Whether plan compilation is active (`TYXE_PLAN` env gate, overridable
/// via [`set_enabled`]). One relaxed atomic load on the fast path.
#[inline]
pub fn enabled() -> bool {
    match ENABLED.load(Ordering::Relaxed) {
        1 => true,
        0 => false,
        _ => {
            let on = default_enabled();
            ENABLED.store(on as usize, Ordering::Relaxed);
            on
        }
    }
}

/// Runtime override of the `TYXE_PLAN` gate (used by the plan-parity
/// determinism tests). Disabling does not drop already-compiled plans;
/// drivers simply stop consulting them.
pub fn set_enabled(on: bool) {
    ENABLED.store(on as usize, Ordering::Relaxed);
}

/// Global plan generation. Bumped by [`invalidate_all`]; every compiled
/// plan remembers the generation it was recorded under and is discarded
/// by its driver once the two disagree.
static GENERATION: AtomicU64 = AtomicU64::new(0);

/// The current plan generation (compare against [`StepPlan::generation`]).
pub fn generation() -> u64 {
    GENERATION.load(Ordering::Relaxed)
}

/// Invalidates every compiled plan, process-wide. Called on out-of-band
/// state surgery — checkpoint restore, fault rollback — after which a
/// recorded trace can no longer be trusted to match the live graph.
pub fn invalidate_all() {
    let _span = tyxe_obs::span!("plan.invalidate");
    GENERATION.fetch_add(1, Ordering::Relaxed);
    probe::plan_invalidated().inc();
}

/// Records a replay served from a compiled plan (`plan.hit`).
pub fn note_replay_hit() {
    probe::plan_hit().inc();
}

/// Records a driver-side plan discard — signature mismatch, not a
/// [`invalidate_all`] bump (those count themselves).
pub fn note_invalidated() {
    probe::plan_invalidated().inc();
}

thread_local! {
    /// Fast-path recording flag, checked by every op constructor.
    static ACTIVE: Cell<bool> = const { Cell::new(false) };
    static RECORDER: RefCell<Option<Recorder>> = const { RefCell::new(None) };
}

struct Recorder {
    /// Node-id watermark at `begin_record`: ids at or above it were
    /// created during the recording and must be covered to replay.
    watermark: u64,
    /// Replay closures, in program order.
    ops: Vec<Box<dyn Fn()>>,
    /// Ids whose per-step values the plan reproduces (op and leaf
    /// outputs) or that are frozen by contract (constants).
    covered: HashSet<u64>,
    /// Ids read as inputs by recorded ops — checked against `covered`
    /// at `end_record` so no replayed op consumes a stale value.
    reads: Vec<u64>,
    unsupported: Option<String>,
}

/// Whether a recording is active on this thread.
#[inline]
pub fn is_recording() -> bool {
    ACTIVE.with(Cell::get)
}

/// Starts recording on this thread. Unconditionally replaces any stale
/// recorder (e.g. left behind by a panic mid-step) so a supervised
/// retry always records from a clean slate.
pub fn begin_record() {
    RECORDER.with(|r| {
        *r.borrow_mut() = Some(Recorder {
            watermark: crate::tensor::id_watermark(),
            ops: Vec::new(),
            covered: HashSet::new(),
            reads: Vec::new(),
            unsupported: None,
        });
    });
    ACTIVE.with(|a| a.set(true));
    // Touch both plan counters so any metrics snapshot taken after the
    // first recording carries them, replayed-or-not.
    probe::plan_hit();
    probe::plan_invalidated();
}

/// Poisons the active recording (if any): `end_record` will report
/// `reason` and the driver falls back to the dynamic path permanently.
/// Called by anything a trace cannot reproduce — unregistered global
/// RNG draws above all.
pub fn mark_unsupported(reason: &str) {
    if !is_recording() {
        return;
    }
    RECORDER.with(|r| {
        if let Some(rec) = r.borrow_mut().as_mut() {
            if rec.unsupported.is_none() {
                rec.unsupported = Some(reason.to_string());
            }
        }
    });
}

/// Registers an op output with its replay closure. `compute` must
/// recompute the op's forward values into the (fully overwritten)
/// output buffer — viewed in the output's element type `E` — from the
/// same retained inputs; `reads` lists those inputs for the
/// end-of-record coverage check. Replay panics (via the typed-buffer
/// accessor) if the output's dtype changed after recording, but drivers
/// key their plan signatures on dtype and re-record first, and
/// [`Tensor::convert_dtype_inplace`] bumps the generation besides.
pub(crate) fn record_op_t<E: crate::element::Element>(
    out: &Tensor,
    reads: &[&Tensor],
    compute: impl Fn(&mut [E]) + 'static,
) {
    if !is_recording() {
        return;
    }
    RECORDER.with(|r| {
        if let Some(rec) = r.borrow_mut().as_mut() {
            rec.covered.insert(out.id());
            rec.reads.extend(reads.iter().map(|t| t.id()));
            let dst = out.clone();
            rec.ops.push(Box::new(move || {
                compute(dst.inner.data.borrow_mut().as_mut_slice::<E>())
            }));
        }
    });
}

/// Registers an RNG-backed leaf with a refresh closure that re-draws it
/// in place. Refreshes replay in recorded program order, so the global
/// RNG stream advances exactly as under the dynamic path.
pub fn record_leaf(out: &Tensor, refresh: impl Fn() + 'static) {
    if !is_recording() {
        return;
    }
    RECORDER.with(|r| {
        if let Some(rec) = r.borrow_mut().as_mut() {
            rec.covered.insert(out.id());
            rec.ops.push(Box::new(refresh));
        }
    });
}

/// Registers a constant constructor's output: its recorded values are
/// frozen into the plan by the trace contract, so replay needs no
/// closure — only the coverage mark.
pub(crate) fn record_const(out: &Tensor) {
    if !is_recording() {
        return;
    }
    RECORDER.with(|r| {
        if let Some(rec) = r.borrow_mut().as_mut() {
            rec.covered.insert(out.id());
        }
    });
}

/// Finishes the recording started by [`begin_record`] and compiles a
/// plan that replays `loss` (the step's scalar output), or explains why
/// the trace cannot be replayed. Always clears the recording state.
pub fn end_record(loss: &Tensor) -> Result<StepPlan, String> {
    ACTIVE.with(|a| a.set(false));
    let rec = RECORDER.with(|r| r.borrow_mut().take());
    let Some(rec) = rec else {
        return Err("end_record without begin_record".to_string());
    };
    if let Some(reason) = rec.unsupported {
        return Err(reason);
    }
    // Every input a recorded op reads must itself be replayed (or
    // pre-exist the recording): this catches per-step tensors whose
    // producer recorded nothing, even when the graph dropped the parent
    // link (non-gradient subgraphs, reparameterization noise).
    for id in &rec.reads {
        if *id >= rec.watermark && !rec.covered.contains(id) {
            return Err(format!(
                "recorded op reads node {id}, which was created during \
                 recording by an op the plan cannot replay"
            ));
        }
    }
    // And every node the backward pass can reach must be covered, so no
    // unreplayed op feeds the loss through the retained graph.
    let mut visited: HashSet<u64> = HashSet::new();
    let mut stack = vec![loss.clone()];
    visited.insert(loss.id());
    while let Some(node) = stack.pop() {
        if node.id() >= rec.watermark && !rec.covered.contains(&node.id()) {
            return Err(format!(
                "node {} (shape {:?}) reachable from the loss was created \
                 during recording by an op the plan cannot replay",
                node.id(),
                node.shape()
            ));
        }
        for parent in &node.inner.parents {
            if visited.insert(parent.id()) {
                stack.push(parent.clone());
            }
        }
    }
    let topo = loss.topo_order();
    Ok(StepPlan { ops: rec.ops, topo, loss: loss.clone(), generation: generation() })
}

/// A compiled SVI step: the retained graph of one recorded execution,
/// the flat list of replay closures that recompute it in place, and the
/// cached topological order its backward pass walks.
pub struct StepPlan {
    ops: Vec<Box<dyn Fn()>>,
    /// `loss.topo_order()` at record time. The retained graph never
    /// changes shape, so the cached order stays exact — and because the
    /// dynamic path recomputes the identical order each step, walking
    /// the cache is bit-identical to a dynamic backward.
    topo: Vec<Tensor>,
    loss: Tensor,
    generation: u64,
}

impl StepPlan {
    /// The generation this plan was recorded under; stale once it
    /// differs from [`generation`].
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The retained scalar loss node; holds the freshly replayed value
    /// after [`StepPlan::replay`].
    pub fn loss(&self) -> &Tensor {
        &self.loss
    }

    /// Number of replay closures (op recomputes + RNG refreshes).
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the plan contains no replay closures.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Re-executes the recorded forward pass in place: every closure
    /// overwrites its output buffer inside the retained graph. No graph
    /// nodes and no buffers are allocated.
    pub fn replay(&self) {
        for op in &self.ops {
            op();
        }
    }

    /// Runs the backward pass over the cached topological order —
    /// identical arithmetic, in identical order, to the dynamic
    /// `Tensor::backward`. Any gradient left on an op node by a
    /// previously interrupted walk (e.g. an injected panic) is cleared
    /// first; a completed walk leaves none, so this is normally a no-op
    /// sweep.
    pub fn backward(&self) {
        if !self.loss.requires_grad_enabled() {
            return;
        }
        for node in &self.topo {
            if node.inner.backward_fn.is_some() {
                node.inner.grad.borrow_mut().take();
            }
        }
        self.loss.backward_over(&self.topo, &[1.0]);
    }
}

impl fmt::Debug for StepPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StepPlan")
            .field("ops", &self.ops.len())
            .field("nodes", &self.topo.len())
            .field("generation", &self.generation)
            .finish()
    }
}

// ===========================================================================
// Forward-only plans (the predictive engine's replay substrate)
// ===========================================================================
//
// A [`StepPlan`] replays *into the retained graph* — its closures capture
// `Tensor`s and therefore can only run on the recording thread. Posterior
// prediction has the opposite shape: the same forward function evaluated S
// times with S different weight settings, embarrassingly parallel — except
// that `Tensor` is `Rc`-based and no part of the graph can cross a thread
// boundary. A [`ForwardPlan`] solves this by compiling the trace down to
// *slot programs*: every tensor the forward touches becomes an index into a
// flat slot table, and every op becomes a `Send + Sync` closure over slot
// indices plus its scalar recipe. Workers replay the program against their
// own [`FwdArena`] (private pooled buffers built in-thread), so S samples
// run concurrently with zero shared mutable state.
//
// Slot kinds:
// * **Input** — the data batch; bound by the driver via [`fwd_bind_input`],
//   filled per call from a [`RawData`] snapshot.
// * **Param(i)** — the i-th posterior-sampled weight buffer; bound via
//   [`fwd_bind_param`], filled per *sample* from the weight cache.
// * **Bound(i)** — any other pre-existing tensor the trace reads (a frozen
//   deterministic parameter, a constant): snapshotted from the live tensor
//   on the recording thread at each call ([`ForwardPlan::snapshot_bound`]),
//   so out-of-band updates are picked up without re-recording.
// * **Computed** — an op output, allocated fresh (pooled) in each arena.
//
// Anything the trace reads that was created *during* recording by an op
// without a forward hook — dropout masks, unregistered RNG draws, exotic
// ops — poisons the recording, and the driver falls back to the sequential
// path: never wrong answers, exactly the [`StepPlan`] philosophy. The op
// closures invoke the *same slice-level kernels* as the eager ops, so a
// replayed forward is bit-identical to the dynamic one at any thread count.

/// What fills a [`ForwardPlan`] slot at replay time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FwdSlotKind {
    /// The per-call input batch.
    Input,
    /// The i-th per-sample weight buffer.
    Param(usize),
    /// The i-th per-call snapshot of a pre-existing tensor.
    Bound(usize),
    /// An op output computed inside the arena.
    Computed,
}

#[derive(Debug, Clone)]
struct FwdSlotSpec {
    kind: FwdSlotKind,
    len: usize,
    dtype: DType,
}

/// A worker-private slot table for one [`FwdExec::run`] call: external
/// (borrowed) buffers for input/param/bound slots and freshly pooled
/// buffers for computed slots. Never crosses a thread boundary.
pub(crate) struct FwdArena<'a> {
    ext: Vec<Option<&'a RawData>>,
    computed: Vec<Option<RefCell<Buf>>>,
}

/// A read view of one arena slot.
enum SlotRead<'r> {
    Ext(&'r RawData),
    Comp(Ref<'r, Buf>),
}

impl SlotRead<'_> {
    fn as_slice<E: crate::element::Element>(&self) -> &[E] {
        match self {
            SlotRead::Ext(r) => r.as_slice::<E>(),
            SlotRead::Comp(b) => b.as_slice::<E>(),
        }
    }
}

impl<'a> FwdArena<'a> {
    fn read(&self, i: usize) -> SlotRead<'_> {
        match &self.ext[i] {
            Some(r) => SlotRead::Ext(r),
            None => SlotRead::Comp(
                self.computed[i].as_ref().expect("computed slot allocated").borrow(),
            ),
        }
    }

    fn write(&self, i: usize) -> RefMut<'_, Buf> {
        self.computed[i].as_ref().expect("write target must be a computed slot").borrow_mut()
    }
}

type FwdOp = Box<dyn Fn(&FwdArena<'_>) + Send + Sync>;

/// The `Send + Sync` executable core of a [`ForwardPlan`]: slot specs plus
/// the flat op program. Workers share it behind an [`Arc`] and call
/// [`FwdExec::run`] concurrently, once per posterior sample.
pub struct FwdExec {
    slots: Vec<FwdSlotSpec>,
    ops: Vec<FwdOp>,
    output: usize,
    output_shape: Vec<usize>,
    num_params: usize,
    num_bound: usize,
}

impl FwdExec {
    /// Number of per-sample weight buffers the program expects.
    pub fn num_params(&self) -> usize {
        self.num_params
    }

    /// The recorded output shape.
    pub fn output_shape(&self) -> &[usize] {
        &self.output_shape
    }

    /// Replays the compiled forward for one sample on the calling thread:
    /// builds a private arena, fills input/param/bound slots from the
    /// given buffers, runs the op program and copies the output out.
    ///
    /// # Panics
    ///
    /// Panics if a buffer's length or dtype disagrees with the recorded
    /// slot spec — drivers key plans on input signature and re-record
    /// first.
    pub fn run(&self, input: &RawData, params: &[RawData], bound: &[RawData]) -> RawData {
        assert_eq!(params.len(), self.num_params, "fwd replay: param count mismatch");
        assert_eq!(bound.len(), self.num_bound, "fwd replay: bound count mismatch");
        let mut ext: Vec<Option<&RawData>> = Vec::with_capacity(self.slots.len());
        let mut computed: Vec<Option<RefCell<Buf>>> = Vec::with_capacity(self.slots.len());
        for spec in &self.slots {
            let src = match spec.kind {
                FwdSlotKind::Input => Some(input),
                FwdSlotKind::Param(i) => Some(&params[i]),
                FwdSlotKind::Bound(i) => Some(&bound[i]),
                FwdSlotKind::Computed => None,
            };
            match src {
                Some(r) => {
                    assert_eq!(r.len(), spec.len, "fwd replay: slot length mismatch");
                    assert_eq!(r.dtype(), spec.dtype, "fwd replay: slot dtype mismatch");
                    ext.push(Some(r));
                    computed.push(None);
                }
                None => {
                    let buf = match spec.dtype {
                        DType::F64 => Buf::F64(pool::alloc_uninit::<f64>(spec.len)),
                        DType::F32 => Buf::F32(pool::alloc_uninit::<f32>(spec.len)),
                    };
                    ext.push(None);
                    computed.push(Some(RefCell::new(buf)));
                }
            }
        }
        let arena = FwdArena { ext, computed };
        for op in &self.ops {
            op(&arena);
        }
        let out = match &*arena.computed[self.output]
            .as_ref()
            .expect("output is a computed slot")
            .borrow()
        {
            Buf::F64(v) => RawData::F64(v.to_vec()),
            Buf::F32(v) => RawData::F32(v.to_vec()),
        };
        out
    }
}

impl fmt::Debug for FwdExec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FwdExec")
            .field("slots", &self.slots.len())
            .field("ops", &self.ops.len())
            .field("params", &self.num_params)
            .field("bound", &self.num_bound)
            .finish()
    }
}

/// A compiled forward-only plan: the shareable [`FwdExec`] program plus
/// the recording thread's handles to the live tensors behind `Bound`
/// slots (snapshotted per call, so the plan tracks out-of-band updates
/// to deterministic parameters without re-recording).
pub struct ForwardPlan {
    exec: Arc<FwdExec>,
    bound: Vec<Tensor>,
    generation: u64,
}

impl ForwardPlan {
    /// The `Send + Sync` executable program, for handing to workers.
    pub fn exec(&self) -> Arc<FwdExec> {
        Arc::clone(&self.exec)
    }

    /// Snapshots the current values of all `Bound` tensors (recording
    /// thread only; the result is `Send`).
    pub fn snapshot_bound(&self) -> Vec<RawData> {
        self.bound.iter().map(Tensor::raw_data).collect()
    }

    /// The generation this plan was recorded under; stale once it
    /// differs from [`generation`].
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Number of compiled op closures.
    pub fn len(&self) -> usize {
        self.exec.ops.len()
    }

    /// Whether the program is empty (an input-is-output degenerate trace
    /// never compiles, so this is false for every recorded plan).
    pub fn is_empty(&self) -> bool {
        self.exec.ops.is_empty()
    }
}

impl fmt::Debug for ForwardPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ForwardPlan")
            .field("exec", &*self.exec)
            .field("generation", &self.generation)
            .finish()
    }
}

struct FwdRecorder {
    /// Node-id watermark at `fwd_begin_record`: ids at or above it were
    /// created during the recording and must map to computed slots.
    watermark: u64,
    /// Tensor id → slot index for every tensor the program knows.
    slot_of: HashMap<u64, usize>,
    specs: Vec<FwdSlotSpec>,
    /// Live tensors behind `Bound` slots, in `Bound(i)` order.
    bound: Vec<Tensor>,
    ops: Vec<FwdOp>,
    num_params: usize,
    unsupported: Option<String>,
}

impl FwdRecorder {
    /// Resolves a tensor an op reads to its slot, auto-binding
    /// pre-existing tensors as `Bound` snapshots. `None` (+ poison) for
    /// tensors created during recording by un-hooked ops.
    fn resolve_read(&mut self, t: &Tensor) -> Option<usize> {
        if let Some(&i) = self.slot_of.get(&t.id()) {
            return Some(i);
        }
        if t.id() < self.watermark {
            let idx = self.specs.len();
            self.specs.push(FwdSlotSpec {
                kind: FwdSlotKind::Bound(self.bound.len()),
                len: t.numel(),
                dtype: t.dtype(),
            });
            self.bound.push(t.clone());
            self.slot_of.insert(t.id(), idx);
            return Some(idx);
        }
        if self.unsupported.is_none() {
            self.unsupported = Some(format!(
                "op reads node {} (shape {:?}), created during recording by an \
                 op without a forward-replay hook",
                t.id(),
                t.shape()
            ));
        }
        None
    }

    fn add_computed(&mut self, out: &Tensor) -> usize {
        let idx = self.specs.len();
        self.specs.push(FwdSlotSpec {
            kind: FwdSlotKind::Computed,
            len: out.numel(),
            dtype: out.dtype(),
        });
        self.slot_of.insert(out.id(), idx);
        idx
    }
}

thread_local! {
    /// Fast-path forward-recording flag, checked by every hooked op.
    static FWD_ACTIVE: Cell<bool> = const { Cell::new(false) };
    static FWD_RECORDER: RefCell<Option<FwdRecorder>> = const { RefCell::new(None) };
}

/// Whether a forward-plan recording is active on this thread.
#[inline]
pub fn fwd_is_recording() -> bool {
    FWD_ACTIVE.with(Cell::get)
}

/// Starts a forward-plan recording on this thread, replacing any stale
/// recorder (same clean-slate contract as [`begin_record`]). Bind the
/// input and every per-sample parameter **before** running the forward.
pub fn fwd_begin_record() {
    FWD_RECORDER.with(|r| {
        *r.borrow_mut() = Some(FwdRecorder {
            watermark: crate::tensor::id_watermark(),
            slot_of: HashMap::new(),
            specs: Vec::new(),
            bound: Vec::new(),
            ops: Vec::new(),
            num_params: 0,
            unsupported: None,
        });
    });
    FWD_ACTIVE.with(|a| a.set(true));
}

fn with_fwd_recorder(f: impl FnOnce(&mut FwdRecorder)) {
    if !fwd_is_recording() {
        return;
    }
    FWD_RECORDER.with(|r| {
        if let Some(rec) = r.borrow_mut().as_mut() {
            f(rec);
        }
    });
}

/// Declares `t` as the per-call input batch (slot `Input`).
pub fn fwd_bind_input(t: &Tensor) {
    with_fwd_recorder(|rec| {
        let idx = rec.specs.len();
        rec.specs.push(FwdSlotSpec {
            kind: FwdSlotKind::Input,
            len: t.numel(),
            dtype: t.dtype(),
        });
        rec.slot_of.insert(t.id(), idx);
    });
}

/// Declares `t` as the `param_idx`-th per-sample weight buffer (slot
/// `Param(param_idx)`). Call once per site, in cache order.
pub fn fwd_bind_param(t: &Tensor, param_idx: usize) {
    with_fwd_recorder(|rec| {
        let idx = rec.specs.len();
        rec.specs.push(FwdSlotSpec {
            kind: FwdSlotKind::Param(param_idx),
            len: t.numel(),
            dtype: t.dtype(),
        });
        rec.slot_of.insert(t.id(), idx);
        rec.num_params = rec.num_params.max(param_idx + 1);
    });
}

/// Poisons the active forward recording (if any), mirroring
/// [`mark_unsupported`]: [`fwd_end_record`] will report `reason` and the
/// driver falls back to the sequential path.
pub fn fwd_mark_unsupported(reason: &str) {
    with_fwd_recorder(|rec| {
        if rec.unsupported.is_none() {
            rec.unsupported = Some(reason.to_string());
        }
    });
}

/// Registers an op output with its thread-portable replay closure.
/// `compute` must fully overwrite the output from the read slices (given
/// in `reads` order) using the **same slice-level kernel** as the eager
/// op, so replay is bit-identical. Reads resolve to slots here, at record
/// time; unknown mid-recording tensors poison the trace.
pub(crate) fn fwd_record_op_t<E: crate::element::Element>(
    out: &Tensor,
    reads: &[&Tensor],
    compute: impl Fn(&[&[E]], &mut [E]) + Send + Sync + 'static,
) {
    with_fwd_recorder(|rec| {
        let mut srcs = Vec::with_capacity(reads.len());
        for t in reads {
            match rec.resolve_read(t) {
                Some(i) => srcs.push(i),
                None => return,
            }
        }
        let dst = rec.add_computed(out);
        rec.ops.push(Box::new(move |arena: &FwdArena<'_>| {
            let views: Vec<SlotRead<'_>> = srcs.iter().map(|&i| arena.read(i)).collect();
            let slices: Vec<&[E]> = views.iter().map(SlotRead::as_slice::<E>).collect();
            compute(&slices, arena.write(dst).as_mut_slice::<E>());
        }));
    });
}

/// Registers a dtype-cast output: replay converts the source slot into
/// the destination dtype with the exact per-element recipe of
/// [`Tensor::cast`]'s replay closure.
pub(crate) fn fwd_record_cast(out: &Tensor, src: &Tensor) {
    with_fwd_recorder(|rec| {
        let Some(s) = rec.resolve_read(src) else { return };
        let dst = rec.add_computed(out);
        let dt = out.dtype();
        rec.ops.push(Box::new(move |arena: &FwdArena<'_>| {
            let view = arena.read(s);
            let mut d = arena.write(dst);
            match dt {
                DType::F32 => {
                    let o = d.as_mut_slice::<f32>();
                    match &view {
                        SlotRead::Ext(RawData::F64(v)) => {
                            for (o, &x) in o.iter_mut().zip(v.iter()) {
                                *o = x as f32;
                            }
                        }
                        SlotRead::Ext(RawData::F32(v)) => o.copy_from_slice(v),
                        SlotRead::Comp(b) => match &**b {
                            Buf::F64(v) => {
                                for (o, &x) in o.iter_mut().zip(v.iter()) {
                                    *o = x as f32;
                                }
                            }
                            Buf::F32(v) => o.copy_from_slice(v),
                        },
                    }
                }
                DType::F64 => {
                    let o = d.as_mut_slice::<f64>();
                    match &view {
                        SlotRead::Ext(RawData::F64(v)) => o.copy_from_slice(v),
                        SlotRead::Ext(RawData::F32(v)) => {
                            for (o, &x) in o.iter_mut().zip(v.iter()) {
                                *o = f64::from(x);
                            }
                        }
                        SlotRead::Comp(b) => match &**b {
                            Buf::F64(v) => o.copy_from_slice(v),
                            Buf::F32(v) => {
                                for (o, &x) in o.iter_mut().zip(v.iter()) {
                                    *o = f64::from(x);
                                }
                            }
                        },
                    }
                }
            }
        }));
    });
}

/// Registers a shape-preserving view (reshape/flatten/squeeze): replay
/// copies the source slot's bits into the destination. The eager op also
/// just copies, so this is bit-identical by construction.
pub(crate) fn fwd_record_view(out: &Tensor, src: &Tensor) {
    with_fwd_recorder(|rec| {
        let Some(s) = rec.resolve_read(src) else { return };
        let dst = rec.add_computed(out);
        let dt = out.dtype();
        rec.ops.push(Box::new(move |arena: &FwdArena<'_>| {
            let view = arena.read(s);
            let mut d = arena.write(dst);
            match dt {
                DType::F64 => d.as_mut_slice::<f64>().copy_from_slice(view.as_slice::<f64>()),
                DType::F32 => d.as_mut_slice::<f32>().copy_from_slice(view.as_slice::<f32>()),
            }
        }));
    });
}

/// Finishes the recording started by [`fwd_begin_record`] and compiles a
/// forward plan replaying `output`, or explains why the trace cannot be
/// replayed (→ sequential fallback). Always clears the recording state.
pub fn fwd_end_record(output: &Tensor) -> Result<ForwardPlan, String> {
    FWD_ACTIVE.with(|a| a.set(false));
    let rec = FWD_RECORDER.with(|r| r.borrow_mut().take());
    let Some(rec) = rec else {
        return Err("fwd_end_record without fwd_begin_record".to_string());
    };
    if let Some(reason) = rec.unsupported {
        return Err(reason);
    }
    let Some(&out_slot) = rec.slot_of.get(&output.id()) else {
        return Err(format!(
            "forward output (shape {:?}) was produced by an op without a \
             forward-replay hook",
            output.shape()
        ));
    };
    if rec.specs[out_slot].kind != FwdSlotKind::Computed {
        return Err("forward output is not a computed value".to_string());
    }
    let num_bound = rec.bound.len();
    Ok(ForwardPlan {
        exec: Arc::new(FwdExec {
            slots: rec.specs,
            ops: rec.ops,
            output: out_slot,
            output_shape: output.shape().to_vec(),
            num_params: rec.num_params,
            num_bound,
        }),
        bound: rec.bound,
        generation: generation(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that toggle recording state on this thread (the
    /// test harness runs tests concurrently, but TLS isolates them; the
    /// lock guards the process-global generation assertions).
    fn with_plan_lock<R>(f: impl FnOnce() -> R) -> R {
        use std::sync::Mutex;
        static LOCK: Mutex<()> = Mutex::new(());
        let _g = LOCK.lock().unwrap_or_else(|p| p.into_inner());
        f()
    }

    #[test]
    fn replay_recomputes_wired_ops_in_place() {
        with_plan_lock(|| {
            let x = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).requires_grad(true);
            begin_record();
            let loss = x.mul(&x).sum();
            let plan = end_record(&loss).expect("mul/sum are plannable");
            loss.backward();
            assert_eq!(x.grad().unwrap(), vec![2.0, 4.0, 6.0]);

            // Mutate the input out of band (the supported "new batch into
            // the same tensor" idiom) and replay: values and gradients
            // must match a fresh dynamic evaluation.
            x.set_data(vec![4.0, 5.0, 6.0]);
            plan.replay();
            assert_eq!(plan.loss().item(), 16.0 + 25.0 + 36.0);
            x.zero_grad();
            plan.backward();
            assert_eq!(x.grad().unwrap(), vec![8.0, 10.0, 12.0]);
        });
    }

    #[test]
    fn replay_is_bit_identical_to_dynamic() {
        with_plan_lock(|| {
            let x = Tensor::from_vec(vec![0.3, -1.7, 2.9], &[3]).requires_grad(true);
            let dynamic = || {
                let loss = x.tanh().mul(&x).add_scalar(0.25).sum();
                loss.backward();
                let g = x.grad().unwrap();
                x.zero_grad();
                (loss.item(), g)
            };
            let (want_loss, want_grad) = dynamic();

            begin_record();
            let loss = x.tanh().mul(&x).add_scalar(0.25).sum();
            let plan = end_record(&loss).unwrap();
            for _ in 0..3 {
                plan.replay();
                plan.backward();
                let g = x.grad().unwrap();
                x.zero_grad();
                assert_eq!(plan.loss().item().to_bits(), want_loss.to_bits());
                assert_eq!(g.len(), want_grad.len());
                for (a, b) in g.iter().zip(&want_grad) {
                    assert_eq!(a.to_bits(), b.to_bits());
                }
            }
        });
    }

    #[test]
    fn unplannable_op_reachable_from_loss_is_rejected() {
        with_plan_lock(|| {
            let x = Tensor::from_vec(vec![1.0, 2.0], &[1, 2]).requires_grad(true);
            let w = Tensor::from_vec(vec![3.0, 4.0], &[2, 1]).requires_grad(true);
            begin_record();
            // matmul records no replay closure, so the trace must refuse
            // to compile rather than replay stale values.
            let loss = x.matmul(&w).sum();
            let err = end_record(&loss).unwrap_err();
            assert!(err.contains("cannot replay"), "{err}");
        });
    }

    #[test]
    fn per_step_tensor_behind_nongrad_op_is_rejected() {
        with_plan_lock(|| {
            let x = Tensor::from_vec(vec![1.0, 2.0], &[2]).requires_grad(true);
            begin_record();
            // `from_vec` inside the recording models a per-step value the
            // plan cannot refresh (a dropout mask, external noise). The
            // multiply below it carries no gradient, so the graph drops
            // the parent link — only the read check can catch it.
            let mask = Tensor::from_vec(vec![1.0, 0.0], &[2]);
            let gated = mask.mul(&mask);
            let loss = x.mul(&gated).sum();
            let err = end_record(&loss).unwrap_err();
            assert!(err.contains("cannot replay"), "{err}");
        });
    }

    #[test]
    fn constants_are_frozen_not_rejected() {
        with_plan_lock(|| {
            let x = Tensor::from_vec(vec![1.0, 2.0], &[2]).requires_grad(true);
            begin_record();
            let scale = Tensor::full(&[2], 0.5);
            let loss = x.mul(&scale).sum();
            let plan = end_record(&loss).expect("consts are baked, not rejected");
            plan.replay();
            assert_eq!(plan.loss().item(), 1.5);
        });
    }

    #[test]
    fn mark_unsupported_poisons_the_recording() {
        with_plan_lock(|| {
            let x = Tensor::from_vec(vec![1.0], &[1]).requires_grad(true);
            begin_record();
            let loss = x.mul(&x).sum();
            mark_unsupported("unregistered rng draw");
            let err = end_record(&loss).unwrap_err();
            assert_eq!(err, "unregistered rng draw");
        });
    }

    #[test]
    fn invalidate_all_bumps_generation() {
        with_plan_lock(|| {
            let x = Tensor::from_vec(vec![2.0], &[1]).requires_grad(true);
            begin_record();
            let loss = x.mul(&x).sum();
            let plan = end_record(&loss).unwrap();
            assert_eq!(plan.generation(), generation());
            invalidate_all();
            assert_ne!(plan.generation(), generation());
        });
    }

    #[test]
    fn begin_record_replaces_a_stale_recorder() {
        with_plan_lock(|| {
            let x = Tensor::from_vec(vec![1.0], &[1]).requires_grad(true);
            // A "panicked" step leaves recording active with junk state.
            begin_record();
            mark_unsupported("leftover");
            assert!(is_recording());
            // The retry must start clean.
            begin_record();
            let loss = x.mul(&x).sum();
            let plan = end_record(&loss).expect("stale recorder must not leak");
            assert!(!is_recording());
            plan.replay();
            assert_eq!(plan.loss().item(), 1.0);
        });
    }

    // -- forward-only plans ------------------------------------------------

    use crate::ops::Activation;

    /// Records `tanh(linear(x, w, b))` with `w`/`b` as per-sample params.
    fn record_mlp_fwd(x: &Tensor, w: &Tensor, b: &Tensor) -> ForwardPlan {
        fwd_begin_record();
        fwd_bind_input(x);
        fwd_bind_param(w, 0);
        fwd_bind_param(b, 1);
        let y = x.linear(w, Some(b), Activation::Tanh);
        fwd_end_record(&y).expect("linear is fwd-replayable")
    }

    #[test]
    fn fwd_plan_replays_bitwise_from_worker_threads() {
        with_plan_lock(|| {
            let x = Tensor::from_vec(vec![0.3, -1.2, 0.7, 2.0, -0.1, 0.4], &[2, 3]);
            let w0 = Tensor::from_vec(vec![0.5; 12], &[4, 3]);
            let b0 = Tensor::from_vec(vec![0.1; 4], &[4]);
            let plan = record_mlp_fwd(&x, &w0, &b0);
            assert_eq!(plan.exec().num_params(), 2);

            // Per-sample weights, eager references computed on the main
            // thread.
            let samples: Vec<(Tensor, Tensor)> = (0..6)
                .map(|s| {
                    let scale = 0.25 * (s as f64 + 1.0);
                    (
                        Tensor::from_vec(vec![scale; 12], &[4, 3]),
                        Tensor::from_vec(vec![-scale; 4], &[4]),
                    )
                })
                .collect();
            let want: Vec<Vec<f64>> = samples
                .iter()
                .map(|(w, b)| x.linear(w, Some(b), Activation::Tanh).to_vec())
                .collect();

            let exec = plan.exec();
            let input = x.raw_data();
            let bound = plan.snapshot_bound();
            let params: Vec<Vec<RawData>> = samples
                .iter()
                .map(|(w, b)| vec![w.raw_data(), b.raw_data()])
                .collect();
            let mut got: Vec<Option<RawData>> = vec![None; samples.len()];
            tyxe_par::parallel_for_chunks(&mut got, 1, |s, slot| {
                slot[0] = Some(exec.run(&input, &params[s], &bound));
            });
            for (s, (g, w)) in got.iter().zip(&want).enumerate() {
                let RawData::F64(g) = g.as_ref().unwrap() else {
                    panic!("expected f64 output")
                };
                assert_eq!(g.len(), w.len());
                for (a, b) in g.iter().zip(w) {
                    assert_eq!(a.to_bits(), b.to_bits(), "sample {s}");
                }
            }
        });
    }

    #[test]
    fn fwd_plan_binds_non_param_tensors_per_call() {
        with_plan_lock(|| {
            let x = Tensor::from_vec(vec![1.0, 2.0], &[1, 2]);
            let w = Tensor::from_vec(vec![0.5, -0.5], &[1, 2]);
            // A pre-existing tensor the trace reads that is neither the
            // input nor a param: it must become a Bound slot.
            let shift = Tensor::from_vec(vec![10.0], &[1]);
            fwd_begin_record();
            fwd_bind_input(&x);
            fwd_bind_param(&w, 0);
            let y = x.linear(&w, Some(&shift), Activation::Identity);
            let plan = fwd_end_record(&y).unwrap();
            let bound = plan.snapshot_bound();
            assert_eq!(bound.len(), 1, "shift must be a bound slot");
            let out = plan.exec().run(&x.raw_data(), &[w.raw_data()], &bound);
            let RawData::F64(v) = out else { panic!("f64") };
            assert_eq!(v, vec![10.0 + 0.5 - 1.0]);

            // An updated bound tensor is picked up by the next snapshot
            // without re-recording.
            shift.set_data(vec![20.0]);
            let bound = plan.snapshot_bound();
            let out = plan.exec().run(&x.raw_data(), &[w.raw_data()], &bound);
            let RawData::F64(v) = out else { panic!("f64") };
            assert_eq!(v, vec![20.0 + 0.5 - 1.0]);
        });
    }

    #[test]
    fn fwd_plan_poisons_on_unhooked_final_op() {
        with_plan_lock(|| {
            let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
            let w = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2]);
            fwd_begin_record();
            fwd_bind_input(&x);
            fwd_bind_param(&w, 0);
            // matmul has no forward-replay hook, so an output produced by
            // it cannot compile.
            let y = x.matmul(&w);
            assert!(fwd_end_record(&y).is_err());
            assert!(!fwd_is_recording(), "end_record must clear state");
        });
    }

    #[test]
    fn fwd_plan_poisons_on_unhooked_intermediate_op() {
        with_plan_lock(|| {
            let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
            let w = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2]);
            fwd_begin_record();
            fwd_bind_input(&x);
            fwd_bind_param(&w, 0);
            // The hooked tanh reads the unhooked matmul's output: the
            // read of a mid-recording unknown node must poison.
            let y = x.matmul(&w).tanh();
            assert!(fwd_end_record(&y).is_err());
        });
    }

    #[test]
    fn fwd_plan_replays_cast_and_reshape() {
        with_plan_lock(|| {
            let x = Tensor::from_vec(vec![0.1, 0.2, 0.3, 0.4], &[2, 2]);
            let w = Tensor::from_vec(vec![0.5, -0.25], &[1, 2]);
            fwd_begin_record();
            fwd_bind_input(&x);
            fwd_bind_param(&w, 0);
            let y = x
                .cast(DType::F32)
                .linear(&w.cast(DType::F32), None, Activation::Sigmoid)
                .reshape(&[2]);
            let plan = fwd_end_record(&y).expect("cast/linear/reshape are hooked");
            // w.cast(F32) happened inside the recording reading the bound
            // param; x.cast likewise reads the input slot.
            let out = plan.exec().run(&x.raw_data(), &[w.raw_data()], &plan.snapshot_bound());
            let RawData::F32(v) = out else { panic!("expected f32 output") };
            let want = y.to_vec();
            for (a, b) in v.iter().zip(&want) {
                assert_eq!(f64::from(*a).to_bits(), b.to_bits());
            }
        });
    }
}
