//! Finite-difference gradient checking, used throughout the test suites of
//! the higher-level crates.
//!
//! Checks run in the dtype of the probe point: an `f32` input is
//! perturbed, evaluated and differentiated in `f32` storage, so the
//! numeric gradient sees exactly the arithmetic the backward pass
//! implements. Use [`recommended_tolerances`] to pick a step size and
//! tolerance matched to the dtype's precision.

use crate::element::DType;
use crate::tensor::Tensor;

/// The central-difference step and relative tolerance appropriate for
/// a storage dtype. The difference `f(x+ε) - f(x-ε)` cancels roughly
/// half the mantissa, so `f32` (24 bits) needs a far coarser step and
/// tolerance than `f64` (53 bits).
pub fn recommended_tolerances(dt: DType) -> (f64, f64) {
    match dt {
        DType::F64 => (1e-5, 1e-6),
        DType::F32 => (1e-2, 2e-2),
    }
}

/// Builds a tensor with `x0`'s shape and dtype from f64 coordinates
/// (rounding into `f32` storage when `x0` is `f32`).
fn tensor_like(x0: &Tensor, data: Vec<f64>) -> Tensor {
    match x0.dtype() {
        DType::F64 => Tensor::from_vec(data, x0.shape()),
        DType::F32 => {
            Tensor::from_vec_f32(data.into_iter().map(|v| v as f32).collect(), x0.shape())
        }
    }
}

/// Result of a gradient check: the largest absolute and relative deviation
/// between analytic and numeric gradients.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GradCheckReport {
    /// Largest absolute difference across all checked coordinates.
    pub max_abs_err: f64,
    /// Largest relative difference (normalized by `max(|a|, |n|, 1e-8)`).
    pub max_rel_err: f64,
}

impl GradCheckReport {
    /// Whether the check passed at the given relative tolerance.
    pub fn passes(&self, rel_tol: f64) -> bool {
        self.max_rel_err <= rel_tol || self.max_abs_err <= rel_tol
    }
}

/// Compares the analytic gradient of `f` at `x0` against central finite
/// differences.
///
/// `f` must map a single input tensor to a scalar tensor. All coordinates of
/// `x0` are perturbed.
///
/// # Panics
///
/// Panics if `f` does not return a scalar.
pub fn check_gradient(f: impl Fn(&Tensor) -> Tensor, x0: &Tensor, eps: f64) -> GradCheckReport {
    let x = tensor_like(x0, x0.to_vec()).requires_grad(true);
    let y = f(&x);
    assert_eq!(y.numel(), 1, "check_gradient: f must return a scalar");
    y.backward();
    let analytic = x.grad().unwrap_or_else(|| vec![0.0; x.numel()]);

    let base = x0.to_vec();
    let mut max_abs: f64 = 0.0;
    let mut max_rel: f64 = 0.0;
    for i in 0..base.len() {
        let mut plus = base.clone();
        plus[i] += eps;
        let mut minus = base.clone();
        minus[i] -= eps;
        let yp = f(&tensor_like(x0, plus)).item();
        let ym = f(&tensor_like(x0, minus)).item();
        let numeric = (yp - ym) / (2.0 * eps);
        let abs = (numeric - analytic[i]).abs();
        let rel = abs / numeric.abs().max(analytic[i].abs()).max(1e-8);
        max_abs = max_abs.max(abs);
        max_rel = max_rel.max(rel);
    }
    GradCheckReport {
        max_abs_err: max_abs,
        max_rel_err: max_rel,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tyxe_rand::SeedableRng;

    #[test]
    fn passes_for_correct_gradient() {
        let mut rng = tyxe_rand::rngs::StdRng::seed_from_u64(1);
        let x0 = Tensor::randn(&[6], &mut rng);
        let report = check_gradient(|x| x.tanh().square().sum(), &x0, 1e-5);
        assert!(report.passes(1e-6), "{report:?}");
    }

    #[test]
    fn catches_wrong_gradient() {
        // detach() deliberately breaks the gradient of one path.
        let x0 = Tensor::from_vec(vec![0.5, -0.3], &[2]);
        let report = check_gradient(|x| x.detach().mul(x).sum(), &x0, 1e-5);
        assert!(!report.passes(1e-6), "{report:?}");
    }

    #[test]
    fn f32_check_runs_in_f32_with_dtype_tolerances() {
        // Exercises the fast f32 tanh/exp forward recipes against their
        // analytic backward, in f32 storage end to end.
        let mut rng = tyxe_rand::rngs::StdRng::seed_from_u64(3);
        let x0 = Tensor::randn(&[6], &mut rng).cast(DType::F32).detach();
        assert_eq!(x0.dtype(), DType::F32);
        let (eps, tol) = recommended_tolerances(DType::F32);
        let report = check_gradient(|x| x.tanh().sum(), &x0, eps);
        assert!(report.passes(tol), "tanh: {report:?}");
        let report = check_gradient(|x| x.mul_scalar(0.25).exp().sum(), &x0, eps);
        assert!(report.passes(tol), "exp: {report:?}");
        // And the matmul path across the dtype-generic GEMM.
        let m0 = Tensor::randn(&[3, 3], &mut rng).cast(DType::F32).detach();
        let w = Tensor::randn(&[3, 2], &mut rng).cast(DType::F32).detach();
        let report = check_gradient(|x| x.matmul(&w).tanh().sum(), &m0, eps);
        assert!(report.passes(tol), "matmul: {report:?}");
    }

    #[test]
    fn matmul_chain_gradient() {
        let mut rng = tyxe_rand::rngs::StdRng::seed_from_u64(2);
        let x0 = Tensor::randn(&[3, 3], &mut rng);
        let w = Tensor::randn(&[3, 2], &mut rng);
        let report = check_gradient(|x| x.matmul(&w).relu().sum(), &x0, 1e-5);
        assert!(report.passes(1e-6), "{report:?}");
    }
}
