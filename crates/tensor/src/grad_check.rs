//! Finite-difference gradient checking, used throughout the test suites of
//! the higher-level crates.

use crate::tensor::Tensor;

/// Result of a gradient check: the largest absolute and relative deviation
/// between analytic and numeric gradients.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GradCheckReport {
    /// Largest absolute difference across all checked coordinates.
    pub max_abs_err: f64,
    /// Largest relative difference (normalized by `max(|a|, |n|, 1e-8)`).
    pub max_rel_err: f64,
}

impl GradCheckReport {
    /// Whether the check passed at the given relative tolerance.
    pub fn passes(&self, rel_tol: f64) -> bool {
        self.max_rel_err <= rel_tol || self.max_abs_err <= rel_tol
    }
}

/// Compares the analytic gradient of `f` at `x0` against central finite
/// differences.
///
/// `f` must map a single input tensor to a scalar tensor. All coordinates of
/// `x0` are perturbed.
///
/// # Panics
///
/// Panics if `f` does not return a scalar.
pub fn check_gradient(f: impl Fn(&Tensor) -> Tensor, x0: &Tensor, eps: f64) -> GradCheckReport {
    let x = Tensor::from_vec(x0.to_vec(), x0.shape()).requires_grad(true);
    let y = f(&x);
    assert_eq!(y.numel(), 1, "check_gradient: f must return a scalar");
    y.backward();
    let analytic = x.grad().unwrap_or_else(|| vec![0.0; x.numel()]);

    let base = x0.to_vec();
    let mut max_abs: f64 = 0.0;
    let mut max_rel: f64 = 0.0;
    for i in 0..base.len() {
        let mut plus = base.clone();
        plus[i] += eps;
        let mut minus = base.clone();
        minus[i] -= eps;
        let yp = f(&Tensor::from_vec(plus, x0.shape())).item();
        let ym = f(&Tensor::from_vec(minus, x0.shape())).item();
        let numeric = (yp - ym) / (2.0 * eps);
        let abs = (numeric - analytic[i]).abs();
        let rel = abs / numeric.abs().max(analytic[i].abs()).max(1e-8);
        max_abs = max_abs.max(abs);
        max_rel = max_rel.max(rel);
    }
    GradCheckReport {
        max_abs_err: max_abs,
        max_rel_err: max_rel,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tyxe_rand::SeedableRng;

    #[test]
    fn passes_for_correct_gradient() {
        let mut rng = tyxe_rand::rngs::StdRng::seed_from_u64(1);
        let x0 = Tensor::randn(&[6], &mut rng);
        let report = check_gradient(|x| x.tanh().square().sum(), &x0, 1e-5);
        assert!(report.passes(1e-6), "{report:?}");
    }

    #[test]
    fn catches_wrong_gradient() {
        // detach() deliberately breaks the gradient of one path.
        let x0 = Tensor::from_vec(vec![0.5, -0.3], &[2]);
        let report = check_gradient(|x| x.detach().mul(x).sum(), &x0, 1e-5);
        assert!(!report.passes(1e-6), "{report:?}");
    }

    #[test]
    fn matmul_chain_gradient() {
        let mut rng = tyxe_rand::rngs::StdRng::seed_from_u64(2);
        let x0 = Tensor::randn(&[3, 3], &mut rng);
        let w = Tensor::randn(&[3, 2], &mut rng);
        let report = check_gradient(|x| x.matmul(&w).relu().sum(), &x0, 1e-5);
        assert!(report.passes(1e-6), "{report:?}");
    }
}
