//! Buffer-pool stress tests from outside the crate: interleaved buffer
//! sizes, cross-step reuse of recycled buffers, and bitwise parity
//! between pool-on and pool-off execution (the `TYXE_POOL=0` kill-switch
//! contract). The pool's uninit-reuse fast path hands out buffers still
//! holding stale values, so any op that reads an output element it never
//! wrote shows up here as a pool-on/pool-off divergence.
//!
//! `tyxe_tensor::pool::set_enabled` is process-global, so the tests that
//! toggle it serialize on a local mutex (the harness runs tests in this
//! binary concurrently).

use std::sync::{Mutex, MutexGuard, OnceLock};

use tyxe_rand::rngs::StdRng;
use tyxe_rand::SeedableRng;
use tyxe_tensor::{pool, Tensor};

fn pool_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// A training-step-shaped workload mixing many buffer sizes: matmuls
/// (overwrite-mode GEMM), elementwise maps, broadcasts, reductions,
/// conv2d (im2col scratch), slicing/concat and a backward pass. Returns
/// the bit patterns of every forward value and every gradient it
/// produces, so callers can compare runs exactly.
fn mixed_workload(seed: u64) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut bits: Vec<u64> = Vec::new();

    fn collect(bits: &mut Vec<u64>, v: Vec<f64>) {
        bits.extend(v.iter().map(|x| x.to_bits()));
    }

    // Dense chain over interleaved shapes — sizes deliberately share
    // pool buckets (e.g. 96*64 and 64*80 both land in the 8192 bucket).
    let x = Tensor::randn(&[96, 64], &mut rng).requires_grad(true);
    let w1 = Tensor::randn(&[64, 80], &mut rng).requires_grad(true);
    let b1 = Tensor::randn(&[80], &mut rng).requires_grad(true);
    let h = x.matmul(&w1).add(&b1).tanh();
    let w2 = Tensor::randn(&[80, 48], &mut rng).requires_grad(true);
    let y = h.matmul(&w2).relu();
    let loss = y.square().mean_axis(1, false).sum();
    loss.backward();
    collect(&mut bits, y.to_vec());
    collect(&mut bits, x.grad().expect("x grad"));
    collect(&mut bits, w1.grad().expect("w1 grad"));
    collect(&mut bits, b1.grad().expect("b1 grad"));
    collect(&mut bits, w2.grad().expect("w2 grad"));

    // Conv path: im2col/col2im scratch plus pooling scatter.
    let img = Tensor::randn(&[2, 3, 12, 12], &mut rng).requires_grad(true);
    let kw = Tensor::randn(&[4, 3, 3, 3], &mut rng).requires_grad(true);
    let kb = Tensor::randn(&[4], &mut rng).requires_grad(true);
    let c = img.conv2d(&kw, Some(&kb), 1, 1).max_pool2d(2, 2);
    c.sum().backward();
    collect(&mut bits, c.to_vec());
    collect(&mut bits, img.grad().expect("img grad"));
    collect(&mut bits, kw.grad().expect("kw grad"));
    collect(&mut bits, kb.grad().expect("kb grad"));

    // Shape ops: cat/slice/index_select backward scatters must read as
    // zero everywhere the forward didn't touch.
    let a = Tensor::randn(&[5, 7], &mut rng).requires_grad(true);
    let b = Tensor::randn(&[3, 7], &mut rng).requires_grad(true);
    let catd = Tensor::cat(&[a.clone(), b.clone()], 0);
    let sliced = catd.slice(0, 2, 6).index_select(1, &[0, 3, 3, 6]);
    sliced.square().sum().backward();
    collect(&mut bits, sliced.to_vec());
    collect(&mut bits, a.grad().expect("a grad"));
    collect(&mut bits, b.grad().expect("b grad"));

    bits
}

/// Interleaved sizes + cross-step reuse: with the pool on, repeated runs
/// recycle each other's buffers (step 2 onward runs almost entirely on
/// stale uninit-reuse buffers) and must stay bit-identical to the first.
#[test]
fn repeated_workloads_reuse_buffers_bitwise_stable() {
    let _guard = pool_lock();
    let prev = pool::enabled();
    pool::set_enabled(true);
    let first = mixed_workload(11);
    for _ in 0..4 {
        assert_eq!(first, mixed_workload(11), "recycled buffers leaked state");
    }
    pool::set_enabled(prev);
}

/// `TYXE_POOL=0` parity: the same workload with recycling disabled must
/// produce the same bits as with it enabled — including when the enabled
/// run starts from free-lists already warmed by a different-shaped
/// workload (worst case for stale contents).
#[test]
fn pool_on_off_parity_is_bitwise() {
    let _guard = pool_lock();
    let prev = pool::enabled();

    pool::set_enabled(false);
    let reference = mixed_workload(23);

    pool::set_enabled(true);
    // Warm the free-lists with a different seed (different values in the
    // recycled buffers) before the measured run.
    let _ = mixed_workload(99);
    let pooled = mixed_workload(23);
    assert_eq!(reference, pooled, "pool-on run diverged from pool-off run");

    pool::set_enabled(prev);
}

/// Retention is bounded and reclaimable: after many runs the per-thread
/// free-lists hold a bounded buffer population, and `trim_thread` drops
/// this thread's share to zero.
#[test]
fn retention_plateaus_and_trim_releases() {
    let _guard = pool_lock();
    let prev = pool::enabled();
    pool::set_enabled(true);

    for _ in 0..3 {
        let _ = mixed_workload(5);
    }
    let (count_mid, elems_mid) = pool::thread_stats();
    assert!(count_mid > 0, "pool retained nothing on this thread");
    for _ in 0..10 {
        let _ = mixed_workload(5);
    }
    // Buffer count may still creep as small buckets fill toward their
    // caps, but retained elements (≈ bytes) must plateau.
    let (count_after, elems_after) = pool::thread_stats();
    assert!(
        count_after <= count_mid * 2 + 32 && elems_after <= elems_mid * 2,
        "retention grew: {count_mid}/{elems_mid} -> {count_after}/{elems_after}"
    );

    pool::trim_thread();
    let (count_trimmed, elems_trimmed) = pool::thread_stats();
    assert_eq!((count_trimmed, elems_trimmed), (0, 0), "trim left buffers behind");

    pool::set_enabled(prev);
}
