//! Bitwise-identity properties of the blocked/parallel kernels.
//!
//! The determinism contract (see `tyxe_tensor`'s crate docs and
//! `ops::gemm_kernels`) promises that the cache-blocked, SIMD-dispatched,
//! thread-parallel kernels produce results bit-identical to the retained
//! naive references, for any shape and any thread count. These property
//! tests pin that down over random shapes — including the degenerate
//! `k = 0`, `1×n` and `n×1` cases — and compare raw bit patterns, never
//! tolerances.

use std::sync::Mutex;

use tyxe_rand::rngs::StdRng;
use tyxe_rand::{prop_check, Rng, SeedableRng};
use tyxe_tensor::ops::gemm_kernels as gk;
use tyxe_tensor::Tensor;

/// Serialises tests that flip the global thread count.
static THREAD_LOCK: Mutex<()> = Mutex::new(());

fn rand_vec(rng: &mut StdRng, len: usize) -> Vec<f64> {
    (0..len).map(|_| rng.gen_range(-2.0..2.0f64)).collect()
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// A dimension that is sometimes degenerate (1) but usually moderate.
fn dim(g: &mut tyxe_rand::prop::Gen) -> usize {
    if g.usize_in(0, 6) == 0 {
        1
    } else {
        g.usize_in(1, 48)
    }
}

#[test]
fn blocked_gemm_variants_match_reference_bitwise() {
    prop_check!(48, |g| {
        let (m, n) = (dim(g), dim(g));
        // k additionally covers the empty-product case.
        let k = match g.usize_in(0, 8) {
            0 => 0,
            1 => 1,
            _ => g.usize_in(1, 48),
        };
        let mut rng = StdRng::seed_from_u64(g.u64());
        let a_mk = rand_vec(&mut rng, m * k);
        let a_km = rand_vec(&mut rng, k * m);
        let b_kn = rand_vec(&mut rng, k * n);
        let b_nk = rand_vec(&mut rng, n * k);
        // Random initial C exercises the accumulate-into semantics.
        let c0 = rand_vec(&mut rng, m * n);

        type Kernel = (&'static str, fn(&[f64], &[f64], &mut [f64], usize, usize, usize));
        let pairs: [(Kernel, Kernel, &[f64], &[f64]); 3] = [
            (("gemm_ref", gk::gemm_ref), ("gemm_blocked", gk::gemm_blocked), &a_mk, &b_kn),
            (("gemm_at_ref", gk::gemm_at_ref), ("gemm_at_blocked", gk::gemm_at_blocked), &a_km, &b_kn),
            (("gemm_bt_ref", gk::gemm_bt_ref), ("gemm_bt_blocked", gk::gemm_bt_blocked), &a_mk, &b_nk),
        ];
        for ((rname, rker), (bname, bker), a, b) in pairs {
            let mut c_ref = c0.clone();
            let mut c_blk = c0.clone();
            rker(a, b, &mut c_ref, m, k, n);
            bker(a, b, &mut c_blk, m, k, n);
            assert_eq!(
                bits(&c_ref),
                bits(&c_blk),
                "{bname} != {rname} for m={m} k={k} n={n} (seed {:#x})",
                g.seed()
            );
        }
    });
}

#[test]
fn dispatching_gemm_matches_reference_across_the_size_cutoff() {
    // Shapes straddling BLOCK_MIN_MADDS: the dispatcher must be invisible.
    prop_check!(24, |g| {
        let m = g.usize_in(1, 96);
        let k = g.usize_in(1, 96);
        let n = g.usize_in(1, 96);
        let mut rng = StdRng::seed_from_u64(g.u64());
        let a = rand_vec(&mut rng, m * k);
        let b = rand_vec(&mut rng, k * n);
        let c0 = rand_vec(&mut rng, m * n);
        let mut c_ref = c0.clone();
        let mut c_disp = c0;
        gk::gemm_ref(&a, &b, &mut c_ref, m, k, n);
        gk::gemm(&a, &b, &mut c_disp, m, k, n);
        assert_eq!(bits(&c_ref), bits(&c_disp), "m={m} k={k} n={n}");
    });
}

/// Direct (nested-loop) convolution reproducing the exact accumulation
/// order of the im2col + GEMM formulation: for each output element, the
/// reduction runs over (channel, ky, kx) ascending — including the
/// padding's `w * 0.0` terms — using the machine's `madd` recipe, with
/// the bias added last.
#[allow(clippy::too_many_arguments)]
fn conv2d_direct(
    x: &[f64],
    w: &[f64],
    b: Option<&[f64]>,
    (n, cin, h, wd): (usize, usize, usize, usize),
    (cout, kh, kw): (usize, usize, usize),
    stride: usize,
    pad: usize,
) -> Vec<f64> {
    let ho = (h + 2 * pad - kh) / stride + 1;
    let wo = (wd + 2 * pad - kw) / stride + 1;
    let mut out = vec![0.0; n * cout * ho * wo];
    for s in 0..n {
        for co in 0..cout {
            for oy in 0..ho {
                for ox in 0..wo {
                    let mut acc = 0.0;
                    for ch in 0..cin {
                        for ky in 0..kh {
                            for kx in 0..kw {
                                let iy = (oy * stride + ky) as isize - pad as isize;
                                let ix = (ox * stride + kx) as isize - pad as isize;
                                let v = if iy >= 0 && (iy as usize) < h && ix >= 0 && (ix as usize) < wd {
                                    x[((s * cin + ch) * h + iy as usize) * wd + ix as usize]
                                } else {
                                    0.0
                                };
                                let wv = w[((co * cin + ch) * kh + ky) * kw + kx];
                                acc = gk::madd_runtime(acc, wv, v);
                            }
                        }
                    }
                    if let Some(b) = b {
                        acc += b[co];
                    }
                    out[((s * cout + co) * ho + oy) * wo + ox] = acc;
                }
            }
        }
    }
    out
}

#[test]
fn conv2d_forward_matches_direct_convolution_bitwise() {
    prop_check!(32, |g| {
        let n = g.usize_in(1, 3);
        let cin = g.usize_in(1, 4);
        let cout = g.usize_in(1, 4);
        let h = g.usize_in(1, 8);
        let w = g.usize_in(1, 8);
        let pad = g.usize_in(0, 2);
        let stride = g.usize_in(1, 3);
        let kh = g.usize_in(1, h + 2 * pad + 1);
        let kw = g.usize_in(1, w + 2 * pad + 1);
        let with_bias = g.bool();
        let mut rng = StdRng::seed_from_u64(g.u64());
        let xv = rand_vec(&mut rng, n * cin * h * w);
        let wv = rand_vec(&mut rng, cout * cin * kh * kw);
        let bv = rand_vec(&mut rng, cout);

        let x = Tensor::from_vec(xv.clone(), &[n, cin, h, w]);
        let wt = Tensor::from_vec(wv.clone(), &[cout, cin, kh, kw]);
        let bt = Tensor::from_vec(bv.clone(), &[cout]);
        let y = x.conv2d(&wt, if with_bias { Some(&bt) } else { None }, stride, pad);
        let direct = conv2d_direct(
            &xv,
            &wv,
            if with_bias { Some(&bv) } else { None },
            (n, cin, h, w),
            (cout, kh, kw),
            stride,
            pad,
        );
        assert_eq!(
            bits(&y.to_vec()),
            bits(&direct),
            "n={n} cin={cin} cout={cout} h={h} w={w} k=({kh},{kw}) stride={stride} pad={pad}"
        );
    });
}

/// Runs one conv + matmul forward/backward pass large enough to cross
/// both the blocked-GEMM and elementwise parallel thresholds, returning
/// every result surface as raw bits.
fn conv_matmul_pass(seed: u64) -> Vec<Vec<u64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let x = Tensor::randn(&[4, 8, 16, 16], &mut rng).requires_grad(true);
    let w = Tensor::randn(&[16, 8, 3, 3], &mut rng).requires_grad(true);
    let b = Tensor::randn(&[16], &mut rng).requires_grad(true);
    let y = x.conv2d(&w, Some(&b), 1, 1);
    let a = Tensor::randn(&[64, 256], &mut rng).requires_grad(true);
    let loss = y.reshape(&[64, 256]).matmul(&a.t()).tanh().sum();
    loss.backward();
    vec![
        bits(&y.to_vec()),
        bits(&[loss.item()]),
        bits(&x.grad().unwrap()),
        bits(&w.grad().unwrap()),
        bits(&b.grad().unwrap()),
        bits(&a.grad().unwrap()),
    ]
}

#[test]
fn conv_and_matmul_training_pass_is_bit_identical_across_thread_counts() {
    let _g = THREAD_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let prev = tyxe_par::num_threads();
    tyxe_par::set_num_threads(1);
    let seq = conv_matmul_pass(3);
    tyxe_par::set_num_threads(4);
    let par = conv_matmul_pass(3);
    tyxe_par::set_num_threads(prev);
    assert_eq!(seq, par, "thread count changed some result bitwise");
}

// ---- f32 instances of the same contract (DESIGN.md §12: the
// determinism promise is stated per dtype) ----

fn rand_vec_f32(rng: &mut StdRng, len: usize) -> Vec<f32> {
    (0..len).map(|_| rng.gen_range(-2.0..2.0f32)).collect()
}

fn bits32(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

#[test]
fn f32_blocked_gemm_variants_match_reference_bitwise() {
    prop_check!(32, |g| {
        let (m, n) = (dim(g), dim(g));
        let k = match g.usize_in(0, 8) {
            0 => 0,
            1 => 1,
            _ => g.usize_in(1, 48),
        };
        let mut rng = StdRng::seed_from_u64(g.u64());
        let a_mk = rand_vec_f32(&mut rng, m * k);
        let a_km = rand_vec_f32(&mut rng, k * m);
        let b_kn = rand_vec_f32(&mut rng, k * n);
        let b_nk = rand_vec_f32(&mut rng, n * k);
        let c0 = rand_vec_f32(&mut rng, m * n);

        type Kernel32 = (&'static str, fn(&[f32], &[f32], &mut [f32], usize, usize, usize));
        let pairs: [(Kernel32, Kernel32, &[f32], &[f32]); 3] = [
            (("gemm_ref", gk::gemm_ref::<f32>), ("gemm_blocked", gk::gemm_blocked::<f32>), &a_mk, &b_kn),
            (("gemm_at_ref", gk::gemm_at_ref::<f32>), ("gemm_at_blocked", gk::gemm_at_blocked::<f32>), &a_km, &b_kn),
            (("gemm_bt_ref", gk::gemm_bt_ref::<f32>), ("gemm_bt_blocked", gk::gemm_bt_blocked::<f32>), &a_mk, &b_nk),
        ];
        for ((rname, rker), (bname, bker), a, b) in pairs {
            let mut c_ref = c0.clone();
            let mut c_blk = c0.clone();
            rker(a, b, &mut c_ref, m, k, n);
            bker(a, b, &mut c_blk, m, k, n);
            assert_eq!(
                bits32(&c_ref),
                bits32(&c_blk),
                "f32 {bname} != {rname} for m={m} k={k} n={n} (seed {:#x})",
                g.seed()
            );
        }
    });
}

/// The f32 conv + matmul + tanh training pass across thread counts.
/// `to_vec`/`grad` widen f32 exactly (injective), so comparing the
/// widened f64 bits is equivalent to comparing the storage bits.
fn conv_matmul_pass_f32(seed: u64) -> Vec<Vec<u64>> {
    use tyxe_tensor::DType;
    let mut rng = StdRng::seed_from_u64(seed);
    let x = Tensor::randn(&[4, 8, 16, 16], &mut rng).cast(DType::F32).detach().requires_grad(true);
    let w = Tensor::randn(&[16, 8, 3, 3], &mut rng).cast(DType::F32).detach().requires_grad(true);
    let b = Tensor::randn(&[16], &mut rng).cast(DType::F32).detach().requires_grad(true);
    let y = x.conv2d(&w, Some(&b), 1, 1);
    let a = Tensor::randn(&[64, 256], &mut rng).cast(DType::F32).detach().requires_grad(true);
    let loss = y.reshape(&[64, 256]).matmul(&a.t()).tanh().sum();
    loss.backward();
    vec![
        bits(&y.to_vec()),
        bits(&[loss.item()]),
        bits(&x.grad().unwrap()),
        bits(&w.grad().unwrap()),
        bits(&b.grad().unwrap()),
        bits(&a.grad().unwrap()),
    ]
}

#[test]
fn f32_conv_and_matmul_training_pass_is_bit_identical_across_thread_counts() {
    let _g = THREAD_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let prev = tyxe_par::num_threads();
    tyxe_par::set_num_threads(1);
    let seq = conv_matmul_pass_f32(7);
    tyxe_par::set_num_threads(4);
    let par = conv_matmul_pass_f32(7);
    tyxe_par::set_num_threads(prev);
    assert_eq!(seq, par, "thread count changed some f32 result bitwise");
}
