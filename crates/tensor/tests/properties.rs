//! Property-based tests of the tensor/autodiff invariants, driven by the
//! in-tree `prop_check!` loop.

use tyxe_rand::rngs::StdRng;
use tyxe_rand::{prop_check, SeedableRng};
use tyxe_tensor::{check_gradient, Tensor};

/// Draws a small random-shape, random-content matrix plus the generator
/// used to build companions of the same shape.
fn small_matrix(g: &mut tyxe_rand::prop::Gen) -> (Tensor, StdRng) {
    let r = g.usize_in(1, 4);
    let c = g.usize_in(1, 4);
    let mut rng = StdRng::seed_from_u64(g.u64());
    let a = Tensor::randn(&[r, c], &mut rng);
    (a, rng)
}

#[test]
fn add_is_commutative_and_associative() {
    prop_check!(32, |g| {
        let (a, mut rng) = small_matrix(g);
        let b = Tensor::randn(a.shape(), &mut rng);
        let c = Tensor::randn(a.shape(), &mut rng);
        let ab = a.add(&b).to_vec();
        let ba = b.add(&a).to_vec();
        assert_eq!(ab, ba);
        let l = a.add(&b).add(&c).to_vec();
        let r = a.add(&b.add(&c)).to_vec();
        for (x, y) in l.iter().zip(&r) {
            assert!((x - y).abs() < 1e-12);
        }
    });
}

#[test]
fn mul_distributes_over_add() {
    prop_check!(32, |g| {
        let (a, mut rng) = small_matrix(g);
        let b = Tensor::randn(a.shape(), &mut rng);
        let c = Tensor::randn(a.shape(), &mut rng);
        let l = a.mul(&b.add(&c)).to_vec();
        let r = a.mul(&b).add(&a.mul(&c)).to_vec();
        for (x, y) in l.iter().zip(&r) {
            assert!((x - y).abs() < 1e-10);
        }
    });
}

#[test]
fn matmul_is_associative() {
    prop_check!(32, |g| {
        let mut rng = StdRng::seed_from_u64(g.u64());
        let (m, k) = (g.usize_in(1, 4), g.usize_in(1, 4));
        let (n, p) = (g.usize_in(1, 4), g.usize_in(1, 4));
        let a = Tensor::randn(&[m, k], &mut rng);
        let b = Tensor::randn(&[k, n], &mut rng);
        let c = Tensor::randn(&[n, p], &mut rng);
        let l = a.matmul(&b).matmul(&c).to_vec();
        let r = a.matmul(&b.matmul(&c)).to_vec();
        for (x, y) in l.iter().zip(&r) {
            assert!((x - y).abs() < 1e-9);
        }
    });
}

#[test]
fn transpose_is_involutive_and_reverses_matmul() {
    prop_check!(32, |g| {
        let mut rng = StdRng::seed_from_u64(g.u64());
        let (m, n) = (g.usize_in(1, 5), g.usize_in(1, 5));
        let a = Tensor::randn(&[m, n], &mut rng);
        assert_eq!(a.t().t().to_vec(), a.to_vec());
        let b = Tensor::randn(&[n, m], &mut rng);
        let l = a.matmul(&b).t().to_vec();
        let r = b.t().matmul(&a.t()).to_vec();
        for (x, y) in l.iter().zip(&r) {
            assert!((x - y).abs() < 1e-10);
        }
    });
}

#[test]
fn sum_axis_totals_match_global_sum() {
    prop_check!(32, |g| {
        let mut rng = StdRng::seed_from_u64(g.u64());
        let (r, c) = (g.usize_in(1, 5), g.usize_in(1, 5));
        let a = Tensor::randn(&[r, c], &mut rng);
        let by_rows = a.sum_axis(0, false).sum().item();
        let by_cols = a.sum_axis(1, false).sum().item();
        let total = a.sum().item();
        assert!((by_rows - total).abs() < 1e-10);
        assert!((by_cols - total).abs() < 1e-10);
    });
}

#[test]
fn reshape_preserves_data_and_gradients() {
    prop_check!(32, |g| {
        let mut rng = StdRng::seed_from_u64(g.u64());
        let (r, c) = (g.usize_in(1, 5), g.usize_in(1, 5));
        let x0 = Tensor::randn(&[r, c], &mut rng);
        let report = check_gradient(|x| x.reshape(&[c * r]).square().sum(), &x0, 1e-6);
        assert!(report.passes(1e-6), "{report:?}");
        assert_eq!(x0.reshape(&[c * r]).to_vec(), x0.to_vec());
    });
}

#[test]
fn chained_ops_gradient_check() {
    prop_check!(32, |g| {
        let mut rng = StdRng::seed_from_u64(g.u64());
        let x0 = Tensor::randn(&[3, 2], &mut rng).mul_scalar(0.5);
        let w = Tensor::randn(&[2, 4], &mut rng);
        let report = check_gradient(
            |x| x.matmul(&w).sigmoid().sum_axis(1, false).ln().sum(),
            &x0,
            1e-6,
        );
        assert!(report.passes(1e-5), "{report:?}");
    });
}

#[test]
fn cat_then_slice_is_identity() {
    prop_check!(32, |g| {
        let mut rng = StdRng::seed_from_u64(g.u64());
        let (n1, n2, c) = (g.usize_in(1, 4), g.usize_in(1, 4), g.usize_in(1, 4));
        let a = Tensor::randn(&[n1, c], &mut rng);
        let b = Tensor::randn(&[n2, c], &mut rng);
        let cat = Tensor::cat(&[a.clone(), b.clone()], 0);
        assert_eq!(cat.slice(0, 0, n1).to_vec(), a.to_vec());
        assert_eq!(cat.slice(0, n1, n1 + n2).to_vec(), b.to_vec());
    });
}

#[test]
fn softmax_is_shift_invariant() {
    prop_check!(32, |g| {
        let mut rng = StdRng::seed_from_u64(g.u64());
        let shift = g.f64_in(-100.0, 100.0);
        let x = Tensor::randn(&[2, 5], &mut rng);
        let a = x.softmax(1).to_vec();
        let b = x.add_scalar(shift).softmax(1).to_vec();
        for (p, q) in a.iter().zip(&b) {
            assert!((p - q).abs() < 1e-9);
        }
    });
}

#[test]
fn conv_is_linear_in_input() {
    prop_check!(32, |g| {
        let mut rng = StdRng::seed_from_u64(g.u64());
        let x1 = Tensor::randn(&[1, 2, 5, 5], &mut rng);
        let x2 = Tensor::randn(&[1, 2, 5, 5], &mut rng);
        let w = Tensor::randn(&[3, 2, 3, 3], &mut rng);
        let sum_then_conv = x1.add(&x2).conv2d(&w, None, 1, 1).to_vec();
        let conv_then_sum = x1
            .conv2d(&w, None, 1, 1)
            .add(&x2.conv2d(&w, None, 1, 1))
            .to_vec();
        for (a, b) in sum_then_conv.iter().zip(&conv_then_sum) {
            assert!((a - b).abs() < 1e-9);
        }
    });
}

#[test]
fn inverse_of_inverse_is_identity() {
    prop_check!(32, |g| {
        let mut rng = StdRng::seed_from_u64(g.u64());
        let n = g.usize_in(1, 5);
        let a = Tensor::randn(&[n, n], &mut rng);
        let spd = a.matmul(&a.t()).add(&Tensor::eye(n).mul_scalar(n as f64));
        let back = spd.inverse().inverse().to_vec();
        for (x, y) in back.iter().zip(spd.to_vec()) {
            assert!((x - y).abs() < 1e-6, "{x} vs {y}");
        }
    });
}

#[test]
fn logdet_is_additive_under_product() {
    prop_check!(32, |g| {
        let mut rng = StdRng::seed_from_u64(g.u64());
        let n = g.usize_in(1, 4);
        let mk = |rng: &mut StdRng| {
            let a = Tensor::randn(&[n, n], rng);
            a.matmul(&a.t()).add(&Tensor::eye(n).mul_scalar(n as f64))
        };
        let a = mk(&mut rng);
        let b = mk(&mut rng);
        let lhs = a.matmul(&b).logdet().item();
        let rhs = a.logdet().item() + b.logdet().item();
        assert!((lhs - rhs).abs() < 1e-8, "{lhs} vs {rhs}");
    });
}
