//! Property-based tests of the tensor/autodiff invariants.

use proptest::prelude::*;
use rand::SeedableRng;
use tyxe_tensor::{check_gradient, Tensor};

fn tensor_strategy(max_elems: usize) -> impl Strategy<Value = Tensor> {
    (1usize..4, 1usize..4, any::<u64>()).prop_map(move |(r, c, seed)| {
        let _ = max_elems;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        Tensor::randn(&[r, c], &mut rng)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn add_is_commutative_and_associative(a in tensor_strategy(16), seed in any::<u64>()) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let b = Tensor::randn(a.shape(), &mut rng);
        let c = Tensor::randn(a.shape(), &mut rng);
        let ab = a.add(&b).to_vec();
        let ba = b.add(&a).to_vec();
        prop_assert_eq!(ab, ba);
        let l = a.add(&b).add(&c).to_vec();
        let r = a.add(&b.add(&c)).to_vec();
        for (x, y) in l.iter().zip(&r) {
            prop_assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn mul_distributes_over_add(a in tensor_strategy(16), seed in any::<u64>()) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let b = Tensor::randn(a.shape(), &mut rng);
        let c = Tensor::randn(a.shape(), &mut rng);
        let l = a.mul(&b.add(&c)).to_vec();
        let r = a.mul(&b).add(&a.mul(&c)).to_vec();
        for (x, y) in l.iter().zip(&r) {
            prop_assert!((x - y).abs() < 1e-10);
        }
    }

    #[test]
    fn matmul_is_associative(seed in any::<u64>(), m in 1usize..4, k in 1usize..4, n in 1usize..4, p in 1usize..4) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a = Tensor::randn(&[m, k], &mut rng);
        let b = Tensor::randn(&[k, n], &mut rng);
        let c = Tensor::randn(&[n, p], &mut rng);
        let l = a.matmul(&b).matmul(&c).to_vec();
        let r = a.matmul(&b.matmul(&c)).to_vec();
        for (x, y) in l.iter().zip(&r) {
            prop_assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn transpose_is_involutive_and_reverses_matmul(seed in any::<u64>(), m in 1usize..5, n in 1usize..5) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a = Tensor::randn(&[m, n], &mut rng);
        prop_assert_eq!(a.t().t().to_vec(), a.to_vec());
        let b = Tensor::randn(&[n, m], &mut rng);
        let l = a.matmul(&b).t().to_vec();
        let r = b.t().matmul(&a.t()).to_vec();
        for (x, y) in l.iter().zip(&r) {
            prop_assert!((x - y).abs() < 1e-10);
        }
    }

    #[test]
    fn sum_axis_totals_match_global_sum(seed in any::<u64>(), r in 1usize..5, c in 1usize..5) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a = Tensor::randn(&[r, c], &mut rng);
        let by_rows = a.sum_axis(0, false).sum().item();
        let by_cols = a.sum_axis(1, false).sum().item();
        let total = a.sum().item();
        prop_assert!((by_rows - total).abs() < 1e-10);
        prop_assert!((by_cols - total).abs() < 1e-10);
    }

    #[test]
    fn reshape_preserves_data_and_gradients(seed in any::<u64>(), r in 1usize..5, c in 1usize..5) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let x0 = Tensor::randn(&[r, c], &mut rng);
        let report = check_gradient(|x| x.reshape(&[c * r]).square().sum(), &x0, 1e-6);
        prop_assert!(report.passes(1e-6), "{report:?}");
        prop_assert_eq!(x0.reshape(&[c * r]).to_vec(), x0.to_vec());
    }

    #[test]
    fn chained_ops_gradient_check(seed in any::<u64>()) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let x0 = Tensor::randn(&[3, 2], &mut rng).mul_scalar(0.5);
        let w = Tensor::randn(&[2, 4], &mut rng);
        let report = check_gradient(
            |x| x.matmul(&w).sigmoid().sum_axis(1, false).ln().sum(),
            &x0,
            1e-6,
        );
        prop_assert!(report.passes(1e-5), "{report:?}");
    }

    #[test]
    fn cat_then_slice_is_identity(seed in any::<u64>(), n1 in 1usize..4, n2 in 1usize..4, c in 1usize..4) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a = Tensor::randn(&[n1, c], &mut rng);
        let b = Tensor::randn(&[n2, c], &mut rng);
        let cat = Tensor::cat(&[a.clone(), b.clone()], 0);
        prop_assert_eq!(cat.slice(0, 0, n1).to_vec(), a.to_vec());
        prop_assert_eq!(cat.slice(0, n1, n1 + n2).to_vec(), b.to_vec());
    }

    #[test]
    fn softmax_is_shift_invariant(seed in any::<u64>(), shift in -100.0f64..100.0) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let x = Tensor::randn(&[2, 5], &mut rng);
        let a = x.softmax(1).to_vec();
        let b = x.add_scalar(shift).softmax(1).to_vec();
        for (p, q) in a.iter().zip(&b) {
            prop_assert!((p - q).abs() < 1e-9);
        }
    }

    #[test]
    fn conv_is_linear_in_input(seed in any::<u64>()) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let x1 = Tensor::randn(&[1, 2, 5, 5], &mut rng);
        let x2 = Tensor::randn(&[1, 2, 5, 5], &mut rng);
        let w = Tensor::randn(&[3, 2, 3, 3], &mut rng);
        let sum_then_conv = x1.add(&x2).conv2d(&w, None, 1, 1).to_vec();
        let conv_then_sum = x1
            .conv2d(&w, None, 1, 1)
            .add(&x2.conv2d(&w, None, 1, 1))
            .to_vec();
        for (a, b) in sum_then_conv.iter().zip(&conv_then_sum) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn inverse_of_inverse_is_identity(seed in any::<u64>(), n in 1usize..5) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a = Tensor::randn(&[n, n], &mut rng);
        let spd = a.matmul(&a.t()).add(&Tensor::eye(n).mul_scalar(n as f64));
        let back = spd.inverse().inverse().to_vec();
        for (x, y) in back.iter().zip(spd.to_vec()) {
            prop_assert!((x - y).abs() < 1e-6, "{x} vs {y}");
        }
    }

    #[test]
    fn logdet_is_additive_under_product(seed in any::<u64>(), n in 1usize..4) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mk = |rng: &mut rand::rngs::StdRng| {
            let a = Tensor::randn(&[n, n], rng);
            a.matmul(&a.t()).add(&Tensor::eye(n).mul_scalar(n as f64))
        };
        let a = mk(&mut rng);
        let b = mk(&mut rng);
        let lhs = a.matmul(&b).logdet().item();
        let rhs = a.logdet().item() + b.logdet().item();
        prop_assert!((lhs - rhs).abs() < 1e-8, "{lhs} vs {rhs}");
    }
}
