//! Disabled-probe overhead: with observability off, the instrumented
//! public GEMM entry point must stay within noise of the bare blocked
//! kernel it wraps (the PR 2 baseline path, still exported unprobed as
//! `gemm_blocked`). Own process so `set_enabled(false)` is stable.
//!
//! Bounds are deliberately generous — this is a smoke test that the
//! probe is one predicted branch + one relaxed load, not a benchmark;
//! `scripts/bench.sh` against `results/BENCH_TENSOR.json` remains the
//! precise regression check.

use std::time::Instant;

use tyxe_tensor::ops::gemm_kernels::{gemm, gemm_blocked};

fn fill(n: usize, seed: u64) -> Vec<f64> {
    // Cheap deterministic values; the kernels don't care what they multiply.
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    (0..n)
        .map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        })
        .collect()
}

#[test]
fn disabled_gate_costs_nanoseconds() {
    tyxe_obs::set_enabled(false);
    let t0 = Instant::now();
    let mut on = 0u32;
    for _ in 0..1_000_000 {
        on += tyxe_obs::enabled() as u32;
    }
    let elapsed = t0.elapsed();
    assert_eq!(on, 0);
    // ~1 ns/check on any remotely modern CPU; 100 ns/check is the
    // "something is catastrophically wrong" line (a mutex, an env read).
    assert!(
        elapsed.as_nanos() < 100_000_000,
        "1e6 disabled-probe checks took {elapsed:?} — gate is not a cheap atomic load"
    );
}

#[test]
fn disabled_probe_gemm_within_noise_of_bare_kernel() {
    tyxe_obs::set_enabled(false);
    const M: usize = 128;
    let a = fill(M * M, 1);
    let b = fill(M * M, 2);
    let mut c = vec![0.0; M * M];

    // Same blocked path on both sides (128^3 is above the cutoff); the
    // only difference is the disabled probe in `gemm`. Interleave the
    // measurements so CPU frequency drift hits both equally.
    let reps = 9;
    let mut probed = Vec::with_capacity(reps);
    let mut bare = Vec::with_capacity(reps);
    // Warm up pool + ISA dispatch once.
    gemm(&a, &b, &mut c, M, M, M);
    gemm_blocked(&a, &b, &mut c, M, M, M);
    for _ in 0..reps {
        let t0 = Instant::now();
        gemm(&a, &b, &mut c, M, M, M);
        probed.push(t0.elapsed().as_nanos() as u64);
        let t1 = Instant::now();
        gemm_blocked(&a, &b, &mut c, M, M, M);
        bare.push(t1.elapsed().as_nanos() as u64);
    }
    probed.sort_unstable();
    bare.sort_unstable();
    let (pm, bm) = (probed[reps / 2], bare[reps / 2]);
    // Results must also be identical work: sanity that c stayed finite.
    assert!(c.iter().all(|v| v.is_finite()));
    // Generous 1.5x bound: a real per-call cost (locks, allocation,
    // formatting) would blow far past this; scheduler noise won't.
    assert!(
        pm <= bm.saturating_mul(3) / 2 + 50_000,
        "disabled-probe gemm median {pm} ns vs bare {bm} ns — probe overhead is measurable"
    );
}
