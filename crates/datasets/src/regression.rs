//! The Foong et al. (2019) "in-between uncertainty" regression dataset,
//! used by the paper's non-linear regression example (Figure 1).
//!
//! Inputs come from two clusters, `x1 ~ U[-1, -0.7]` and `x2 ~ U[0.5, 1]`,
//! and targets are `y ~ N(cos(4x + 0.8), 0.1^2)`. A well-calibrated BNN
//! shows inflated predictive variance in the gap between the clusters.

use tyxe_rand::Rng;
use tyxe_rand::SeedableRng;
use tyxe_tensor::Tensor;

/// A 1-D regression dataset with inputs of shape `[n, 1]` and targets of
/// shape `[n, 1]`.
#[derive(Debug, Clone)]
pub struct Regression1d {
    /// Inputs `[n, 1]`.
    pub x: Tensor,
    /// Targets `[n, 1]`.
    pub y: Tensor,
}

impl Regression1d {
    /// Number of examples.
    pub fn len(&self) -> usize {
        self.x.shape()[0]
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The noiseless target function `cos(4x + 0.8)`.
pub fn true_function(x: f64) -> f64 {
    (4.0 * x + 0.8).cos()
}

/// Generates the two-cluster dataset with `n_per_cluster` points per
/// cluster and observation noise `noise_sd` (0.1 in the paper).
pub fn foong_regression(n_per_cluster: usize, noise_sd: f64, seed: u64) -> Regression1d {
    let mut rng = tyxe_rand::rngs::StdRng::seed_from_u64(seed);
    let mut xs = Vec::with_capacity(2 * n_per_cluster);
    for _ in 0..n_per_cluster {
        xs.push(rng.gen_range(-1.0..-0.7));
    }
    for _ in 0..n_per_cluster {
        xs.push(rng.gen_range(0.5..1.0));
    }
    let noise = Tensor::randn(&[2 * n_per_cluster], &mut rng).mul_scalar(noise_sd);
    let ys: Vec<f64> = xs
        .iter()
        .zip(noise.to_vec())
        .map(|(&x, e)| true_function(x) + e)
        .collect();
    let n = xs.len();
    Regression1d {
        x: Tensor::from_vec(xs, &[n, 1]),
        y: Tensor::from_vec(ys, &[n, 1]),
    }
}

/// An evenly spaced evaluation grid `[n, 1]` (for plotting predictive
/// bands across the in-between region).
pub fn regression_grid(lo: f64, hi: f64, n: usize) -> Tensor {
    Tensor::linspace(lo, hi, n).reshape(&[n, 1])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clusters_lie_in_specified_ranges() {
        let data = foong_regression(50, 0.1, 0);
        let xs = data.x.to_vec();
        for &x in &xs[..50] {
            assert!((-1.0..-0.7).contains(&x), "first-cluster x {x}");
        }
        for &x in &xs[50..] {
            assert!((0.5..1.0).contains(&x), "second-cluster x {x}");
        }
        assert_eq!(data.len(), 100);
        assert!(!data.is_empty());
    }

    #[test]
    fn targets_follow_cosine_up_to_noise() {
        let data = foong_regression(200, 0.1, 1);
        let xs = data.x.to_vec();
        let ys = data.y.to_vec();
        let resid_var: f64 = xs
            .iter()
            .zip(&ys)
            .map(|(&x, &y)| (y - true_function(x)).powi(2))
            .sum::<f64>()
            / xs.len() as f64;
        assert!((resid_var - 0.01).abs() < 0.005, "residual variance {resid_var}");
    }

    #[test]
    fn deterministic_under_seed() {
        let a = foong_regression(10, 0.1, 7);
        let b = foong_regression(10, 0.1, 7);
        assert_eq!(a.x.to_vec(), b.x.to_vec());
        assert_eq!(a.y.to_vec(), b.y.to_vec());
    }

    #[test]
    fn grid_shape_and_range() {
        let g = regression_grid(-2.0, 2.0, 101);
        assert_eq!(g.shape(), &[101, 1]);
        assert_eq!(g.at(&[0, 0]), -2.0);
        assert_eq!(g.at(&[100, 0]), 2.0);
    }
}
