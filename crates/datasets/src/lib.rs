//! `tyxe-datasets`: synthetic stand-ins for the datasets used in the TyXe
//! paper's evaluation.
//!
//! Real CIFAR-10, SVHN and MNIST cannot be shipped offline, so this crate
//! generates synthetic datasets preserving the structure the experiments
//! depend on:
//!
//! * [`regression`] — the Foong et al. (2019) two-cluster 1-D regression
//!   problem used in the paper's §2 (Figure 1), generated exactly as
//!   specified.
//! * [`images`] — class-prototype image generators for the CIFAR-like
//!   in-distribution set and an SVHN-like out-of-distribution set
//!   (Table 1 / Figure 2), plus Split-task continual learning streams
//!   (Figure 4).

pub mod images;
pub mod regression;

pub use images::{ImageDataset, ImageGenerator, SplitTask};
pub use regression::{foong_regression, regression_grid, Regression1d};
