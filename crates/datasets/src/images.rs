//! Synthetic image classification datasets: class-prototype generators
//! standing in for CIFAR-10 (in-distribution), SVHN (out-of-distribution)
//! and MNIST/CIFAR Split tasks for continual learning.
//!
//! Each class is a smooth random "texture" prototype; samples are the
//! prototype under a random circular shift, optional horizontal flip,
//! per-sample contrast jitter and pixel noise. This preserves what the
//! paper's experiments actually exercise — learnable class structure,
//! within-class variation, and a distribution shift for the OOD set —
//! without shipping natural images.

use tyxe_rand::Rng;
use tyxe_rand::SeedableRng;
use tyxe_tensor::Tensor;

/// A labelled image dataset.
#[derive(Debug, Clone)]
pub struct ImageDataset {
    /// Images `[n, c, h, w]`, roughly zero-mean unit-scale.
    pub images: Tensor,
    /// Class labels `[n]` stored as `f64` indices.
    pub labels: Tensor,
    /// Number of classes the generator can emit.
    pub num_classes: usize,
}

impl ImageDataset {
    /// Number of examples.
    pub fn len(&self) -> usize {
        self.images.shape()[0]
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Flattens images to `[n, c*h*w]` (for MLP architectures).
    pub fn flattened(&self) -> Tensor {
        let n = self.len();
        self.images.reshape(&[n, self.images.numel() / n])
    }

    /// Splits into mini-batches of (at most) `batch_size`.
    pub fn batches(&self, batch_size: usize) -> Vec<(Tensor, Tensor)> {
        let n = self.len();
        let mut out = Vec::new();
        let mut start = 0;
        while start < n {
            let end = (start + batch_size).min(n);
            out.push((
                self.images.slice(0, start, end),
                self.labels.slice(0, start, end),
            ));
            start = end;
        }
        out
    }
}

/// Generates images from per-class smooth prototypes.
#[derive(Debug, Clone)]
pub struct ImageGenerator {
    prototypes: Vec<Vec<f64>>, // one [c*h*w] buffer per class
    channels: usize,
    height: usize,
    width: usize,
    noise_sd: f64,
    amplitude: f64,
    offset: f64,
    max_shift: usize,
    flip: bool,
}

fn smooth_prototype<R: Rng + ?Sized>(
    channels: usize,
    height: usize,
    width: usize,
    rng: &mut R,
) -> Vec<f64> {
    // A coarse 4x4 random grid per channel, bilinearly upsampled: smooth,
    // distinctive "textures".
    const G: usize = 4;
    let mut out = vec![0.0; channels * height * width];
    for ch in 0..channels {
        let coarse: Vec<f64> = (0..G * G).map(|_| rng.gen_range(-1.0..1.0)).collect();
        for y in 0..height {
            for x in 0..width {
                let fy = y as f64 / height as f64 * (G - 1) as f64;
                let fx = x as f64 / width as f64 * (G - 1) as f64;
                let (y0, x0) = (fy.floor() as usize, fx.floor() as usize);
                let (y1, x1) = ((y0 + 1).min(G - 1), (x0 + 1).min(G - 1));
                let (dy, dx) = (fy - y0 as f64, fx - x0 as f64);
                let v = coarse[y0 * G + x0] * (1.0 - dy) * (1.0 - dx)
                    + coarse[y0 * G + x1] * (1.0 - dy) * dx
                    + coarse[y1 * G + x0] * dy * (1.0 - dx)
                    + coarse[y1 * G + x1] * dy * dx;
                out[(ch * height + y) * width + x] = v;
            }
        }
    }
    out
}

impl ImageGenerator {
    /// A CIFAR-10-like generator: 10 classes of 3-channel images.
    pub fn cifar_like(height: usize, width: usize, seed: u64) -> ImageGenerator {
        ImageGenerator::new(10, 3, height, width, 0.35, 1.0, 0.0, 2, true, seed)
    }

    /// An SVHN-like **out-of-distribution** generator: a disjoint set of
    /// class prototypes (different seed space) with weaker class signal and
    /// heavier pixel noise at matched brightness. The trained classifier
    /// has never seen these textures (as SVHN digits are unseen by a
    /// CIFAR-10 model), so its class evidence is diluted — the property the
    /// paper's OOD experiment measures.
    pub fn svhn_like(height: usize, width: usize, seed: u64) -> ImageGenerator {
        ImageGenerator::new(10, 3, height, width, 0.35, 1.0, 0.0, 1, false, seed ^ 0xdead_beef)
    }

    /// An MNIST-like generator: 10 classes of single-channel images.
    pub fn mnist_like(height: usize, width: usize, seed: u64) -> ImageGenerator {
        ImageGenerator::new(10, 1, height, width, 0.25, 1.0, 0.0, 2, false, seed)
    }

    /// Fully parameterized constructor.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        num_classes: usize,
        channels: usize,
        height: usize,
        width: usize,
        noise_sd: f64,
        amplitude: f64,
        offset: f64,
        max_shift: usize,
        flip: bool,
        seed: u64,
    ) -> ImageGenerator {
        let mut rng = tyxe_rand::rngs::StdRng::seed_from_u64(seed);
        let prototypes = (0..num_classes)
            .map(|_| smooth_prototype(channels, height, width, &mut rng))
            .collect();
        ImageGenerator {
            prototypes,
            channels,
            height,
            width,
            noise_sd,
            amplitude,
            offset,
            max_shift,
            flip,
        }
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.prototypes.len()
    }

    /// Image shape `[c, h, w]`.
    pub fn image_shape(&self) -> [usize; 3] {
        [self.channels, self.height, self.width]
    }

    fn render_sample<R: Rng + ?Sized>(&self, class: usize, rng: &mut R, out: &mut [f64]) {
        let (c, h, w) = (self.channels, self.height, self.width);
        let proto = &self.prototypes[class];
        let sy = rng.gen_range(0..=2 * self.max_shift) as isize - self.max_shift as isize;
        let sx = rng.gen_range(0..=2 * self.max_shift) as isize - self.max_shift as isize;
        let flip = self.flip && rng.gen_bool(0.5);
        let contrast = self.amplitude * rng.gen_range(0.85..1.15);
        for ch in 0..c {
            for y in 0..h {
                for x in 0..w {
                    let src_y = (y as isize + sy).rem_euclid(h as isize) as usize;
                    let mut src_x = (x as isize + sx).rem_euclid(w as isize) as usize;
                    if flip {
                        src_x = w - 1 - src_x;
                    }
                    let noise: f64 = {
                        // Box-Muller light: two uniforms, one normal.
                        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                        let u2: f64 = rng.gen();
                        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
                    };
                    out[(ch * h + y) * w + x] = contrast * proto[(ch * h + src_y) * w + src_x]
                        + self.offset
                        + self.noise_sd * noise;
                }
            }
        }
    }

    /// Samples `n` labelled images with labels drawn uniformly over
    /// `classes` (all classes when `classes` is empty).
    pub fn sample(&self, n: usize, classes: &[usize], seed: u64) -> ImageDataset {
        let mut rng = tyxe_rand::rngs::StdRng::seed_from_u64(seed);
        let all: Vec<usize> = if classes.is_empty() {
            (0..self.num_classes()).collect()
        } else {
            classes.to_vec()
        };
        let img_len = self.channels * self.height * self.width;
        let mut images = vec![0.0; n * img_len];
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            // Cycle classes for balance, then shuffle via random shift.
            let class = all[i % all.len()];
            self.render_sample(class, &mut rng, &mut images[i * img_len..(i + 1) * img_len]);
            labels.push(class as f64);
        }
        ImageDataset {
            images: Tensor::from_vec(images, &[n, self.channels, self.height, self.width]),
            labels: Tensor::from_vec(labels, &[n]),
            num_classes: self.num_classes(),
        }
    }

    /// Samples with labels **remapped** to `0..classes.len()` (for Split
    /// tasks, where each task is a fresh binary problem).
    pub fn sample_remapped(&self, n: usize, classes: &[usize], seed: u64) -> ImageDataset {
        let mut ds = self.sample(n, classes, seed);
        let remap: std::collections::HashMap<usize, f64> = classes
            .iter()
            .enumerate()
            .map(|(i, &c)| (c, i as f64))
            .collect();
        let labels: Vec<f64> = ds
            .labels
            .to_vec()
            .iter()
            .map(|&l| remap[&(l as usize)])
            .collect();
        ds.labels = Tensor::from_vec(labels, &[n]);
        ds.num_classes = classes.len();
        ds
    }
}

/// One task of a Split-MNIST/-CIFAR continual learning stream: a binary
/// classification problem over one pair of classes.
#[derive(Debug, Clone)]
pub struct SplitTask {
    /// Training set (labels in `{0, 1}`).
    pub train: ImageDataset,
    /// Test set (labels in `{0, 1}`).
    pub test: ImageDataset,
    /// The original class pair.
    pub classes: [usize; 2],
}

/// Builds the five binary Split tasks `(0,1), (2,3), ..., (8,9)` from a
/// 10-class generator (Zenke et al., 2017 protocol).
pub fn split_tasks(
    gen: &ImageGenerator,
    n_train: usize,
    n_test: usize,
    seed: u64,
) -> Vec<SplitTask> {
    assert_eq!(gen.num_classes(), 10, "split_tasks: generator must have 10 classes");
    (0..5)
        .map(|t| {
            let classes = [2 * t, 2 * t + 1];
            SplitTask {
                train: gen.sample_remapped(n_train, &classes, seed + 100 + t as u64),
                test: gen.sample_remapped(n_test, &classes, seed + 200 + t as u64),
                classes,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_and_label_range() {
        let gen = ImageGenerator::cifar_like(8, 8, 0);
        let ds = gen.sample(20, &[], 1);
        assert_eq!(ds.images.shape(), &[20, 3, 8, 8]);
        assert_eq!(ds.labels.shape(), &[20]);
        assert!(ds.labels.to_vec().iter().all(|&l| (0.0..10.0).contains(&l)));
        assert_eq!(ds.flattened().shape(), &[20, 192]);
    }

    #[test]
    fn batches_cover_dataset() {
        let gen = ImageGenerator::mnist_like(6, 6, 0);
        let ds = gen.sample(25, &[], 2);
        let batches = ds.batches(8);
        assert_eq!(batches.len(), 4);
        assert_eq!(batches[3].0.shape()[0], 1);
        let total: usize = batches.iter().map(|(x, _)| x.shape()[0]).sum();
        assert_eq!(total, 25);
    }

    #[test]
    fn same_class_images_are_more_similar_than_cross_class() {
        let gen = ImageGenerator::cifar_like(8, 8, 3);
        let dist = |u: &[f64], v: &[f64]| -> f64 {
            u.iter().zip(v).map(|(a, b)| (a - b) * (a - b)).sum()
        };
        // Same class with different augmentations is closer than
        // cross-class *on average*; any single pair can lose the
        // comparison to augmentation noise, so measure the mean margin
        // over several independent draws.
        let (mut same, mut cross) = (0.0, 0.0);
        let pairs = 10;
        for s in 0..pairs {
            let a1 = gen.sample_remapped(1, &[0], 10 + s).images.to_vec();
            let a2 = gen.sample_remapped(1, &[0], 110 + s).images.to_vec();
            let b = gen.sample_remapped(1, &[5], 210 + s).images.to_vec();
            same += dist(&a1, &a2);
            cross += dist(&a1, &b);
        }
        assert!(same < cross, "class structure missing: {same} vs {cross}");
    }

    #[test]
    fn ood_generator_has_shifted_statistics() {
        let id = ImageGenerator::cifar_like(8, 8, 0).sample(50, &[], 5);
        let ood = ImageGenerator::svhn_like(8, 8, 0).sample(50, &[], 5);
        // The OOD shift is pure novelty: same marginal statistics but
        // disjoint prototypes, so ID/OOD images decorrelate.
        let d_id = id.images.slice(0, 0, 1).to_vec();
        let d_ood = ood.images.slice(0, 0, 1).to_vec();
        let dot: f64 = d_id.iter().zip(&d_ood).map(|(a, b)| a * b).sum();
        let n_id: f64 = d_id.iter().map(|v| v * v).sum::<f64>().sqrt();
        let n_ood: f64 = d_ood.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!((dot / (n_id * n_ood)).abs() < 0.5, "OOD prototypes correlate with ID");
    }

    #[test]
    fn split_tasks_have_binary_labels_and_disjoint_classes() {
        let gen = ImageGenerator::mnist_like(6, 6, 0);
        let tasks = split_tasks(&gen, 16, 8, 0);
        assert_eq!(tasks.len(), 5);
        for (t, task) in tasks.iter().enumerate() {
            assert_eq!(task.classes, [2 * t, 2 * t + 1]);
            assert!(task.train.labels.to_vec().iter().all(|&l| l == 0.0 || l == 1.0));
            assert_eq!(task.test.len(), 8);
            assert_eq!(task.train.num_classes, 2);
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let gen = ImageGenerator::cifar_like(8, 8, 0);
        let a = gen.sample(5, &[], 9).images.to_vec();
        let b = gen.sample(5, &[], 9).images.to_vec();
        assert_eq!(a, b);
    }
}
