//! Zero-dependency binary serialization substrate for on-disk state
//! (checkpoints, state dicts).
//!
//! # Container format
//!
//! Every file produced through this module is a *container*:
//!
//! ```text
//! offset  size  field
//! 0       8     magic (per container type, e.g. b"TYXESD\x00\x00")
//! 8       4     format version, u32 LE
//! 12      8     payload length, u64 LE
//! 20      n     payload bytes
//! 20+n    4     CRC32 (IEEE) over bytes [8, 20+n), u32 LE
//! ```
//!
//! The checksum covers version, length and payload, so truncation, bit
//! rot and partially-written files are all detected at load time and
//! reported as typed [`LoadError`]s rather than garbage tensors. All
//! integers are little-endian; floats are IEEE-754 `f64` bit patterns,
//! so round-trips are bitwise exact (including NaN payloads, signed
//! zeros and subnormals).
//!
//! # Atomicity
//!
//! [`atomic_write`] writes to a temporary sibling file, syncs it, then
//! renames it over the destination. A crash mid-write leaves either the
//! old file or the new file, never a torn hybrid; a crash between write
//! and rename leaves a stray `*.tmp.<pid>` that is simply overwritten by
//! the next save.

use std::fmt;
use std::io::{Read, Write};
use std::path::Path;

/// Errors surfaced when loading serialized state from disk.
#[derive(Debug)]
pub enum LoadError {
    /// Underlying filesystem error (missing file, permissions, ...).
    Io(std::io::Error),
    /// The file does not start with the expected magic bytes.
    BadMagic,
    /// The container's format version is newer than this build understands.
    UnsupportedVersion(u32),
    /// The file ends before the declared payload/trailer.
    Truncated,
    /// The CRC32 trailer does not match the stored bytes.
    ChecksumMismatch {
        /// Checksum stored in the file.
        stored: u32,
        /// Checksum computed over the file's bytes.
        computed: u32,
    },
    /// The payload decodes to something structurally invalid.
    Malformed(&'static str),
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "i/o error: {e}"),
            LoadError::BadMagic => write!(f, "bad magic: not a tyxe state file"),
            LoadError::UnsupportedVersion(v) => write!(f, "unsupported format version {v}"),
            LoadError::Truncated => write!(f, "file truncated"),
            LoadError::ChecksumMismatch { stored, computed } => write!(
                f,
                "checksum mismatch: stored {stored:#010x}, computed {computed:#010x} (corrupt file)"
            ),
            LoadError::Malformed(what) => write!(f, "malformed payload: {what}"),
        }
    }
}

impl std::error::Error for LoadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LoadError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for LoadError {
    fn from(e: std::io::Error) -> LoadError {
        LoadError::Io(e)
    }
}

// ---------------------------------------------------------------------------
// CRC32 (IEEE 802.3 polynomial, reflected), in-tree
// ---------------------------------------------------------------------------

/// Builds the reflected-polynomial lookup table at compile time.
const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// CRC32 (IEEE) of `bytes` — the same polynomial as zlib/PNG/Ethernet,
/// so third-party tools can cross-check the trailer.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

// ---------------------------------------------------------------------------
// Byte-level writer/reader
// ---------------------------------------------------------------------------

/// Append-only little-endian byte sink for payload encoding.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Creates an empty writer.
    pub fn new() -> ByteWriter {
        ByteWriter::default()
    }

    /// Finishes and returns the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends a `u32` (LE).
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64` (LE).
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` bit pattern (LE) — bitwise exact.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_u64(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Appends a length-prefixed `f64` vector.
    pub fn put_f64_slice(&mut self, v: &[f64]) {
        self.put_u64(v.len() as u64);
        for &x in v {
            self.put_f64(x);
        }
    }

    /// Appends a length-prefixed raw byte string (nested payloads, e.g.
    /// the tyxe-dist wire protocol's per-message bodies).
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }
}

/// Sequential little-endian reader over a payload, with bounds checking.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Wraps a payload buffer.
    pub fn new(buf: &'a [u8]) -> ByteReader<'a> {
        ByteReader { buf, pos: 0 }
    }

    /// Whether every byte has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], LoadError> {
        let end = self.pos.checked_add(n).ok_or(LoadError::Truncated)?;
        if end > self.buf.len() {
            return Err(LoadError::Truncated);
        }
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    /// Reads a `u32` (LE).
    pub fn get_u32(&mut self) -> Result<u32, LoadError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a `u64` (LE).
    pub fn get_u64(&mut self) -> Result<u64, LoadError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads an `f64` bit pattern (LE).
    pub fn get_f64(&mut self) -> Result<f64, LoadError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String, LoadError> {
        let len = self.get_u64()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| LoadError::Malformed("non-UTF-8 string"))
    }

    /// Reads a length-prefixed raw byte string.
    pub fn get_bytes(&mut self) -> Result<Vec<u8>, LoadError> {
        let len = self.get_u64()? as usize;
        Ok(self.take(len)?.to_vec())
    }

    /// Reads a length-prefixed `f64` vector.
    pub fn get_f64_slice(&mut self) -> Result<Vec<f64>, LoadError> {
        let len = self.get_u64()? as usize;
        // Bound the allocation by the bytes actually present.
        if len.checked_mul(8).is_none_or(|b| self.pos + b > self.buf.len()) {
            return Err(LoadError::Truncated);
        }
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.get_f64()?);
        }
        Ok(out)
    }
}

// ---------------------------------------------------------------------------
// Container framing
// ---------------------------------------------------------------------------

const HEADER_LEN: usize = 8 + 4 + 8;

/// Frames `payload` into a checksummed container (see the module docs).
pub fn encode_container(magic: &[u8; 8], version: u32, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len() + 4);
    out.extend_from_slice(magic);
    out.extend_from_slice(&version.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    let crc = crc32(&out[8..]);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Validates a container's magic, version bound, framing and checksum,
/// returning the payload slice.
pub fn decode_container<'a>(
    bytes: &'a [u8],
    magic: &[u8; 8],
    max_version: u32,
) -> Result<(u32, &'a [u8]), LoadError> {
    if bytes.len() < 8 {
        return Err(LoadError::Truncated);
    }
    if &bytes[..8] != magic {
        return Err(LoadError::BadMagic);
    }
    if bytes.len() < HEADER_LEN + 4 {
        return Err(LoadError::Truncated);
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    let payload_len = u64::from_le_bytes(bytes[12..20].try_into().unwrap()) as usize;
    let expected_total = HEADER_LEN
        .checked_add(payload_len)
        .and_then(|n| n.checked_add(4))
        .ok_or(LoadError::Truncated)?;
    if bytes.len() < expected_total {
        return Err(LoadError::Truncated);
    }
    // Verify the checksum before trusting the version field: a corrupt
    // version byte should read as corruption, not "unsupported version".
    let stored = u32::from_le_bytes(
        bytes[HEADER_LEN + payload_len..expected_total].try_into().unwrap(),
    );
    let computed = crc32(&bytes[8..HEADER_LEN + payload_len]);
    if stored != computed {
        return Err(LoadError::ChecksumMismatch { stored, computed });
    }
    if bytes.len() > expected_total {
        return Err(LoadError::Malformed("trailing bytes after container"));
    }
    if version == 0 || version > max_version {
        return Err(LoadError::UnsupportedVersion(version));
    }
    Ok((version, &bytes[HEADER_LEN..HEADER_LEN + payload_len]))
}

/// Writes `bytes` to `path` atomically: temp sibling + fsync + rename.
/// Concurrent writers race at rename (last one wins, each file intact).
pub fn atomic_write(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = match path.file_name() {
        Some(name) => {
            let mut n = name.to_os_string();
            n.push(format!(".tmp.{}", std::process::id()));
            path.with_file_name(n)
        }
        None => {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "atomic_write: path has no file name",
            ))
        }
    };
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    match std::fs::rename(&tmp, path) {
        Ok(()) => Ok(()),
        Err(e) => {
            let _ = std::fs::remove_file(&tmp);
            Err(e)
        }
    }
}

/// Reads a whole file (convenience mirroring [`atomic_write`]).
pub fn read_file(path: &Path) -> std::io::Result<Vec<u8>> {
    let mut f = std::fs::File::open(path)?;
    let mut buf = Vec::new();
    f.read_to_end(&mut buf)?;
    Ok(buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    const MAGIC: &[u8; 8] = b"TYXETEST";

    #[test]
    fn crc32_matches_reference_vectors() {
        // Standard IEEE CRC32 check values (zlib-compatible).
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn container_roundtrip() {
        let mut w = ByteWriter::new();
        w.put_str("hello");
        w.put_f64_slice(&[1.5, -0.0, f64::NAN, f64::MIN_POSITIVE]);
        w.put_u64(42);
        let bytes = encode_container(MAGIC, 1, &w.into_bytes());
        let (version, payload) = decode_container(&bytes, MAGIC, 1).unwrap();
        assert_eq!(version, 1);
        let mut r = ByteReader::new(payload);
        assert_eq!(r.get_str().unwrap(), "hello");
        let v = r.get_f64_slice().unwrap();
        assert_eq!(v[0].to_bits(), 1.5f64.to_bits());
        assert_eq!(v[1].to_bits(), (-0.0f64).to_bits());
        assert!(v[2].is_nan());
        assert_eq!(v[3], f64::MIN_POSITIVE);
        assert_eq!(r.get_u64().unwrap(), 42);
        assert!(r.is_exhausted());
    }

    #[test]
    fn raw_bytes_roundtrip_and_truncation() {
        let mut w = ByteWriter::new();
        w.put_bytes(&[0xDE, 0xAD, 0xBE, 0xEF]);
        w.put_bytes(b"");
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_bytes().unwrap(), vec![0xDE, 0xAD, 0xBE, 0xEF]);
        assert_eq!(r.get_bytes().unwrap(), Vec::<u8>::new());
        assert!(r.is_exhausted());
        let mut short = ByteReader::new(&bytes[..bytes.len() - 9]);
        let _ = short.get_bytes();
        assert!(short.get_bytes().is_err());
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let mut w = ByteWriter::new();
        w.put_f64_slice(&[3.25, 7.0]);
        let bytes = encode_container(MAGIC, 1, &w.into_bytes());
        for i in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0x40;
            assert!(
                decode_container(&corrupt, MAGIC, 1).is_err(),
                "flip at byte {i} went undetected"
            );
        }
    }

    #[test]
    fn truncation_is_detected() {
        let bytes = encode_container(MAGIC, 1, &[1, 2, 3, 4]);
        for len in 0..bytes.len() {
            assert!(decode_container(&bytes[..len], MAGIC, 1).is_err(), "truncated to {len}");
        }
    }

    #[test]
    fn version_above_max_is_rejected() {
        let bytes = encode_container(MAGIC, 3, &[]);
        match decode_container(&bytes, MAGIC, 2) {
            Err(LoadError::UnsupportedVersion(3)) => {}
            other => panic!("expected UnsupportedVersion, got {other:?}"),
        }
    }

    #[test]
    fn wrong_magic_is_rejected() {
        let bytes = encode_container(MAGIC, 1, &[]);
        match decode_container(&bytes, b"TYXEELSE", 1) {
            Err(LoadError::BadMagic) => {}
            other => panic!("expected BadMagic, got {other:?}"),
        }
    }

    #[test]
    fn atomic_write_replaces_existing_file() {
        let dir = std::env::temp_dir().join(format!("tyxe-ser-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.bin");
        atomic_write(&path, b"first").unwrap();
        atomic_write(&path, b"second").unwrap();
        assert_eq!(read_file(&path).unwrap(), b"second");
        // No stray temp files left behind.
        let strays: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(strays.is_empty(), "{strays:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
