//! The `Module`/`Forward` traits: parameter discovery and computation.
//!
//! `Module` covers what the Bayesian machinery needs — walking named
//! parameters together with the kind of module that owns them (so priors can
//! hide e.g. all `BatchNorm2d` parameters). `Forward<I>` covers computation
//! and is generic over the input so graph networks (`(Graph, Tensor)`
//! inputs) and renderers fit the same abstraction.

use tyxe_tensor::ops::Activation;
use tyxe_tensor::Tensor;

use crate::param::Param;

/// Metadata about one discovered parameter.
#[derive(Debug, Clone)]
pub struct ParamInfo {
    /// Full dotted path, e.g. `"layers.0.weight"`.
    pub name: String,
    /// Kind of the owning module, e.g. `"Linear"`, `"BatchNorm2d"`.
    pub module_kind: &'static str,
    /// The parameter slot.
    pub param: Param,
}

impl ParamInfo {
    /// The final path component (e.g. `"weight"` or `"bias"`).
    pub fn attribute(&self) -> &str {
        self.name.rsplit('.').next().unwrap_or(&self.name)
    }
}

/// A neural network component with discoverable parameters.
pub trait Module {
    /// A short type name, e.g. `"Linear"`; used by priors to hide or expose
    /// whole module classes.
    fn kind(&self) -> &'static str;

    /// Walks this module's (and its children's) parameters, invoking `f`
    /// with hierarchical names rooted at `prefix`.
    fn visit_params(&self, prefix: &str, f: &mut dyn FnMut(ParamInfo));

    /// Switches training-time behaviour (batch norm statistics, dropout).
    /// Composites must forward to children. The default is a no-op.
    fn set_training(&self, _training: bool) {}

    /// Walks this module's non-parameter state ("buffers", e.g. BatchNorm
    /// running statistics). Composites must forward to children with an
    /// extended prefix. The default reports nothing.
    fn visit_buffers(
        &self,
        _prefix: &str,
        _f: &mut dyn FnMut(String, &std::cell::RefCell<Vec<f64>>),
    ) {
    }

    /// If this module is a stateless elementwise activation that the fused
    /// affine kernels support, returns its tag so [`crate::layers::Sequential`]
    /// can fold it into the preceding layer's forward pass. Results are
    /// bit-identical either way; this only drops a graph node.
    fn fusable_activation(&self) -> Option<Activation> {
        None
    }

    /// Forward pass with a fused trailing activation, for modules whose
    /// output feeds straight into `act` (currently `Linear` and `Conv2d`).
    /// `None` means the caller must use plain `forward` plus a separate
    /// activation layer.
    fn forward_act(&self, _input: &Tensor, _act: Activation) -> Option<Tensor> {
        None
    }

    /// Collects all parameters with their full names.
    fn named_parameters(&self) -> Vec<ParamInfo>
    where
        Self: Sized,
    {
        let mut out = Vec::new();
        self.visit_params("", &mut |info| out.push(info));
        out
    }

    /// Collects the trainable leaf tensors (for an optimizer).
    fn parameters(&self) -> Vec<Tensor>
    where
        Self: Sized,
    {
        self.named_parameters().into_iter().map(|i| i.param.leaf()).collect()
    }

    /// Total number of scalar parameters.
    fn num_parameters(&self) -> usize
    where
        Self: Sized,
    {
        let mut n = 0;
        self.visit_params("", &mut |info| n += info.param.numel());
        n
    }
}

/// Computation over an input type `I`.
pub trait Forward<I> {
    /// Output type of the forward pass.
    type Output;

    /// Runs the forward computation.
    fn forward(&self, input: &I) -> Self::Output;
}

/// Object-safe alias for the common tensor-to-tensor case, enabling
/// `Box<dyn TensorModule>` composition in [`crate::layers::Sequential`].
pub trait TensorModule: Module + Forward<Tensor, Output = Tensor> {
    /// Upcast helper (object-safe access to the `Module` API).
    fn as_module(&self) -> &dyn Module;
}

impl<T: Module + Forward<Tensor, Output = Tensor>> TensorModule for T {
    fn as_module(&self) -> &dyn Module {
        self
    }
}

/// Joins a prefix and a component with a dot (no leading dot at the root).
pub fn join_path(prefix: &str, name: &str) -> String {
    if prefix.is_empty() {
        name.to_string()
    } else {
        format!("{prefix}.{name}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Leaf {
        w: Param,
    }

    impl Module for Leaf {
        fn kind(&self) -> &'static str {
            "Leaf"
        }
        fn visit_params(&self, prefix: &str, f: &mut dyn FnMut(ParamInfo)) {
            f(ParamInfo {
                name: join_path(prefix, "w"),
                module_kind: self.kind(),
                param: self.w.clone(),
            });
        }
    }

    #[test]
    fn named_parameters_and_count() {
        let m = Leaf {
            w: Param::new(Tensor::zeros(&[2, 3])),
        };
        let params = m.named_parameters();
        assert_eq!(params.len(), 1);
        assert_eq!(params[0].name, "w");
        assert_eq!(params[0].attribute(), "w");
        assert_eq!(m.num_parameters(), 6);
    }

    #[test]
    fn join_path_root_and_nested() {
        assert_eq!(join_path("", "weight"), "weight");
        assert_eq!(join_path("net.0", "weight"), "net.0.weight");
    }
}
