//! 2-D convolution layer.

use tyxe_prob::poutine::effectful;
use tyxe_tensor::Tensor;

use crate::init::kaiming_uniform;
use crate::module::{join_path, Forward, Module, ParamInfo};
use crate::param::Param;

/// 2-D convolution over `[N, C, H, W]`, routed through the effectful conv
/// op so reparameterization handlers can intercept it.
#[derive(Debug, Clone)]
pub struct Conv2d {
    weight: Param,
    bias: Option<Param>,
    stride: usize,
    padding: usize,
}

impl Conv2d {
    /// Creates a convolution with square `kernel` and Pytorch-default
    /// initialization.
    pub fn new<R: tyxe_rand::Rng + ?Sized>(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        rng: &mut R,
    ) -> Conv2d {
        Conv2d::with_bias(in_channels, out_channels, kernel, stride, padding, true, rng)
    }

    /// Creates a convolution, optionally without bias (ResNet convs use
    /// `bias=false` because BatchNorm absorbs the shift).
    #[allow(clippy::too_many_arguments)]
    pub fn with_bias<R: tyxe_rand::Rng + ?Sized>(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        bias: bool,
        rng: &mut R,
    ) -> Conv2d {
        let weight = Param::new(kaiming_uniform(
            &[out_channels, in_channels, kernel, kernel],
            rng,
        ));
        let bias = bias.then(|| Param::new(kaiming_uniform(&[out_channels], rng)));
        Conv2d {
            weight,
            bias,
            stride,
            padding,
        }
    }

    /// Weight parameter slot (`[out, in, k, k]`).
    pub fn weight(&self) -> &Param {
        &self.weight
    }

    /// Bias parameter slot, if present.
    pub fn bias(&self) -> Option<&Param> {
        self.bias.as_ref()
    }
}

impl Module for Conv2d {
    fn kind(&self) -> &'static str {
        "Conv2d"
    }

    fn forward_act(&self, input: &Tensor, act: tyxe_tensor::ops::Activation) -> Option<Tensor> {
        let bias = self.bias.as_ref().map(Param::value);
        Some(effectful::conv2d_act(
            input,
            &self.weight.value(),
            bias.as_ref(),
            self.stride,
            self.padding,
            act,
        ))
    }

    fn visit_params(&self, prefix: &str, f: &mut dyn FnMut(ParamInfo)) {
        f(ParamInfo {
            name: join_path(prefix, "weight"),
            module_kind: self.kind(),
            param: self.weight.clone(),
        });
        if let Some(b) = &self.bias {
            f(ParamInfo {
                name: join_path(prefix, "bias"),
                module_kind: self.kind(),
                param: b.clone(),
            });
        }
    }
}

impl Forward<Tensor> for Conv2d {
    type Output = Tensor;

    fn forward(&self, input: &Tensor) -> Tensor {
        let bias = self.bias.as_ref().map(Param::value);
        effectful::conv2d(
            input,
            &self.weight.value(),
            bias.as_ref(),
            self.stride,
            self.padding,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tyxe_rand::SeedableRng;

    #[test]
    fn forward_shapes() {
        let mut rng = tyxe_rand::rngs::StdRng::seed_from_u64(0);
        let c = Conv2d::new(3, 8, 3, 1, 1, &mut rng);
        let x = Tensor::zeros(&[2, 3, 8, 8]);
        assert_eq!(c.forward(&x).shape(), &[2, 8, 8, 8]);

        let strided = Conv2d::new(3, 8, 3, 2, 1, &mut rng);
        assert_eq!(strided.forward(&x).shape(), &[2, 8, 4, 4]);
    }

    #[test]
    fn param_names_and_count() {
        let mut rng = tyxe_rand::rngs::StdRng::seed_from_u64(0);
        let c = Conv2d::with_bias(3, 8, 3, 1, 1, false, &mut rng);
        let params = c.named_parameters();
        assert_eq!(params.len(), 1);
        assert_eq!(params[0].module_kind, "Conv2d");
        assert_eq!(c.num_parameters(), 8 * 3 * 9);
    }

    #[test]
    fn grad_reaches_kernel() {
        let mut rng = tyxe_rand::rngs::StdRng::seed_from_u64(0);
        let c = Conv2d::new(1, 2, 3, 1, 0, &mut rng);
        let x = Tensor::ones(&[1, 1, 5, 5]);
        c.forward(&x).sum().backward();
        assert!(c.weight().leaf().grad().is_some());
    }
}
