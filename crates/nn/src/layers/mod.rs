//! Neural network layers.

mod activation;
mod conv;
mod dropout;
mod extra;
mod linear;
mod norm;
mod recurrent;
mod sequential;

pub use activation::{Flatten, GlobalAvgPool2d, MaxPool2d, Relu, Sigmoid, Softplus, Tanh};
pub use conv::Conv2d;
pub use dropout::Dropout;
pub use extra::{AvgPool2d, LayerNorm};
pub use linear::Linear;
pub use norm::BatchNorm2d;
pub use recurrent::{GruCell, Rnn, RnnCell};
pub use sequential::{mlp, Sequential};
