//! Dropout, including the fixed-mask variant the paper's Appendix D
//! discusses for Monte Carlo dropout visualization.

use std::cell::{Cell, RefCell};

use tyxe_tensor::Tensor;

use crate::module::{Forward, Module, ParamInfo};

/// Standard inverted dropout: during training each element is zeroed with
/// probability `p` and survivors are scaled by `1/(1-p)`.
///
/// [`Dropout::freeze_mask`] pins a single mask across forward passes — the
/// effect-handler-style control the paper suggests for visualizing MC
/// dropout with a shared weight sample per batch.
#[derive(Debug)]
pub struct Dropout {
    p: f64,
    training: Cell<bool>,
    frozen_mask: RefCell<Option<Tensor>>,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= p < 1`.
    pub fn new(p: f64) -> Dropout {
        assert!((0.0..1.0).contains(&p), "Dropout: p must be in [0, 1)");
        Dropout {
            p,
            training: Cell::new(true),
            frozen_mask: RefCell::new(None),
        }
    }

    fn sample_mask(&self, shape: &[usize]) -> Tensor {
        let keep = 1.0 - self.p;
        let u = tyxe_prob::rng::rand_uniform(shape, 0.0, 1.0);
        let data = u
            .data()
            .iter()
            .map(|&ui| if ui < keep { 1.0 / keep } else { 0.0 })
            .collect();
        Tensor::from_vec(data, shape)
    }

    /// Samples one mask for the given shape and reuses it for every
    /// subsequent forward pass until [`Dropout::unfreeze_mask`].
    pub fn freeze_mask(&self, shape: &[usize]) {
        *self.frozen_mask.borrow_mut() = Some(self.sample_mask(shape));
    }

    /// Returns to per-call mask sampling.
    pub fn unfreeze_mask(&self) {
        *self.frozen_mask.borrow_mut() = None;
    }

    /// Drop probability.
    pub fn p(&self) -> f64 {
        self.p
    }
}

impl Module for Dropout {
    fn kind(&self) -> &'static str {
        "Dropout"
    }
    fn visit_params(&self, _prefix: &str, _f: &mut dyn FnMut(ParamInfo)) {}
    fn set_training(&self, training: bool) {
        self.training.set(training);
    }
}

impl Forward<Tensor> for Dropout {
    type Output = Tensor;

    fn forward(&self, input: &Tensor) -> Tensor {
        if !self.training.get() || self.p == 0.0 {
            return input.clone();
        }
        if let Some(mask) = self.frozen_mask.borrow().as_ref() {
            return input.mul(mask);
        }
        // Route through the effect-handler stack so MC-dropout handlers
        // (e.g. `tyxe::poutine::fixed_dropout`) can rewrite the sampling.
        tyxe_prob::poutine::effectful::dropout(input, self.p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_mode_is_identity() {
        let d = Dropout::new(0.5);
        d.set_training(false);
        let x = Tensor::ones(&[10]);
        assert_eq!(d.forward(&x).to_vec(), vec![1.0; 10]);
    }

    #[test]
    fn training_preserves_expectation() {
        tyxe_prob::rng::set_seed(0);
        let d = Dropout::new(0.3);
        let x = Tensor::ones(&[20000]);
        let m = d.forward(&x).mean().item();
        assert!((m - 1.0).abs() < 0.03, "mean {m}");
    }

    #[test]
    fn frozen_mask_is_reused() {
        tyxe_prob::rng::set_seed(1);
        let d = Dropout::new(0.5);
        d.freeze_mask(&[100]);
        let x = Tensor::ones(&[100]);
        let a = d.forward(&x).to_vec();
        let b = d.forward(&x).to_vec();
        assert_eq!(a, b);
        d.unfreeze_mask();
        let c = d.forward(&x).to_vec();
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic]
    fn rejects_p_one() {
        let _ = Dropout::new(1.0);
    }
}
