//! Recurrent layers (Elman RNN and GRU).
//!
//! The paper contrasts TyXe with BLiTZ, which ships bespoke variational
//! counterparts of "linear, convolutional and some recurrent layers" —
//! TyXe instead works with *any* architecture. These cells are ordinary
//! modules whose matrix products route through the effectful linear op, so
//! wrapping a recurrent network in `VariationalBnn` (including local
//! reparameterization/flipout) requires no recurrent-specific code.

use tyxe_tensor::Tensor;

use crate::layers::Linear;
use crate::module::{join_path, Forward, Module, ParamInfo};

/// Elman recurrent cell: `h' = tanh(W_ih x + b_ih + W_hh h + b_hh)`.
#[derive(Debug)]
pub struct RnnCell {
    w_ih: Linear,
    w_hh: Linear,
    hidden: usize,
}

impl RnnCell {
    /// Creates a cell mapping `input` features and `hidden` state to a new
    /// `hidden` state.
    pub fn new<R: tyxe_rand::Rng + ?Sized>(input: usize, hidden: usize, rng: &mut R) -> RnnCell {
        RnnCell {
            w_ih: Linear::new(input, hidden, rng),
            w_hh: Linear::new(hidden, hidden, rng),
            hidden,
        }
    }

    /// One step: `[n, input] x [n, hidden] -> [n, hidden]`.
    pub fn step(&self, x: &Tensor, h: &Tensor) -> Tensor {
        self.w_ih.forward(x).add(&self.w_hh.forward(h)).tanh()
    }

    /// Hidden state width.
    pub fn hidden_size(&self) -> usize {
        self.hidden
    }
}

impl Module for RnnCell {
    fn kind(&self) -> &'static str {
        "RnnCell"
    }

    fn visit_params(&self, prefix: &str, f: &mut dyn FnMut(ParamInfo)) {
        self.w_ih.visit_params(&join_path(prefix, "w_ih"), f);
        self.w_hh.visit_params(&join_path(prefix, "w_hh"), f);
    }
}

/// Gated recurrent unit cell (Cho et al., 2014).
#[derive(Debug)]
pub struct GruCell {
    // Gates are computed with fused 3h-wide projections, like Pytorch.
    w_ih: Linear,
    w_hh: Linear,
    hidden: usize,
}

impl GruCell {
    /// Creates a GRU cell.
    pub fn new<R: tyxe_rand::Rng + ?Sized>(input: usize, hidden: usize, rng: &mut R) -> GruCell {
        GruCell {
            w_ih: Linear::new(input, 3 * hidden, rng),
            w_hh: Linear::new(hidden, 3 * hidden, rng),
            hidden,
        }
    }

    /// One step: `[n, input] x [n, hidden] -> [n, hidden]`.
    pub fn step(&self, x: &Tensor, h: &Tensor) -> Tensor {
        let hdim = self.hidden;
        let gi = self.w_ih.forward(x);
        let gh = self.w_hh.forward(h);
        let r = gi.slice(1, 0, hdim).add(&gh.slice(1, 0, hdim)).sigmoid();
        let z = gi
            .slice(1, hdim, 2 * hdim)
            .add(&gh.slice(1, hdim, 2 * hdim))
            .sigmoid();
        let n = gi
            .slice(1, 2 * hdim, 3 * hdim)
            .add(&r.mul(&gh.slice(1, 2 * hdim, 3 * hdim)))
            .tanh();
        // h' = (1 - z) * n + z * h
        z.neg().add_scalar(1.0).mul(&n).add(&z.mul(h))
    }

    /// Hidden state width.
    pub fn hidden_size(&self) -> usize {
        self.hidden
    }
}

impl Module for GruCell {
    fn kind(&self) -> &'static str {
        "GruCell"
    }

    fn visit_params(&self, prefix: &str, f: &mut dyn FnMut(ParamInfo)) {
        self.w_ih.visit_params(&join_path(prefix, "w_ih"), f);
        self.w_hh.visit_params(&join_path(prefix, "w_hh"), f);
    }
}

/// Unrolls a recurrent cell over sequences `[n, t, d]`, returning the final
/// hidden state `[n, hidden]`.
#[derive(Debug)]
pub struct Rnn<C> {
    cell: C,
    input: usize,
}

impl<C> Rnn<C> {
    /// Wraps a cell for inputs with `input` features per time step.
    pub fn new(cell: C, input: usize) -> Rnn<C> {
        Rnn { cell, input }
    }

    /// The wrapped cell.
    pub fn cell(&self) -> &C {
        &self.cell
    }
}

macro_rules! rnn_impls {
    ($cell:ty) => {
        impl Module for Rnn<$cell> {
            fn kind(&self) -> &'static str {
                "Rnn"
            }
            fn visit_params(&self, prefix: &str, f: &mut dyn FnMut(ParamInfo)) {
                self.cell.visit_params(&join_path(prefix, "cell"), f);
            }
        }

        impl Forward<Tensor> for Rnn<$cell> {
            type Output = Tensor;

            fn forward(&self, input: &Tensor) -> Tensor {
                assert_eq!(input.ndim(), 3, "Rnn expects [n, t, d]");
                let (n, t, d) = (input.shape()[0], input.shape()[1], input.shape()[2]);
                assert_eq!(d, self.input, "Rnn: feature dim mismatch");
                let mut h = Tensor::zeros(&[n, self.cell.hidden_size()]);
                for step in 0..t {
                    let x = input.slice(1, step, step + 1).reshape(&[n, d]);
                    h = self.cell.step(&x, &h);
                }
                h
            }
        }
    };
}

rnn_impls!(RnnCell);
rnn_impls!(GruCell);

#[cfg(test)]
mod tests {
    use super::*;
    use tyxe_rand::SeedableRng;

    #[test]
    fn rnn_shapes_and_state_dependence() {
        let mut rng = tyxe_rand::rngs::StdRng::seed_from_u64(0);
        let rnn = Rnn::new(RnnCell::new(3, 5, &mut rng), 3);
        let x = Tensor::randn(&[2, 4, 3], &mut rng);
        let h = rnn.forward(&x);
        assert_eq!(h.shape(), &[2, 5]);
        // Reversing the sequence changes the final state.
        let rev_idx: Vec<usize> = (0..4).rev().collect();
        let x_rev = x.index_select(1, &rev_idx);
        assert_ne!(h.to_vec(), rnn.forward(&x_rev).to_vec());
    }

    #[test]
    fn gru_gates_bound_state() {
        let mut rng = tyxe_rand::rngs::StdRng::seed_from_u64(1);
        let gru = Rnn::new(GruCell::new(2, 4, &mut rng), 2);
        let x = Tensor::randn(&[3, 6, 2], &mut rng).mul_scalar(3.0);
        let h = gru.forward(&x);
        // GRU state is a convex combination of tanh values: |h| <= 1.
        assert!(h.to_vec().iter().all(|&v| v.abs() <= 1.0 + 1e-9));
    }

    #[test]
    fn gradients_flow_through_time() {
        let mut rng = tyxe_rand::rngs::StdRng::seed_from_u64(2);
        let rnn = Rnn::new(GruCell::new(2, 3, &mut rng), 2);
        let x = Tensor::randn(&[1, 5, 2], &mut rng);
        rnn.forward(&x).square().sum().backward();
        for p in rnn.named_parameters() {
            assert!(p.param.leaf().grad().is_some(), "no grad for {}", p.name);
        }
        assert_eq!(rnn.named_parameters().len(), 4);
    }

    #[test]
    fn rnn_learns_sequence_sum_sign() {
        // Classify whether the sequence sum is positive — learnable by a
        // tiny recurrent net.
        use crate::optim::{Adam, Optimizer};
        let mut rng = tyxe_rand::rngs::StdRng::seed_from_u64(3);
        let rnn = Rnn::new(RnnCell::new(1, 8, &mut rng), 1);
        let head = Linear::new(8, 1, &mut rng);
        let x = Tensor::randn(&[64, 6, 1], &mut rng);
        let sums = x.sum_axis(1, false).reshape(&[64]);
        let y: Vec<f64> = sums.to_vec().iter().map(|&s| f64::from(u8::from(s > 0.0))).collect();
        let y = Tensor::from_vec(y, &[64, 1]);

        let mut params = rnn.parameters();
        params.extend(head.parameters());
        let mut opt = Adam::new(params, 0.02);
        let mut last = f64::INFINITY;
        for _ in 0..150 {
            let logits = head.forward(&rnn.forward(&x));
            // Logistic loss.
            let loss = logits
                .mul(&y)
                .neg()
                .add(&logits.softplus())
                .mean();
            last = loss.item();
            opt.zero_grad();
            loss.backward();
            opt.step();
        }
        assert!(last < 0.3, "sequence classification loss {last}");
    }

    #[test]
    fn bayesian_gru_via_variational_wrapper() {
        // The whole point: a recurrent net Bayesianizes with zero
        // recurrent-specific code (contrast BLiTZ's bespoke layers).
        use tyxe_prob::poutine::{replay, trace};
        tyxe_prob::rng::set_seed(0);
        let mut rng = tyxe_rand::rngs::StdRng::seed_from_u64(4);
        let rnn = Rnn::new(GruCell::new(2, 4, &mut rng), 2);
        let params = rnn.named_parameters();
        let x = Tensor::randn(&[2, 3, 2], &mut rng);
        // Sample every parameter from a prior, inject, and run — exactly
        // what BayesianModule::sampled_forward does.
        let run = || {
            for info in &params {
                let shape = info.param.shape();
                let w = tyxe_prob::sample(
                    &info.name,
                    tyxe_prob::dist::boxed(tyxe_prob::dist::Normal::scalar(0.0, 0.3, &shape)),
                );
                info.param.set_value(w);
            }
            let out = rnn.forward(&x);
            for info in &params {
                info.param.restore();
            }
            out
        };
        let (tr, out1) = trace(run);
        assert_eq!(tr.len(), 4);
        let out2 = replay(&tr, run);
        assert_eq!(out1.to_vec(), out2.to_vec());
    }
}
