//! Sequential composition of tensor-to-tensor modules.

use tyxe_tensor::Tensor;

use crate::module::{Forward, Module, ParamInfo, TensorModule};

/// Chains tensor-to-tensor modules, like `nn.Sequential`.
///
/// Children are addressed by their position: parameters of the first child
/// are named `0.weight`, `0.bias`, and so on.
///
/// # Examples
///
/// ```
/// use tyxe_nn::layers::{Linear, Sequential, Tanh};
/// use tyxe_nn::module::{Forward, Module};
/// use tyxe_rand::SeedableRng;
///
/// let mut rng = tyxe_rand::rngs::StdRng::seed_from_u64(0);
/// let net = Sequential::new()
///     .add(Linear::new(1, 50, &mut rng))
///     .add(Tanh::new())
///     .add(Linear::new(50, 1, &mut rng));
/// assert_eq!(net.forward(&tyxe_tensor::Tensor::zeros(&[4, 1])).shape(), &[4, 1]);
/// assert_eq!(net.named_parameters().len(), 4);
/// ```
#[derive(Default)]
pub struct Sequential {
    layers: Vec<Box<dyn TensorModule>>,
}

impl std::fmt::Debug for Sequential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kinds: Vec<&str> = self.layers.iter().map(|l| l.as_module().kind()).collect();
        f.debug_struct("Sequential").field("layers", &kinds).finish()
    }
}

impl Sequential {
    /// Creates an empty sequence.
    pub fn new() -> Sequential {
        Sequential { layers: Vec::new() }
    }

    /// Appends a module (builder style).
    #[must_use]
    #[allow(clippy::should_implement_trait)] // builder-style `add`, not ops::Add
    pub fn add(mut self, layer: impl TensorModule + 'static) -> Sequential {
        self.layers.push(Box::new(layer));
        self
    }

    /// Appends a boxed module.
    pub fn push(&mut self, layer: Box<dyn TensorModule>) {
        self.layers.push(layer);
    }

    /// Number of children.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Access a child by index.
    pub fn layer(&self, i: usize) -> &dyn TensorModule {
        self.layers[i].as_ref()
    }
}

impl Module for Sequential {
    fn kind(&self) -> &'static str {
        "Sequential"
    }

    fn visit_params(&self, prefix: &str, f: &mut dyn FnMut(ParamInfo)) {
        for (i, layer) in self.layers.iter().enumerate() {
            let child_prefix = if prefix.is_empty() {
                i.to_string()
            } else {
                format!("{prefix}.{i}")
            };
            layer.as_module().visit_params(&child_prefix, f);
        }
    }

    fn set_training(&self, training: bool) {
        for layer in &self.layers {
            layer.as_module().set_training(training);
        }
    }

    fn visit_buffers(
        &self,
        prefix: &str,
        f: &mut dyn FnMut(String, &std::cell::RefCell<Vec<f64>>),
    ) {
        for (i, layer) in self.layers.iter().enumerate() {
            let child_prefix = if prefix.is_empty() {
                i.to_string()
            } else {
                format!("{prefix}.{i}")
            };
            layer.as_module().visit_buffers(&child_prefix, f);
        }
    }
}

impl Forward<Tensor> for Sequential {
    type Output = Tensor;

    fn forward(&self, input: &Tensor) -> Tensor {
        // Peephole fusion: a layer followed by a fusable elementwise
        // activation (Relu/Tanh/Sigmoid after Linear/Conv2d) runs as one
        // fused forward. Bit-identical to the unfused chain — the fused
        // kernel applies the same scalar recipe in the same order — so this
        // only saves a graph node and an output buffer.
        let mut x = input.clone();
        let mut i = 0;
        while i < self.layers.len() {
            let layer = &self.layers[i];
            if let Some(act) = self
                .layers
                .get(i + 1)
                .and_then(|a| a.as_module().fusable_activation())
            {
                if let Some(y) = layer.as_module().forward_act(&x, act) {
                    x = y;
                    i += 2;
                    continue;
                }
            }
            x = layer.forward(&x);
            i += 1;
        }
        x
    }
}

/// Builds a fully connected network with the given layer widths and a tanh
/// or ReLU nonlinearity between hidden layers.
///
/// `widths = [in, h1, ..., out]`; the final layer is linear.
///
/// # Panics
///
/// Panics if fewer than two widths are given.
pub fn mlp<R: tyxe_rand::Rng + ?Sized>(widths: &[usize], relu: bool, rng: &mut R) -> Sequential {
    assert!(widths.len() >= 2, "mlp: need at least input and output widths");
    let mut net = Sequential::new();
    for i in 0..widths.len() - 1 {
        net = net.add(crate::layers::Linear::new(widths[i], widths[i + 1], rng));
        if i + 2 < widths.len() {
            if relu {
                net = net.add(crate::layers::Relu::new());
            } else {
                net = net.add(crate::layers::Tanh::new());
            }
        }
    }
    net
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Linear, Relu};
    use tyxe_rand::SeedableRng;

    #[test]
    fn parameter_paths_are_indexed() {
        let mut rng = tyxe_rand::rngs::StdRng::seed_from_u64(0);
        let net = Sequential::new()
            .add(Linear::new(2, 4, &mut rng))
            .add(Relu::new())
            .add(Linear::new(4, 1, &mut rng));
        let names: Vec<String> = net.named_parameters().into_iter().map(|p| p.name).collect();
        assert_eq!(names, vec!["0.weight", "0.bias", "2.weight", "2.bias"]);
    }

    #[test]
    fn forward_composes() {
        let mut rng = tyxe_rand::rngs::StdRng::seed_from_u64(0);
        let net = mlp(&[3, 8, 8, 2], true, &mut rng);
        let y = net.forward(&Tensor::ones(&[5, 3]));
        assert_eq!(y.shape(), &[5, 2]);
    }

    #[test]
    fn mlp_structure() {
        let mut rng = tyxe_rand::rngs::StdRng::seed_from_u64(0);
        let net = mlp(&[1, 50, 1], false, &mut rng);
        // Linear, Tanh, Linear
        assert_eq!(net.len(), 3);
        assert_eq!(net.layer(1).as_module().kind(), "Tanh");
    }

    #[test]
    fn set_training_recurses() {
        let net = Sequential::new().add(crate::layers::Dropout::new(0.5));
        net.set_training(false);
        let x = Tensor::ones(&[4]);
        assert_eq!(net.forward(&x).to_vec(), vec![1.0; 4]);
    }
}
