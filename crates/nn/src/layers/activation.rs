//! Parameter-free activation and shape layers.

use tyxe_tensor::ops::Activation;
use tyxe_tensor::Tensor;

use crate::module::{Forward, Module, ParamInfo};

macro_rules! activation {
    ($(#[$doc:meta])* $name:ident, $kind:literal, $fuse:expr, $f:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, Default)]
        pub struct $name;

        impl $name {
            /// Creates the activation.
            pub fn new() -> $name {
                $name
            }
        }

        impl Module for $name {
            fn kind(&self) -> &'static str {
                $kind
            }
            fn visit_params(&self, _prefix: &str, _f: &mut dyn FnMut(ParamInfo)) {}
            fn fusable_activation(&self) -> Option<Activation> {
                $fuse
            }
        }

        impl Forward<Tensor> for $name {
            type Output = Tensor;
            fn forward(&self, input: &Tensor) -> Tensor {
                #[allow(clippy::redundant_closure_call)]
                ($f)(input)
            }
        }
    };
}

activation!(
    /// Rectified linear unit.
    Relu,
    "Relu",
    Some(Activation::Relu),
    |x: &Tensor| x.relu()
);
activation!(
    /// Hyperbolic tangent.
    Tanh,
    "Tanh",
    Some(Activation::Tanh),
    |x: &Tensor| x.tanh()
);
activation!(
    /// Logistic sigmoid.
    Sigmoid,
    "Sigmoid",
    Some(Activation::Sigmoid),
    |x: &Tensor| x.sigmoid()
);
activation!(
    /// Softplus. Not fusable: its derivative is not recoverable from its
    /// output, so it stays a standalone graph node.
    Softplus,
    "Softplus",
    None,
    |x: &Tensor| x.softplus()
);

/// Flattens `[N, ...]` to `[N, prod(...)]`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Flatten;

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Flatten {
        Flatten
    }
}

impl Module for Flatten {
    fn kind(&self) -> &'static str {
        "Flatten"
    }
    fn visit_params(&self, _prefix: &str, _f: &mut dyn FnMut(ParamInfo)) {}
}

impl Forward<Tensor> for Flatten {
    type Output = Tensor;
    fn forward(&self, input: &Tensor) -> Tensor {
        let n = input.shape()[0];
        input.reshape(&[n, input.numel() / n])
    }
}

/// Max pooling layer (square kernel).
#[derive(Debug, Clone, Copy)]
pub struct MaxPool2d {
    kernel: usize,
    stride: usize,
}

impl MaxPool2d {
    /// Creates a max-pool layer with square `kernel` and `stride`.
    pub fn new(kernel: usize, stride: usize) -> MaxPool2d {
        MaxPool2d { kernel, stride }
    }
}

impl Module for MaxPool2d {
    fn kind(&self) -> &'static str {
        "MaxPool2d"
    }
    fn visit_params(&self, _prefix: &str, _f: &mut dyn FnMut(ParamInfo)) {}
}

impl Forward<Tensor> for MaxPool2d {
    type Output = Tensor;
    fn forward(&self, input: &Tensor) -> Tensor {
        input.max_pool2d(self.kernel, self.stride)
    }
}

/// Global average pooling `[N, C, H, W] -> [N, C]`.
#[derive(Debug, Clone, Copy, Default)]
pub struct GlobalAvgPool2d;

impl GlobalAvgPool2d {
    /// Creates a global-average-pool layer.
    pub fn new() -> GlobalAvgPool2d {
        GlobalAvgPool2d
    }
}

impl Module for GlobalAvgPool2d {
    fn kind(&self) -> &'static str {
        "GlobalAvgPool2d"
    }
    fn visit_params(&self, _prefix: &str, _f: &mut dyn FnMut(ParamInfo)) {}
}

impl Forward<Tensor> for GlobalAvgPool2d {
    type Output = Tensor;
    fn forward(&self, input: &Tensor) -> Tensor {
        input.global_avg_pool2d()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn activations_apply_elementwise() {
        let x = Tensor::from_vec(vec![-1.0, 0.0, 1.0], &[3]);
        assert_eq!(Relu::new().forward(&x).to_vec(), vec![0.0, 0.0, 1.0]);
        assert!((Tanh::new().forward(&x).to_vec()[2] - 1.0f64.tanh()).abs() < 1e-12);
        assert!((Sigmoid::new().forward(&x).to_vec()[1] - 0.5).abs() < 1e-12);
        assert!(Softplus::new().forward(&x).to_vec()[0] > 0.0);
    }

    #[test]
    fn flatten_and_pool_shapes() {
        let x = Tensor::zeros(&[2, 3, 4, 4]);
        assert_eq!(Flatten::new().forward(&x).shape(), &[2, 48]);
        assert_eq!(MaxPool2d::new(2, 2).forward(&x).shape(), &[2, 3, 2, 2]);
        assert_eq!(GlobalAvgPool2d::new().forward(&x).shape(), &[2, 3]);
    }

    #[test]
    fn parameter_free() {
        assert_eq!(Relu::new().named_parameters().len(), 0);
        assert_eq!(Flatten::new().named_parameters().len(), 0);
        assert_eq!(MaxPool2d::new(2, 2).named_parameters().len(), 0);
    }
}
