//! Dense affine layer.

use tyxe_prob::poutine::effectful;
use tyxe_tensor::Tensor;

use crate::init::kaiming_uniform;
use crate::module::{join_path, Forward, Module, ParamInfo};
use crate::param::Param;

/// Fully connected layer `y = x W^T + b` with `W: [out, in]` (Pytorch
/// convention).
///
/// The matrix product is routed through
/// [`tyxe_prob::poutine::effectful::linear`], so reparameterization
/// messengers can rewrite it — this is what makes TyXe's "no bespoke layer
/// classes" design work.
#[derive(Debug, Clone)]
pub struct Linear {
    weight: Param,
    bias: Option<Param>,
    in_features: usize,
    out_features: usize,
}

impl Linear {
    /// Creates a linear layer with Pytorch-default (Kaiming-uniform)
    /// initialization, with bias.
    pub fn new<R: tyxe_rand::Rng + ?Sized>(in_features: usize, out_features: usize, rng: &mut R) -> Linear {
        Linear::with_bias(in_features, out_features, true, rng)
    }

    /// Creates a linear layer, optionally without bias.
    pub fn with_bias<R: tyxe_rand::Rng + ?Sized>(
        in_features: usize,
        out_features: usize,
        bias: bool,
        rng: &mut R,
    ) -> Linear {
        let weight = Param::new(kaiming_uniform(&[out_features, in_features], rng));
        let bias = bias.then(|| Param::new(kaiming_uniform(&[out_features], rng)));
        Linear {
            weight,
            bias,
            in_features,
            out_features,
        }
    }

    /// Weight parameter slot.
    pub fn weight(&self) -> &Param {
        &self.weight
    }

    /// Bias parameter slot, if present.
    pub fn bias(&self) -> Option<&Param> {
        self.bias.as_ref()
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.out_features
    }
}

impl Module for Linear {
    fn kind(&self) -> &'static str {
        "Linear"
    }

    fn forward_act(&self, input: &Tensor, act: tyxe_tensor::ops::Activation) -> Option<Tensor> {
        let bias = self.bias.as_ref().map(Param::value);
        Some(effectful::linear_act(input, &self.weight.value(), bias.as_ref(), act))
    }

    fn visit_params(&self, prefix: &str, f: &mut dyn FnMut(ParamInfo)) {
        f(ParamInfo {
            name: join_path(prefix, "weight"),
            module_kind: self.kind(),
            param: self.weight.clone(),
        });
        if let Some(b) = &self.bias {
            f(ParamInfo {
                name: join_path(prefix, "bias"),
                module_kind: self.kind(),
                param: b.clone(),
            });
        }
    }
}

impl Forward<Tensor> for Linear {
    type Output = Tensor;

    fn forward(&self, input: &Tensor) -> Tensor {
        let bias = self.bias.as_ref().map(Param::value);
        effectful::linear(input, &self.weight.value(), bias.as_ref())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tyxe_rand::SeedableRng;

    #[test]
    fn forward_shape_and_value() {
        let mut rng = tyxe_rand::rngs::StdRng::seed_from_u64(0);
        let l = Linear::new(3, 2, &mut rng);
        l.weight().load_data(vec![1.0, 0.0, 0.0, 0.0, 1.0, 0.0]);
        l.bias().unwrap().load_data(vec![0.5, -0.5]);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3]);
        let y = l.forward(&x);
        assert_eq!(y.shape(), &[1, 2]);
        assert_eq!(y.to_vec(), vec![1.5, 1.5]);
    }

    #[test]
    fn visit_params_names() {
        let mut rng = tyxe_rand::rngs::StdRng::seed_from_u64(0);
        let l = Linear::new(3, 2, &mut rng);
        let names: Vec<String> = l.named_parameters().into_iter().map(|p| p.name).collect();
        assert_eq!(names, vec!["weight", "bias"]);
        assert_eq!(l.num_parameters(), 8);
    }

    #[test]
    fn no_bias_variant() {
        let mut rng = tyxe_rand::rngs::StdRng::seed_from_u64(0);
        let l = Linear::with_bias(4, 4, false, &mut rng);
        assert!(l.bias().is_none());
        assert_eq!(l.named_parameters().len(), 1);
    }

    #[test]
    fn grad_reaches_weights() {
        let mut rng = tyxe_rand::rngs::StdRng::seed_from_u64(0);
        let l = Linear::new(3, 2, &mut rng);
        let x = Tensor::ones(&[4, 3]);
        l.forward(&x).sum().backward();
        assert!(l.weight().leaf().grad().is_some());
        assert_eq!(l.bias().unwrap().leaf().grad().unwrap(), vec![4.0, 4.0]);
    }
}
