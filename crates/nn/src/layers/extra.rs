//! Additional layers: average pooling and layer normalization.

use tyxe_tensor::Tensor;

use crate::module::{join_path, Forward, Module, ParamInfo};
use crate::param::Param;

/// 2-D average pooling with square kernel and stride over `[N, C, H, W]`.
#[derive(Debug, Clone, Copy)]
pub struct AvgPool2d {
    kernel: usize,
    stride: usize,
}

impl AvgPool2d {
    /// Creates an average-pool layer.
    pub fn new(kernel: usize, stride: usize) -> AvgPool2d {
        AvgPool2d { kernel, stride }
    }
}

impl Module for AvgPool2d {
    fn kind(&self) -> &'static str {
        "AvgPool2d"
    }
    fn visit_params(&self, _prefix: &str, _f: &mut dyn FnMut(ParamInfo)) {}
}

impl Forward<Tensor> for AvgPool2d {
    type Output = Tensor;

    fn forward(&self, input: &Tensor) -> Tensor {
        assert_eq!(input.ndim(), 4, "AvgPool2d expects [N, C, H, W]");
        // Average pooling = convolution with a constant kernel applied
        // per-channel; implemented via unit-diagonal grouped weights.
        let (n, c, h, w) = (
            input.shape()[0],
            input.shape()[1],
            input.shape()[2],
            input.shape()[3],
        );
        let k = self.kernel;
        let scale = 1.0 / (k * k) as f64;
        let mut weight = vec![0.0; c * c * k * k];
        for ch in 0..c {
            for i in 0..k * k {
                weight[(ch * c + ch) * k * k + i] = scale;
            }
        }
        let weight = Tensor::from_vec(weight, &[c, c, k, k]);
        let _ = (n, h, w);
        input.conv2d(&weight, None, self.stride, 0)
    }
}

/// Layer normalization over the trailing `dim` features with learnable
/// per-feature scale and shift.
#[derive(Debug)]
pub struct LayerNorm {
    weight: Param,
    bias: Param,
    dim: usize,
    eps: f64,
}

impl LayerNorm {
    /// Creates a layer norm over feature dimension `dim`.
    pub fn new(dim: usize) -> LayerNorm {
        LayerNorm {
            weight: Param::new(Tensor::ones(&[dim])),
            bias: Param::new(Tensor::zeros(&[dim])),
            dim,
            eps: 1e-5,
        }
    }

    /// Scale parameter slot.
    pub fn weight(&self) -> &Param {
        &self.weight
    }

    /// Shift parameter slot.
    pub fn bias(&self) -> &Param {
        &self.bias
    }
}

impl Module for LayerNorm {
    fn kind(&self) -> &'static str {
        "LayerNorm"
    }

    fn visit_params(&self, prefix: &str, f: &mut dyn FnMut(ParamInfo)) {
        f(ParamInfo {
            name: join_path(prefix, "weight"),
            module_kind: self.kind(),
            param: self.weight.clone(),
        });
        f(ParamInfo {
            name: join_path(prefix, "bias"),
            module_kind: self.kind(),
            param: self.bias.clone(),
        });
    }
}

impl Forward<Tensor> for LayerNorm {
    type Output = Tensor;

    fn forward(&self, input: &Tensor) -> Tensor {
        let last = input.ndim() as isize - 1;
        assert_eq!(
            *input.shape().last().expect("non-scalar input"),
            self.dim,
            "LayerNorm: trailing dim mismatch"
        );
        let mean = input.mean_axis(last, true);
        let centered = input.sub(&mean);
        let var = centered.square().mean_axis(last, true);
        centered
            .div(&var.add_scalar(self.eps).sqrt())
            .mul(&self.weight.value())
            .add(&self.bias.value())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn avg_pool_averages_windows() {
        let x = Tensor::from_vec((1..=16).map(|v| v as f64).collect(), &[1, 1, 4, 4]);
        let y = AvgPool2d::new(2, 2).forward(&x);
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        assert_eq!(y.to_vec(), vec![3.5, 5.5, 11.5, 13.5]);
    }

    #[test]
    fn avg_pool_is_channel_separable() {
        // Two channels with distinct constants stay distinct.
        let mut data = vec![1.0; 8];
        data[4..].iter_mut().for_each(|v| *v = 5.0);
        let x = Tensor::from_vec(data, &[1, 2, 2, 2]);
        let y = AvgPool2d::new(2, 2).forward(&x);
        assert_eq!(y.to_vec(), vec![1.0, 5.0]);
    }

    #[test]
    fn layer_norm_normalizes_rows() {
        let ln = LayerNorm::new(4);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 10.0, 10.0, 10.0, 10.0], &[2, 4]);
        let y = ln.forward(&x);
        // First row: zero mean, unit variance (up to eps).
        let row: Vec<f64> = y.to_vec()[..4].to_vec();
        let mean: f64 = row.iter().sum::<f64>() / 4.0;
        assert!(mean.abs() < 1e-9);
        // Constant row maps to zeros.
        assert!(y.to_vec()[4..].iter().all(|&v| v.abs() < 1e-3));
    }

    #[test]
    fn layer_norm_params_receive_gradients() {
        let ln = LayerNorm::new(3);
        let x = Tensor::from_vec(vec![0.1, -0.4, 0.8], &[1, 3]);
        ln.forward(&x).square().sum().backward();
        assert!(ln.weight().leaf().grad().is_some());
        assert!(ln.bias().leaf().grad().is_some());
        assert_eq!(ln.named_parameters().len(), 2);
    }
}
