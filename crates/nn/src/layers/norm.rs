//! Batch normalization.

use std::cell::{Cell, RefCell};

use tyxe_tensor::Tensor;

use crate::module::{join_path, Forward, Module, ParamInfo};
use crate::param::Param;

/// 2-D batch normalization over `[N, C, H, W]` with learnable per-channel
/// scale and shift and running statistics for evaluation mode.
///
/// In the Bayesian ResNet experiment these parameters are *hidden* from the
/// prior (`hide_module_types = ["BatchNorm2d"]`) and trained by maximum
/// likelihood, exactly as in the paper.
#[derive(Debug)]
pub struct BatchNorm2d {
    weight: Param,
    bias: Param,
    running_mean: RefCell<Vec<f64>>,
    running_var: RefCell<Vec<f64>>,
    momentum: f64,
    eps: f64,
    training: Cell<bool>,
    channels: usize,
}

impl BatchNorm2d {
    /// Creates a batch-norm layer over `channels` channels
    /// (`momentum = 0.1`, `eps = 1e-5`, training mode on).
    pub fn new(channels: usize) -> BatchNorm2d {
        BatchNorm2d {
            weight: Param::new(Tensor::ones(&[channels])),
            bias: Param::new(Tensor::zeros(&[channels])),
            running_mean: RefCell::new(vec![0.0; channels]),
            running_var: RefCell::new(vec![1.0; channels]),
            momentum: 0.1,
            eps: 1e-5,
            training: Cell::new(true),
            channels,
        }
    }

    /// Scale parameter slot.
    pub fn weight(&self) -> &Param {
        &self.weight
    }

    /// Shift parameter slot.
    pub fn bias(&self) -> &Param {
        &self.bias
    }

    /// Current running mean (for tests/serialization).
    pub fn running_mean(&self) -> Vec<f64> {
        self.running_mean.borrow().clone()
    }

    /// Current running variance.
    pub fn running_var(&self) -> Vec<f64> {
        self.running_var.borrow().clone()
    }

    /// Whether the layer is in training mode.
    pub fn is_training(&self) -> bool {
        self.training.get()
    }
}

impl Module for BatchNorm2d {
    fn kind(&self) -> &'static str {
        "BatchNorm2d"
    }

    fn visit_params(&self, prefix: &str, f: &mut dyn FnMut(ParamInfo)) {
        f(ParamInfo {
            name: join_path(prefix, "weight"),
            module_kind: self.kind(),
            param: self.weight.clone(),
        });
        f(ParamInfo {
            name: join_path(prefix, "bias"),
            module_kind: self.kind(),
            param: self.bias.clone(),
        });
    }

    fn set_training(&self, training: bool) {
        self.training.set(training);
    }

    fn visit_buffers(
        &self,
        prefix: &str,
        f: &mut dyn FnMut(String, &std::cell::RefCell<Vec<f64>>),
    ) {
        f(join_path(prefix, "running_mean"), &self.running_mean);
        f(join_path(prefix, "running_var"), &self.running_var);
    }
}

impl Forward<Tensor> for BatchNorm2d {
    type Output = Tensor;

    fn forward(&self, input: &Tensor) -> Tensor {
        assert_eq!(input.ndim(), 4, "BatchNorm2d expects [N, C, H, W]");
        let c = input.shape()[1];
        assert_eq!(c, self.channels, "BatchNorm2d: channel mismatch");
        let (mean, var) = if self.training.get() {
            // Batch statistics over (N, H, W), differentiable.
            let m = input.mean_axis(0, true).mean_axis(2, true).mean_axis(3, true);
            let centered = input.sub(&m);
            let v = centered
                .square()
                .mean_axis(0, true)
                .mean_axis(2, true)
                .mean_axis(3, true);
            // Update running stats out-of-band.
            {
                let md = m.to_vec();
                let vd = v.to_vec();
                let n = (input.numel() / c) as f64;
                let unbias = if n > 1.0 { n / (n - 1.0) } else { 1.0 };
                let mut rm = self.running_mean.borrow_mut();
                let mut rv = self.running_var.borrow_mut();
                for i in 0..c {
                    rm[i] = (1.0 - self.momentum) * rm[i] + self.momentum * md[i];
                    rv[i] = (1.0 - self.momentum) * rv[i] + self.momentum * vd[i] * unbias;
                }
            }
            (m, v)
        } else {
            let m = Tensor::from_vec(self.running_mean.borrow().clone(), &[1, c, 1, 1]);
            let v = Tensor::from_vec(self.running_var.borrow().clone(), &[1, c, 1, 1]);
            (m, v)
        };
        let w = self.weight.value().reshape(&[1, c, 1, 1]);
        let b = self.bias.value().reshape(&[1, c, 1, 1]);
        input
            .sub(&mean)
            .div(&var.add_scalar(self.eps).sqrt())
            .mul(&w)
            .add(&b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn training_normalizes_batch() {
        let bn = BatchNorm2d::new(2);
        let x = Tensor::from_vec((0..16).map(|v| v as f64).collect(), &[2, 2, 2, 2]);
        let y = bn.forward(&x);
        // Per-channel mean ~ 0, var ~ 1.
        let ch0: Vec<f64> = y
            .to_vec()
            .chunks(4)
            .step_by(2)
            .flatten()
            .copied()
            .collect();
        let mean: f64 = ch0.iter().sum::<f64>() / ch0.len() as f64;
        assert!(mean.abs() < 1e-9);
    }

    #[test]
    fn eval_uses_running_stats() {
        let bn = BatchNorm2d::new(1);
        let x = Tensor::full(&[4, 1, 2, 2], 10.0);
        // A few training passes to move running stats toward mean 10.
        for _ in 0..300 {
            let _ = bn.forward(&x);
        }
        bn.set_training(false);
        assert!(!bn.is_training());
        let y = bn.forward(&x);
        // After enough updates, running mean ≈ 10 so output ≈ 0.
        assert!(y.to_vec().iter().all(|&v| v.abs() < 0.2), "{:?}", y.to_vec()[0]);
    }

    #[test]
    fn grad_flows_to_scale_and_shift() {
        let bn = BatchNorm2d::new(2);
        let x = Tensor::from_vec((0..16).map(|v| v as f64 * 0.1).collect(), &[2, 2, 2, 2]);
        bn.forward(&x).square().sum().backward();
        assert!(bn.weight().leaf().grad().is_some());
        assert!(bn.bias().leaf().grad().is_some());
    }

    #[test]
    fn params_report_batchnorm_kind() {
        let bn = BatchNorm2d::new(3);
        for p in bn.named_parameters() {
            assert_eq!(p.module_kind, "BatchNorm2d");
        }
        assert_eq!(bn.num_parameters(), 6);
    }
}
