//! `tyxe-nn`: neural network modules over `tyxe-tensor` (the `torch.nn`
//! substitute underlying `tyxe`).
//!
//! The two ideas that make the TyXe design possible live here:
//!
//! 1. **Swappable parameters** — every layer stores its weights in
//!    [`param::Param`] slots. A Bayesian wrapper can inject posterior
//!    samples into the same slots the deterministic forward pass reads,
//!    so *any* architecture becomes Bayesian without bespoke layer classes.
//! 2. **Effectful linear ops** — [`layers::Linear`] and [`layers::Conv2d`]
//!    route their math through [`tyxe_prob::poutine::effectful`], letting
//!    effect handlers (local reparameterization, flipout) rewrite the
//!    computation at runtime.
//!
//! The crate also provides [`resnet::ResNet`] (the torchvision stand-in for
//! the paper's large-scale vision experiment), initialization schemes
//! ([`init`]) and re-exports the optimizers from `tyxe-prob`.
//!
//! # Example
//!
//! ```
//! use tyxe_rand::SeedableRng;
//! use tyxe_nn::layers::mlp;
//! use tyxe_nn::module::{Forward, Module};
//!
//! let mut rng = tyxe_rand::rngs::StdRng::seed_from_u64(0);
//! let net = mlp(&[1, 50, 1], false, &mut rng); // Linear-Tanh-Linear
//! let y = net.forward(&tyxe_tensor::Tensor::zeros(&[8, 1]));
//! assert_eq!(y.shape(), &[8, 1]);
//! ```

pub mod init;
pub mod layers;
pub mod module;
pub mod param;
pub mod resnet;
pub mod serialize;
pub mod state;

pub use module::{Forward, Module, ParamInfo, TensorModule};
pub use param::Param;
pub use state::StateDict;

/// Re-export of the optimizers (shared with the probabilistic layer, like
/// `pyro.optim` wrapping `torch.optim`).
pub mod optim {
    pub use tyxe_prob::optim::{Adam, Optimizer, Sgd, StepLr};
}

#[cfg(test)]
mod integration_tests {
    use super::layers::mlp;
    use super::module::{Forward, Module};
    use super::optim::{Adam, Optimizer};
    use tyxe_rand::SeedableRng;
    use tyxe_tensor::Tensor;

    #[test]
    fn mlp_fits_sine_regression() {
        let mut rng = tyxe_rand::rngs::StdRng::seed_from_u64(0);
        let net = mlp(&[1, 32, 1], false, &mut rng);
        let x = Tensor::rand_uniform(&[64, 1], -1.0, 1.0, &mut rng);
        let y = x.mul_scalar(3.0).sin();

        let mut opt = Adam::new(net.parameters(), 1e-2);
        let mut last = f64::INFINITY;
        for _ in 0..400 {
            let pred = net.forward(&x);
            let loss = pred.sub(&y).square().mean();
            last = loss.item();
            opt.zero_grad();
            loss.backward();
            opt.step();
        }
        assert!(last < 0.01, "final loss {last}");
    }

    #[test]
    fn param_injection_changes_forward_output() {
        // The core BNN mechanism: swapping Param values swaps the function.
        let mut rng = tyxe_rand::rngs::StdRng::seed_from_u64(1);
        let net = mlp(&[2, 2], true, &mut rng);
        let x = Tensor::ones(&[1, 2]);
        let base = net.forward(&x).to_vec();
        for info in net.named_parameters() {
            info.param
                .set_value(Tensor::zeros(&info.param.shape()));
        }
        assert_eq!(net.forward(&x).to_vec(), vec![0.0, 0.0]);
        for info in net.named_parameters() {
            info.param.restore();
        }
        assert_eq!(net.forward(&x).to_vec(), base);
    }
}
