//! Swappable parameter handles — the mechanism that lets TyXe replace a
//! network's parameters with posterior samples without bespoke layer
//! classes (the analogue of `PyroModule` turning `nn.Parameter` into
//! `PyroSample`).

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

use tyxe_tensor::Tensor;

struct ParamInner {
    value: RefCell<Tensor>,
    /// The underlying deterministic leaf, kept so the parameter can be
    /// restored after a Bayesian forward pass and so optimizers keep a
    /// stable handle.
    leaf: RefCell<Tensor>,
}

/// A named, swappable parameter slot inside a module.
///
/// A `Param` normally holds a gradient-tracking leaf tensor (trained by an
/// optimizer). A Bayesian wrapper may [`Param::set_value`] a sampled tensor
/// for the duration of a forward pass, and later [`Param::restore`] the
/// deterministic leaf. Cloning shares the slot.
#[derive(Clone)]
pub struct Param {
    inner: Rc<ParamInner>,
}

impl fmt::Debug for Param {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Param")
            .field("shape", &self.shape())
            .finish()
    }
}

impl Param {
    /// Creates a parameter from an initial value (gradient tracking is
    /// enabled on the stored leaf).
    pub fn new(init: Tensor) -> Param {
        let leaf = init.requires_grad(true);
        Param {
            inner: Rc::new(ParamInner {
                value: RefCell::new(leaf.clone()),
                leaf: RefCell::new(leaf),
            }),
        }
    }

    /// The tensor currently occupying the slot (the leaf, unless a sample
    /// has been injected).
    pub fn value(&self) -> Tensor {
        self.inner.value.borrow().clone()
    }

    /// The underlying deterministic leaf tensor (the optimizer target).
    pub fn leaf(&self) -> Tensor {
        self.inner.leaf.borrow().clone()
    }

    /// Injects a (typically sampled) tensor into the slot. Forward passes
    /// running afterwards use it in place of the leaf.
    pub fn set_value(&self, t: Tensor) {
        assert_eq!(
            t.shape(),
            self.shape(),
            "Param::set_value: shape mismatch"
        );
        *self.inner.value.borrow_mut() = t;
    }

    /// Puts the deterministic leaf back into the slot.
    pub fn restore(&self) {
        let leaf = self.inner.leaf.borrow().clone();
        *self.inner.value.borrow_mut() = leaf;
    }

    /// Overwrites the leaf's data in place (e.g. loading pretrained
    /// weights). Does not disturb an injected sample.
    pub fn load_data(&self, data: Vec<f64>) {
        self.inner.leaf.borrow().set_data(data);
    }

    /// Parameter shape.
    pub fn shape(&self) -> Vec<usize> {
        self.inner.value.borrow().shape().to_vec()
    }

    /// Number of scalar parameters in the slot.
    pub fn numel(&self) -> usize {
        self.inner.value.borrow().numel()
    }

    /// Whether two handles refer to the same slot.
    pub fn same_slot(&self, other: &Param) -> bool {
        Rc::ptr_eq(&self.inner, &other.inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_starts_as_leaf() {
        let p = Param::new(Tensor::from_vec(vec![1.0, 2.0], &[2]));
        assert_eq!(p.value().to_vec(), vec![1.0, 2.0]);
        assert!(p.value().requires_grad_enabled());
    }

    #[test]
    fn set_value_and_restore() {
        let p = Param::new(Tensor::zeros(&[2]));
        p.set_value(Tensor::from_vec(vec![5.0, 6.0], &[2]));
        assert_eq!(p.value().to_vec(), vec![5.0, 6.0]);
        p.restore();
        assert_eq!(p.value().to_vec(), vec![0.0, 0.0]);
    }

    #[test]
    #[should_panic]
    fn set_value_rejects_wrong_shape() {
        let p = Param::new(Tensor::zeros(&[2]));
        p.set_value(Tensor::zeros(&[3]));
    }

    #[test]
    fn clones_share_slot() {
        let p = Param::new(Tensor::zeros(&[1]));
        let q = p.clone();
        q.set_value(Tensor::ones(&[1]));
        assert_eq!(p.value().to_vec(), vec![1.0]);
        assert!(p.same_slot(&q));
    }

    #[test]
    fn load_data_updates_leaf_under_injected_sample() {
        let p = Param::new(Tensor::zeros(&[2]));
        p.set_value(Tensor::ones(&[2]));
        p.load_data(vec![7.0, 8.0]);
        assert_eq!(p.value().to_vec(), vec![1.0, 1.0]);
        p.restore();
        assert_eq!(p.value().to_vec(), vec![7.0, 8.0]);
    }
}
