//! A residual CNN in the style of the CIFAR ResNets (He et al., 2016) —
//! the `torchvision.models.resnet18` stand-in for the paper's Table 1 /
//! Figure 2 experiment.

use tyxe_tensor::Tensor;

use crate::layers::{BatchNorm2d, Conv2d, Linear};
use crate::module::{join_path, Forward, Module, ParamInfo};

/// A basic residual block: `conv3x3 - BN - ReLU - conv3x3 - BN` plus an
/// identity (or 1x1-projected) shortcut, followed by ReLU.
#[derive(Debug)]
pub struct BasicBlock {
    conv1: Conv2d,
    bn1: BatchNorm2d,
    conv2: Conv2d,
    bn2: BatchNorm2d,
    downsample: Option<(Conv2d, BatchNorm2d)>,
}

impl BasicBlock {
    /// Creates a block mapping `in_ch -> out_ch` with the given stride on
    /// the first convolution.
    pub fn new<R: tyxe_rand::Rng + ?Sized>(
        in_ch: usize,
        out_ch: usize,
        stride: usize,
        rng: &mut R,
    ) -> BasicBlock {
        let downsample = (stride != 1 || in_ch != out_ch).then(|| {
            (
                Conv2d::with_bias(in_ch, out_ch, 1, stride, 0, false, rng),
                BatchNorm2d::new(out_ch),
            )
        });
        BasicBlock {
            conv1: Conv2d::with_bias(in_ch, out_ch, 3, stride, 1, false, rng),
            bn1: BatchNorm2d::new(out_ch),
            conv2: Conv2d::with_bias(out_ch, out_ch, 3, 1, 1, false, rng),
            bn2: BatchNorm2d::new(out_ch),
            downsample,
        }
    }
}

impl Module for BasicBlock {
    fn kind(&self) -> &'static str {
        "BasicBlock"
    }

    fn visit_params(&self, prefix: &str, f: &mut dyn FnMut(ParamInfo)) {
        self.conv1.visit_params(&join_path(prefix, "conv1"), f);
        self.bn1.visit_params(&join_path(prefix, "bn1"), f);
        self.conv2.visit_params(&join_path(prefix, "conv2"), f);
        self.bn2.visit_params(&join_path(prefix, "bn2"), f);
        if let Some((conv, bn)) = &self.downsample {
            conv.visit_params(&join_path(prefix, "downsample.0"), f);
            bn.visit_params(&join_path(prefix, "downsample.1"), f);
        }
    }

    fn set_training(&self, training: bool) {
        self.bn1.set_training(training);
        self.bn2.set_training(training);
        if let Some((_, bn)) = &self.downsample {
            bn.set_training(training);
        }
    }

    fn visit_buffers(
        &self,
        prefix: &str,
        f: &mut dyn FnMut(String, &std::cell::RefCell<Vec<f64>>),
    ) {
        self.bn1.visit_buffers(&join_path(prefix, "bn1"), f);
        self.bn2.visit_buffers(&join_path(prefix, "bn2"), f);
        if let Some((_, bn)) = &self.downsample {
            bn.visit_buffers(&join_path(prefix, "downsample.1"), f);
        }
    }
}

impl Forward<Tensor> for BasicBlock {
    type Output = Tensor;

    fn forward(&self, input: &Tensor) -> Tensor {
        let out = self.bn1.forward(&self.conv1.forward(input)).relu();
        let out = self.bn2.forward(&self.conv2.forward(&out));
        let shortcut = match &self.downsample {
            Some((conv, bn)) => bn.forward(&conv.forward(input)),
            None => input.clone(),
        };
        out.add(&shortcut).relu()
    }
}

/// A CIFAR-style ResNet: 3x3 stem, three stages of basic blocks with
/// channel widths `[w, 2w, 4w]`, global average pooling and a linear
/// classifier.
#[derive(Debug)]
pub struct ResNet {
    stem_conv: Conv2d,
    stem_bn: BatchNorm2d,
    stages: Vec<Vec<BasicBlock>>,
    fc: Linear,
    feature_dim: usize,
}

impl ResNet {
    /// Creates a ResNet with `blocks_per_stage` blocks in each of the three
    /// stages, base width `width`, on `in_channels` input channels,
    /// predicting `num_classes` logits.
    ///
    /// `blocks_per_stage = 1, width = 16` gives an 8-layer net (the scaled
    /// stand-in used in the benchmarks); `blocks_per_stage = 3` gives a
    /// ResNet-20.
    pub fn new<R: tyxe_rand::Rng + ?Sized>(
        in_channels: usize,
        num_classes: usize,
        blocks_per_stage: usize,
        width: usize,
        rng: &mut R,
    ) -> ResNet {
        assert!(blocks_per_stage >= 1, "ResNet: need at least one block per stage");
        let widths = [width, width * 2, width * 4];
        let stem_conv = Conv2d::with_bias(in_channels, width, 3, 1, 1, false, rng);
        let stem_bn = BatchNorm2d::new(width);
        let mut stages = Vec::new();
        let mut in_ch = width;
        for (s, &w) in widths.iter().enumerate() {
            let mut blocks = Vec::new();
            for b in 0..blocks_per_stage {
                let stride = if s > 0 && b == 0 { 2 } else { 1 };
                blocks.push(BasicBlock::new(in_ch, w, stride, rng));
                in_ch = w;
            }
            stages.push(blocks);
        }
        let fc = Linear::new(in_ch, num_classes, rng);
        ResNet {
            stem_conv,
            stem_bn,
            stages,
            fc,
            feature_dim: in_ch,
        }
    }

    /// The classifier head (the "last layer" of the paper's LL guides).
    pub fn fc(&self) -> &Linear {
        &self.fc
    }

    /// Dimension of the pooled feature vector feeding the classifier.
    pub fn feature_dim(&self) -> usize {
        self.feature_dim
    }

    /// Runs the convolutional trunk, returning pooled features `[N, D]`.
    pub fn features(&self, input: &Tensor) -> Tensor {
        let mut x = self.stem_bn.forward(&self.stem_conv.forward(input)).relu();
        for stage in &self.stages {
            for block in stage {
                x = block.forward(&x);
            }
        }
        x.global_avg_pool2d()
    }
}

impl Module for ResNet {
    fn kind(&self) -> &'static str {
        "ResNet"
    }

    fn visit_params(&self, prefix: &str, f: &mut dyn FnMut(ParamInfo)) {
        self.stem_conv.visit_params(&join_path(prefix, "conv1"), f);
        self.stem_bn.visit_params(&join_path(prefix, "bn1"), f);
        for (s, stage) in self.stages.iter().enumerate() {
            for (b, block) in stage.iter().enumerate() {
                block.visit_params(&join_path(prefix, &format!("layer{}.{b}", s + 1)), f);
            }
        }
        self.fc.visit_params(&join_path(prefix, "fc"), f);
    }

    fn set_training(&self, training: bool) {
        self.stem_bn.set_training(training);
        for stage in &self.stages {
            for block in stage {
                block.set_training(training);
            }
        }
    }

    fn visit_buffers(
        &self,
        prefix: &str,
        f: &mut dyn FnMut(String, &std::cell::RefCell<Vec<f64>>),
    ) {
        self.stem_bn.visit_buffers(&join_path(prefix, "bn1"), f);
        for (s, stage) in self.stages.iter().enumerate() {
            for (b, block) in stage.iter().enumerate() {
                block.visit_buffers(&join_path(prefix, &format!("layer{}.{b}", s + 1)), f);
            }
        }
    }
}

impl Forward<Tensor> for ResNet {
    type Output = Tensor;

    fn forward(&self, input: &Tensor) -> Tensor {
        self.fc.forward(&self.features(input))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tyxe_rand::SeedableRng;

    #[test]
    fn forward_shapes() {
        let mut rng = tyxe_rand::rngs::StdRng::seed_from_u64(0);
        let net = ResNet::new(3, 10, 1, 8, &mut rng);
        let x = Tensor::zeros(&[2, 3, 16, 16]);
        let y = net.forward(&x);
        assert_eq!(y.shape(), &[2, 10]);
        assert_eq!(net.feature_dim(), 32);
    }

    #[test]
    fn parameter_names_include_batchnorm_kinds() {
        let mut rng = tyxe_rand::rngs::StdRng::seed_from_u64(0);
        let net = ResNet::new(3, 10, 1, 8, &mut rng);
        let params = net.named_parameters();
        assert!(params.iter().any(|p| p.name == "conv1.weight"));
        assert!(params.iter().any(|p| p.name == "layer1.0.conv1.weight"));
        assert!(params.iter().any(|p| p.name == "fc.bias"));
        let bn_count = params.iter().filter(|p| p.module_kind == "BatchNorm2d").count();
        // stem + 2 per block + 1 downsample bn per stages 2 & 3, each with 2 params.
        assert_eq!(bn_count, 2 * (1 + 3 * 2 + 2));
    }

    #[test]
    fn downsample_present_only_on_stage_transitions() {
        let mut rng = tyxe_rand::rngs::StdRng::seed_from_u64(0);
        let net = ResNet::new(3, 10, 2, 8, &mut rng);
        let names: Vec<String> = net.named_parameters().into_iter().map(|p| p.name).collect();
        assert!(names.iter().any(|n| n == "layer2.0.downsample.0.weight"));
        assert!(!names.iter().any(|n| n.contains("layer1.0.downsample")));
        assert!(!names.iter().any(|n| n.contains("layer2.1.downsample")));
    }

    #[test]
    fn gradient_reaches_stem() {
        let mut rng = tyxe_rand::rngs::StdRng::seed_from_u64(0);
        let net = ResNet::new(3, 4, 1, 4, &mut rng);
        let x = Tensor::randn(&[2, 3, 8, 8], &mut rng);
        net.forward(&x).square().sum().backward();
        let stem = net
            .named_parameters()
            .into_iter()
            .find(|p| p.name == "conv1.weight")
            .unwrap();
        assert!(stem.param.leaf().grad().is_some());
    }

    #[test]
    fn eval_mode_switches_all_batchnorms() {
        let mut rng = tyxe_rand::rngs::StdRng::seed_from_u64(0);
        let net = ResNet::new(3, 4, 1, 4, &mut rng);
        let x = Tensor::randn(&[4, 3, 8, 8], &mut rng);
        let _ = net.forward(&x); // accumulate running stats
        net.set_training(false);
        // In eval mode repeated forwards are deterministic and identical.
        let a = net.forward(&x).to_vec();
        let b = net.forward(&x).to_vec();
        assert_eq!(a, b);
    }
}
