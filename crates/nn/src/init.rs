//! Weight-initialization schemes (Glorot/Xavier, He/Kaiming, Radford).
//!
//! These double as the `method={"radford", "xavier", "kaiming"}` variance
//! choices of the TyXe `LayerwiseNormalPrior`.

use tyxe_tensor::Tensor;

/// Fan-in / fan-out of a weight shape.
///
/// For a linear weight `[out, in]` fan-in is `in`; for a conv weight
/// `[out, in, kh, kw]` fan-in is `in * kh * kw`.
///
/// # Panics
///
/// Panics on shapes with fewer than one dimension.
pub fn fan_in_out(shape: &[usize]) -> (usize, usize) {
    assert!(!shape.is_empty(), "fan_in_out: parameter must have at least 1 dim");
    if shape.len() == 1 {
        // Bias vectors: treat the single dim as both fans.
        return (shape[0], shape[0]);
    }
    let receptive: usize = shape[2..].iter().product();
    (shape[1] * receptive, shape[0] * receptive)
}

/// Per-element variance used by each initialization scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarianceScheme {
    /// `1 / fan_in` (Neal 1996; used by Radford Neal for BNN priors).
    Radford,
    /// `2 / (fan_in + fan_out)` (Glorot & Bengio 2010).
    Xavier,
    /// `2 / fan_in` (He et al. 2015, for ReLU networks).
    Kaiming,
}

impl VarianceScheme {
    /// The variance this scheme assigns to a parameter of `shape`.
    pub fn variance(self, shape: &[usize]) -> f64 {
        let (fan_in, fan_out) = fan_in_out(shape);
        match self {
            VarianceScheme::Radford => 1.0 / fan_in as f64,
            VarianceScheme::Xavier => 2.0 / (fan_in + fan_out) as f64,
            VarianceScheme::Kaiming => 2.0 / fan_in as f64,
        }
    }

    /// Parses the paper's `method` strings.
    ///
    /// # Errors
    ///
    /// Returns an error message for unknown scheme names.
    pub fn parse(name: &str) -> Result<VarianceScheme, String> {
        match name {
            "radford" => Ok(VarianceScheme::Radford),
            "xavier" => Ok(VarianceScheme::Xavier),
            "kaiming" => Ok(VarianceScheme::Kaiming),
            other => Err(format!("unknown variance scheme {other:?}")),
        }
    }
}

/// Samples a weight tensor from `N(0, scheme.variance(shape))`.
pub fn normal_init<R: tyxe_rand::Rng + ?Sized>(
    shape: &[usize],
    scheme: VarianceScheme,
    rng: &mut R,
) -> Tensor {
    let sd = scheme.variance(shape).sqrt();
    Tensor::randn(shape, rng).mul_scalar(sd)
}

/// Samples a weight tensor from the uniform Kaiming scheme Pytorch uses by
/// default for linear/conv layers: `U(-1/sqrt(fan_in), 1/sqrt(fan_in))`.
pub fn kaiming_uniform<R: tyxe_rand::Rng + ?Sized>(shape: &[usize], rng: &mut R) -> Tensor {
    let (fan_in, _) = fan_in_out(shape);
    let bound = 1.0 / (fan_in as f64).sqrt();
    Tensor::rand_uniform(shape, -bound, bound, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tyxe_rand::SeedableRng;

    #[test]
    fn fans_linear_and_conv() {
        assert_eq!(fan_in_out(&[10, 20]), (20, 10));
        assert_eq!(fan_in_out(&[8, 3, 5, 5]), (75, 200));
        assert_eq!(fan_in_out(&[7]), (7, 7));
    }

    #[test]
    fn scheme_variances() {
        let shape = [10, 20];
        assert!((VarianceScheme::Radford.variance(&shape) - 0.05).abs() < 1e-12);
        assert!((VarianceScheme::Xavier.variance(&shape) - 2.0 / 30.0).abs() < 1e-12);
        assert!((VarianceScheme::Kaiming.variance(&shape) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn parse_known_and_unknown() {
        assert_eq!(VarianceScheme::parse("radford"), Ok(VarianceScheme::Radford));
        assert_eq!(VarianceScheme::parse("xavier"), Ok(VarianceScheme::Xavier));
        assert_eq!(VarianceScheme::parse("kaiming"), Ok(VarianceScheme::Kaiming));
        assert!(VarianceScheme::parse("lecun").is_err());
    }

    #[test]
    fn normal_init_empirical_variance() {
        let mut rng = tyxe_rand::rngs::StdRng::seed_from_u64(0);
        let t = normal_init(&[100, 100], VarianceScheme::Radford, &mut rng);
        let var = t.square().mean().item();
        assert!((var - 0.01).abs() < 0.001, "var {var}");
    }

    #[test]
    fn kaiming_uniform_bounds() {
        let mut rng = tyxe_rand::rngs::StdRng::seed_from_u64(1);
        let t = kaiming_uniform(&[5, 16], &mut rng);
        let bound = 0.25;
        assert!(t.to_vec().iter().all(|&v| v.abs() <= bound));
    }
}
