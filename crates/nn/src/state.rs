//! Whole-module state capture and restoration (the analogue of
//! `state_dict()`/`load_state_dict()`), used to transfer pretrained weights
//! between network instances — plus on-disk persistence in the checksummed
//! binary container format of [`crate::serialize`] (magic `TYXESD`,
//! version 1), used by training checkpoints.

use std::collections::HashMap;
use std::path::Path;

use crate::module::Module;
use crate::serialize::{
    atomic_write, decode_container, encode_container, read_file, ByteReader, ByteWriter, LoadError,
};

/// Container magic for serialized state dicts.
const MAGIC: &[u8; 8] = b"TYXESD\x00\x00";
/// Current (and maximum understood) format version.
const VERSION: u32 = 1;

/// A snapshot of a module's parameters and buffers, keyed by dotted path.
#[derive(Debug, Clone, Default)]
pub struct StateDict {
    params: HashMap<String, Vec<f64>>,
    buffers: HashMap<String, Vec<f64>>,
}

impl StateDict {
    /// Captures the current parameter leaves and buffers of `module`.
    pub fn from_module<M: Module>(module: &M) -> StateDict {
        let mut params = HashMap::new();
        module.visit_params("", &mut |info| {
            params.insert(info.name.clone(), info.param.leaf().to_vec());
        });
        let mut buffers = HashMap::new();
        module.visit_buffers("", &mut |name, buf| {
            buffers.insert(name, buf.borrow().clone());
        });
        StateDict { params, buffers }
    }

    /// Loads the snapshot into a (structurally identical) module.
    ///
    /// # Panics
    ///
    /// Panics if a parameter or buffer of the target is missing from the
    /// snapshot or has a different length.
    pub fn apply<M: Module>(&self, module: &M) {
        module.visit_params("", &mut |info| {
            let data = self
                .params
                .get(&info.name)
                .unwrap_or_else(|| panic!("StateDict: missing parameter {:?}", info.name));
            info.param.load_data(data.clone());
        });
        module.visit_buffers("", &mut |name, buf| {
            let data = self
                .buffers
                .get(&name)
                .unwrap_or_else(|| panic!("StateDict: missing buffer {name:?}"));
            assert_eq!(data.len(), buf.borrow().len(), "StateDict: buffer {name} length");
            *buf.borrow_mut() = data.clone();
        });
    }

    /// Number of parameter entries.
    pub fn num_params(&self) -> usize {
        self.params.len()
    }

    /// Number of buffer entries.
    pub fn num_buffers(&self) -> usize {
        self.buffers.len()
    }

    /// Reads one parameter entry.
    pub fn param(&self, name: &str) -> Option<&[f64]> {
        self.params.get(name).map(Vec::as_slice)
    }

    /// Reads one buffer entry.
    pub fn buffer(&self, name: &str) -> Option<&[f64]> {
        self.buffers.get(name).map(Vec::as_slice)
    }

    /// Inserts (or replaces) a parameter entry. Lets callers assemble
    /// synthetic state dicts — e.g. a checkpoint naming optimizer slots
    /// that never lived on a module.
    pub fn insert_param(&mut self, name: impl Into<String>, data: Vec<f64>) {
        self.params.insert(name.into(), data);
    }

    /// Inserts (or replaces) a buffer entry.
    pub fn insert_buffer(&mut self, name: impl Into<String>, data: Vec<f64>) {
        self.buffers.insert(name.into(), data);
    }

    /// Parameter names in sorted (serialization) order.
    pub fn param_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.params.keys().map(String::as_str).collect();
        names.sort_unstable();
        names
    }

    /// Buffer names in sorted (serialization) order.
    pub fn buffer_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.buffers.keys().map(String::as_str).collect();
        names.sort_unstable();
        names
    }

    // -----------------------------------------------------------------
    // On-disk persistence
    // -----------------------------------------------------------------

    /// Encodes the snapshot into the checksummed container format.
    ///
    /// Entries are written in sorted name order, so encoding is canonical:
    /// two state dicts with bitwise-equal contents produce byte-identical
    /// files regardless of hash-map iteration order.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        for map in [&self.params, &self.buffers] {
            let mut names: Vec<&String> = map.keys().collect();
            names.sort_unstable();
            w.put_u64(names.len() as u64);
            for name in names {
                w.put_str(name);
                w.put_f64_slice(&map[name]);
            }
        }
        encode_container(MAGIC, VERSION, &w.into_bytes())
    }

    /// Decodes a snapshot from bytes produced by [`StateDict::to_bytes`],
    /// verifying magic, version and checksum.
    pub fn from_bytes(bytes: &[u8]) -> Result<StateDict, LoadError> {
        let (_version, payload) = decode_container(bytes, MAGIC, VERSION)?;
        let mut r = ByteReader::new(payload);
        let mut maps = [HashMap::new(), HashMap::new()];
        for map in &mut maps {
            let count = r.get_u64()?;
            for _ in 0..count {
                let name = r.get_str()?;
                let data = r.get_f64_slice()?;
                if map.insert(name, data).is_some() {
                    return Err(LoadError::Malformed("duplicate entry name"));
                }
            }
        }
        if !r.is_exhausted() {
            return Err(LoadError::Malformed("trailing bytes in state dict payload"));
        }
        let [params, buffers] = maps;
        Ok(StateDict { params, buffers })
    }

    /// Saves the snapshot to `path` atomically (temp file + rename): a
    /// crash mid-save leaves the previous file intact, never a torn one.
    pub fn save(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        atomic_write(path.as_ref(), &self.to_bytes())
    }

    /// Loads a snapshot saved by [`StateDict::save`]. Corruption (bit
    /// flips, truncation, foreign files) is detected via the container
    /// checksum and reported as a typed [`LoadError`].
    pub fn load(path: impl AsRef<Path>) -> Result<StateDict, LoadError> {
        StateDict::from_bytes(&read_file(path.as_ref())?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::mlp;
    use crate::module::{Forward, Module};
    use crate::resnet::ResNet;
    use tyxe_rand::SeedableRng;
    use tyxe_tensor::Tensor;

    #[test]
    fn roundtrip_mlp() {
        let mut rng = tyxe_rand::rngs::StdRng::seed_from_u64(0);
        let a = mlp(&[2, 4, 2], true, &mut rng);
        let b = mlp(&[2, 4, 2], true, &mut rng);
        let x = Tensor::randn(&[3, 2], &mut rng);
        assert_ne!(a.forward(&x).to_vec(), b.forward(&x).to_vec());
        StateDict::from_module(&a).apply(&b);
        assert_eq!(a.forward(&x).to_vec(), b.forward(&x).to_vec());
    }

    #[test]
    fn resnet_transfer_includes_running_stats() {
        let mut rng = tyxe_rand::rngs::StdRng::seed_from_u64(0);
        let a = ResNet::new(3, 4, 1, 4, &mut rng);
        let x = Tensor::randn(&[4, 3, 8, 8], &mut rng);
        for _ in 0..5 {
            let _ = a.forward(&x); // move BatchNorm running stats
        }
        a.set_training(false);
        let sd = StateDict::from_module(&a);
        assert!(sd.num_buffers() > 0, "no buffers captured");

        let b = ResNet::new(3, 4, 1, 4, &mut rng);
        b.set_training(false);
        sd.apply(&b);
        assert_eq!(a.forward(&x).to_vec(), b.forward(&x).to_vec());
    }

    #[test]
    #[should_panic]
    fn missing_entry_panics() {
        let mut rng = tyxe_rand::rngs::StdRng::seed_from_u64(0);
        let small = mlp(&[2, 2], true, &mut rng);
        let big = mlp(&[2, 4, 2], true, &mut rng);
        StateDict::from_module(&small).apply(&big);
    }

    fn tmp_path(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("tyxe-state-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{tag}.tyxe"))
    }

    #[test]
    fn save_load_roundtrip_is_bitwise_identical() {
        // Property: any synthetic state dict round-trips through disk with
        // every f64 bit pattern intact, including NaN/-0.0/subnormals.
        tyxe_rand::prop_check!(24, |g| {
            let mut sd = StateDict::default();
            let n_params = g.usize_in(0, 6);
            for i in 0..n_params {
                let len = g.usize_in(1, 40);
                let data: Vec<f64> = (0..len)
                    .map(|j| match g.usize_in(0, 8) {
                        0 => f64::NAN,
                        1 => -0.0,
                        2 => f64::INFINITY,
                        3 => f64::MIN_POSITIVE / 2.0, // subnormal
                        _ => g.f64_in(-1e6, 1e6) * (j as f64 + 1.0),
                    })
                    .collect();
                sd.insert_param(format!("layer{i}.weight"), data);
            }
            let n_buffers = g.usize_in(0, 3);
            for i in 0..n_buffers {
                let len = g.usize_in(1, 10);
                sd.insert_buffer(format!("bn{i}.running_mean"), vec![g.f64_in(-10.0, 10.0); len]);
            }
            let path = tmp_path(&format!("roundtrip-{:x}", g.seed()));
            sd.save(&path).unwrap();
            let loaded = StateDict::load(&path).unwrap();
            std::fs::remove_file(&path).unwrap();

            assert_eq!(loaded.num_params(), sd.num_params());
            assert_eq!(loaded.num_buffers(), sd.num_buffers());
            for name in sd.param_names() {
                let (a, b) = (sd.param(name).unwrap(), loaded.param(name).unwrap());
                assert_eq!(a.len(), b.len());
                assert!(
                    a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits()),
                    "bits drifted at {name}"
                );
            }
        });
    }

    #[test]
    fn module_roundtrip_through_disk_restores_forward() {
        let mut rng = tyxe_rand::rngs::StdRng::seed_from_u64(3);
        let a = mlp(&[2, 6, 2], true, &mut rng);
        let b = mlp(&[2, 6, 2], true, &mut rng);
        let x = Tensor::randn(&[5, 2], &mut rng);
        let path = tmp_path("module");
        StateDict::from_module(&a).save(&path).unwrap();
        StateDict::load(&path).unwrap().apply(&b);
        std::fs::remove_file(&path).unwrap();
        assert_eq!(a.forward(&x).to_vec(), b.forward(&x).to_vec());
    }

    #[test]
    fn corrupted_byte_is_rejected_by_checksum() {
        let mut sd = StateDict::default();
        sd.insert_param("w", vec![1.0, 2.0, 3.0]);
        let path = tmp_path("corrupt");
        sd.save(&path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip one payload byte (past the 20-byte header) and rewrite.
        let idx = 24.min(bytes.len() - 1);
        bytes[idx] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        match StateDict::load(&path) {
            Err(crate::serialize::LoadError::ChecksumMismatch { .. }) => {}
            other => panic!("expected checksum rejection, got {other:?}"),
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncated_file_is_rejected() {
        let mut sd = StateDict::default();
        sd.insert_param("w", vec![1.0; 16]);
        let path = tmp_path("truncated");
        sd.save(&path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert!(StateDict::load(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn foreign_file_is_rejected_as_bad_magic() {
        let path = tmp_path("foreign");
        std::fs::write(&path, b"definitely not a tyxe state dict").unwrap();
        match StateDict::load(&path) {
            Err(crate::serialize::LoadError::BadMagic) => {}
            other => panic!("expected BadMagic, got {other:?}"),
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn canonical_encoding_is_insertion_order_independent() {
        let mut a = StateDict::default();
        a.insert_param("z", vec![1.0]);
        a.insert_param("a", vec![2.0]);
        let mut b = StateDict::default();
        b.insert_param("a", vec![2.0]);
        b.insert_param("z", vec![1.0]);
        assert_eq!(a.to_bytes(), b.to_bytes());
    }
}
