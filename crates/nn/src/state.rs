//! Whole-module state capture and restoration (the analogue of
//! `state_dict()`/`load_state_dict()`), used to transfer pretrained weights
//! between network instances.

use std::collections::HashMap;

use crate::module::Module;

/// A snapshot of a module's parameters and buffers, keyed by dotted path.
#[derive(Debug, Clone, Default)]
pub struct StateDict {
    params: HashMap<String, Vec<f64>>,
    buffers: HashMap<String, Vec<f64>>,
}

impl StateDict {
    /// Captures the current parameter leaves and buffers of `module`.
    pub fn from_module<M: Module>(module: &M) -> StateDict {
        let mut params = HashMap::new();
        module.visit_params("", &mut |info| {
            params.insert(info.name.clone(), info.param.leaf().to_vec());
        });
        let mut buffers = HashMap::new();
        module.visit_buffers("", &mut |name, buf| {
            buffers.insert(name, buf.borrow().clone());
        });
        StateDict { params, buffers }
    }

    /// Loads the snapshot into a (structurally identical) module.
    ///
    /// # Panics
    ///
    /// Panics if a parameter or buffer of the target is missing from the
    /// snapshot or has a different length.
    pub fn apply<M: Module>(&self, module: &M) {
        module.visit_params("", &mut |info| {
            let data = self
                .params
                .get(&info.name)
                .unwrap_or_else(|| panic!("StateDict: missing parameter {:?}", info.name));
            info.param.load_data(data.clone());
        });
        module.visit_buffers("", &mut |name, buf| {
            let data = self
                .buffers
                .get(&name)
                .unwrap_or_else(|| panic!("StateDict: missing buffer {name:?}"));
            assert_eq!(data.len(), buf.borrow().len(), "StateDict: buffer {name} length");
            *buf.borrow_mut() = data.clone();
        });
    }

    /// Number of parameter entries.
    pub fn num_params(&self) -> usize {
        self.params.len()
    }

    /// Number of buffer entries.
    pub fn num_buffers(&self) -> usize {
        self.buffers.len()
    }

    /// Reads one parameter entry.
    pub fn param(&self, name: &str) -> Option<&[f64]> {
        self.params.get(name).map(Vec::as_slice)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::mlp;
    use crate::module::{Forward, Module};
    use crate::resnet::ResNet;
    use tyxe_rand::SeedableRng;
    use tyxe_tensor::Tensor;

    #[test]
    fn roundtrip_mlp() {
        let mut rng = tyxe_rand::rngs::StdRng::seed_from_u64(0);
        let a = mlp(&[2, 4, 2], true, &mut rng);
        let b = mlp(&[2, 4, 2], true, &mut rng);
        let x = Tensor::randn(&[3, 2], &mut rng);
        assert_ne!(a.forward(&x).to_vec(), b.forward(&x).to_vec());
        StateDict::from_module(&a).apply(&b);
        assert_eq!(a.forward(&x).to_vec(), b.forward(&x).to_vec());
    }

    #[test]
    fn resnet_transfer_includes_running_stats() {
        let mut rng = tyxe_rand::rngs::StdRng::seed_from_u64(0);
        let a = ResNet::new(3, 4, 1, 4, &mut rng);
        let x = Tensor::randn(&[4, 3, 8, 8], &mut rng);
        for _ in 0..5 {
            let _ = a.forward(&x); // move BatchNorm running stats
        }
        a.set_training(false);
        let sd = StateDict::from_module(&a);
        assert!(sd.num_buffers() > 0, "no buffers captured");

        let b = ResNet::new(3, 4, 1, 4, &mut rng);
        b.set_training(false);
        sd.apply(&b);
        assert_eq!(a.forward(&x).to_vec(), b.forward(&x).to_vec());
    }

    #[test]
    #[should_panic]
    fn missing_entry_panics() {
        let mut rng = tyxe_rand::rngs::StdRng::seed_from_u64(0);
        let small = mlp(&[2, 2], true, &mut rng);
        let big = mlp(&[2, 4, 2], true, &mut rng);
        StateDict::from_module(&small).apply(&big);
    }
}
