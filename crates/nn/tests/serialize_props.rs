//! Property tests for the checkpoint container's failure behavior: a
//! truncated `StateDict` file — at *every* prefix length — must produce
//! a clean [`LoadError`], never a panic and never a partially decoded
//! dict, and only the complete byte string round-trips.

use std::path::PathBuf;

use tyxe_nn::serialize::LoadError;
use tyxe_nn::StateDict;
use tyxe_rand::prop_check;

fn tmp_path(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tyxe-serialize-props-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{tag}.ckpt"))
}

/// A small random dict: a few params and buffers with arbitrary finite
/// and non-finite values (NaN bit patterns must round-trip too, so they
/// must not confuse truncation handling either).
fn random_dict(g: &mut tyxe_rand::prop::Gen) -> StateDict {
    let mut sd = StateDict::default();
    for i in 0..g.usize_in(0, 4) {
        let data: Vec<f64> = (0..g.usize_in(1, 8))
            .map(|_| {
                if g.bool() {
                    g.f64_in(-1e6, 1e6)
                } else {
                    f64::from_bits(g.u64())
                }
            })
            .collect();
        sd.insert_param(format!("param.{i}"), data);
    }
    for i in 0..g.usize_in(0, 3) {
        let data: Vec<f64> = (0..g.usize_in(1, 6)).map(|_| g.f64_in(-10.0, 10.0)).collect();
        sd.insert_buffer(format!("buffer.{i}"), data);
    }
    sd
}

#[test]
fn every_truncated_prefix_is_a_clean_error() {
    prop_check!(24, |g| {
        let sd = random_dict(g);
        let bytes = sd.to_bytes();

        // In memory: every strict prefix must decode to an error. The
        // decoder is pure Rust over a byte slice, so "clean" means it
        // returns `Err` — an out-of-bounds read or arithmetic overflow
        // would panic and fail the property.
        for len in 0..bytes.len() {
            match StateDict::from_bytes(&bytes[..len]) {
                Err(_) => {}
                Ok(_) => panic!("prefix of {len}/{} bytes decoded successfully", bytes.len()),
            }
        }
        // Only the complete byte string is accepted, and bit-exactly.
        let full = StateDict::from_bytes(&bytes).expect("complete bytes must load");
        assert_eq!(full.num_params(), sd.num_params());
        assert_eq!(full.num_buffers(), sd.num_buffers());
        for name in sd.param_names() {
            let (a, b) = (sd.param(name).unwrap(), full.param(name).unwrap());
            assert!(
                a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits()),
                "param {name} drifted through the round trip"
            );
        }
        for name in sd.buffer_names() {
            let (a, b) = (sd.buffer(name).unwrap(), full.buffer(name).unwrap());
            assert!(
                a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits()),
                "buffer {name} drifted through the round trip"
            );
        }
    });
}

#[test]
fn truncated_files_on_disk_are_clean_errors_at_a_sampled_prefix() {
    // The on-disk path adds the io layer; exercising every prefix
    // through the filesystem is slow, so each case samples one.
    prop_check!(24, |g| {
        let sd = random_dict(g);
        let path = tmp_path(&format!("trunc-{:x}", g.seed()));
        sd.save(&path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        let cut = g.usize_in(0, bytes.len());
        std::fs::write(&path, &bytes[..cut]).unwrap();
        match StateDict::load(&path) {
            Err(_) => {}
            Ok(_) => panic!("file truncated to {cut}/{} bytes loaded successfully", bytes.len()),
        }
        std::fs::remove_file(&path).unwrap();
    });
}

#[test]
fn trailing_garbage_is_rejected() {
    prop_check!(24, |g| {
        let sd = random_dict(g);
        let mut bytes = sd.to_bytes();
        for _ in 0..g.usize_in(1, 16) {
            bytes.push(g.u64() as u8);
        }
        assert!(
            StateDict::from_bytes(&bytes).is_err(),
            "bytes with a trailing suffix must not decode"
        );
    });
}

#[test]
fn missing_file_is_an_io_error() {
    let path = tmp_path("definitely-missing");
    let _ = std::fs::remove_file(&path);
    match StateDict::load(&path) {
        Err(LoadError::Io(_)) => {}
        other => panic!("expected LoadError::Io, got {other:?}"),
    }
}
