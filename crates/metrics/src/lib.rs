//! `tyxe-metrics`: the uncertainty-quantification metrics used by the TyXe
//! paper's evaluation — negative log likelihood, accuracy, expected
//! calibration error, calibration curves, AUROC for OOD detection, and
//! predictive-entropy ECDFs.

use tyxe_tensor::Tensor;

/// Classification accuracy of predicted probabilities `[n, c]` against
/// integer labels `[n]`.
///
/// # Panics
///
/// Panics if shapes are inconsistent.
pub fn accuracy(probs: &Tensor, labels: &Tensor) -> f64 {
    assert_eq!(probs.ndim(), 2, "accuracy: probs must be [n, c]");
    let n = probs.shape()[0];
    assert_eq!(labels.numel(), n, "accuracy: label count mismatch");
    let pred = probs.argmax_axis(1);
    let l = labels.to_vec();
    let correct = pred
        .iter()
        .zip(l.iter())
        .filter(|(&p, &y)| p == y as usize)
        .count();
    correct as f64 / n as f64
}

/// Average negative log likelihood of labels under predicted probabilities
/// (clamped away from zero for numerical safety).
pub fn nll(probs: &Tensor, labels: &Tensor) -> f64 {
    let idx: Vec<usize> = labels.to_vec().iter().map(|&v| v as usize).collect();
    -probs.clamp_min(1e-12).ln().gather_rows(&idx).mean().item()
}

/// One bin of a calibration curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CalibrationBin {
    /// Mean confidence (max predicted probability) of points in the bin.
    pub confidence: f64,
    /// Empirical accuracy of points in the bin.
    pub accuracy: f64,
    /// Number of points in the bin.
    pub count: usize,
}

/// Computes an equal-width calibration curve over the max predicted
/// probability (the reliability diagram of Figure 2).
///
/// Empty bins are returned with `count == 0` and NaN-free zero statistics.
pub fn calibration_curve(probs: &Tensor, labels: &Tensor, num_bins: usize) -> Vec<CalibrationBin> {
    assert!(num_bins > 0, "calibration_curve: need at least one bin");
    let n = probs.shape()[0];
    let pred = probs.argmax_axis(1);
    let conf: Vec<f64> = (0..n)
        .map(|i| probs.at(&[i, pred[i]]))
        .collect();
    let l = labels.to_vec();

    let mut sums = vec![(0.0, 0.0, 0usize); num_bins];
    for i in 0..n {
        let b = ((conf[i] * num_bins as f64) as usize).min(num_bins - 1);
        sums[b].0 += conf[i];
        sums[b].1 += f64::from(u8::from(pred[i] == l[i] as usize));
        sums[b].2 += 1;
    }
    sums.into_iter()
        .map(|(c, a, k)| CalibrationBin {
            confidence: if k > 0 { c / k as f64 } else { 0.0 },
            accuracy: if k > 0 { a / k as f64 } else { 0.0 },
            count: k,
        })
        .collect()
}

/// Expected calibration error with `num_bins` equal-width bins (Table 1
/// and Table 2 use percentages; this returns a fraction in `[0, 1]`).
pub fn ece(probs: &Tensor, labels: &Tensor, num_bins: usize) -> f64 {
    let n = probs.shape()[0] as f64;
    calibration_curve(probs, labels, num_bins)
        .iter()
        .map(|b| b.count as f64 / n * (b.accuracy - b.confidence).abs())
        .sum()
}

/// Area under the ROC curve for separating two score samples (higher score
/// should indicate the positive class). Computed by the Mann-Whitney
/// statistic with tie correction.
///
/// # Panics
///
/// Panics if either side is empty.
pub fn auroc(scores_negative: &[f64], scores_positive: &[f64]) -> f64 {
    assert!(
        !scores_negative.is_empty() && !scores_positive.is_empty(),
        "auroc: both classes need scores"
    );
    // Rank-based computation.
    let mut all: Vec<(f64, bool)> = scores_negative
        .iter()
        .map(|&s| (s, false))
        .chain(scores_positive.iter().map(|&s| (s, true)))
        .collect();
    all.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("scores must not be NaN"));
    // Assign average ranks to ties.
    let n = all.len();
    let mut ranks = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && all[j + 1].0 == all[i].0 {
            j += 1;
        }
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for r in ranks.iter_mut().take(j + 1).skip(i) {
            *r = avg;
        }
        i = j + 1;
    }
    let n_pos = scores_positive.len() as f64;
    let n_neg = scores_negative.len() as f64;
    let rank_sum: f64 = all
        .iter()
        .zip(&ranks)
        .filter(|((_, is_pos), _)| *is_pos)
        .map(|(_, &r)| r)
        .sum();
    (rank_sum - n_pos * (n_pos + 1.0) / 2.0) / (n_pos * n_neg)
}

/// Predictive entropy of each probability row of `[n, c]`, in nats.
pub fn predictive_entropy(probs: &Tensor) -> Vec<f64> {
    let (n, c) = (probs.shape()[0], probs.shape()[1]);
    let d = probs.to_vec();
    (0..n)
        .map(|i| {
            -(0..c)
                .map(|j| {
                    let p = d[i * c + j].max(1e-12);
                    p * p.ln()
                })
                .sum::<f64>()
        })
        .collect()
}

/// Maximum predicted probability per row (the OOD detection score used by
/// the paper: lower max-probability on OOD data = better separation).
pub fn max_probability(probs: &Tensor) -> Vec<f64> {
    let n = probs.shape()[0];
    let pred = probs.argmax_axis(1);
    (0..n).map(|i| probs.at(&[i, pred[i]])).collect()
}

/// Empirical CDF of `values` evaluated at `points` (for the entropy ECDF
/// plots of Figure 2).
pub fn ecdf(values: &[f64], points: &[f64]) -> Vec<f64> {
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("values must not be NaN"));
    points
        .iter()
        .map(|&p| {
            let idx = sorted.partition_point(|&v| v <= p);
            idx as f64 / sorted.len() as f64
        })
        .collect()
}

/// Multiclass Brier score: mean squared distance between the predicted
/// probability vector and the one-hot label.
pub fn brier_score(probs: &Tensor, labels: &Tensor) -> f64 {
    let (n, c) = (probs.shape()[0], probs.shape()[1]);
    let p = probs.to_vec();
    let l = labels.to_vec();
    let mut total = 0.0;
    for i in 0..n {
        for j in 0..c {
            let target = f64::from(u8::from(l[i] as usize == j));
            total += (p[i * c + j] - target).powi(2);
        }
    }
    total / n as f64
}

/// Area under the precision-recall curve for separating two score samples
/// (positives should score higher), computed by sweeping thresholds at
/// every observed score.
///
/// # Panics
///
/// Panics if either side is empty.
pub fn auprc(scores_negative: &[f64], scores_positive: &[f64]) -> f64 {
    assert!(
        !scores_negative.is_empty() && !scores_positive.is_empty(),
        "auprc: both classes need scores"
    );
    let mut all: Vec<(f64, bool)> = scores_negative
        .iter()
        .map(|&s| (s, false))
        .chain(scores_positive.iter().map(|&s| (s, true)))
        .collect();
    // Descending by score: iterate thresholds from most to least confident.
    all.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("scores must not be NaN"));
    let total_pos = scores_positive.len() as f64;
    let (mut tp, mut fp) = (0.0, 0.0);
    let mut auc = 0.0;
    let mut prev_recall = 0.0;
    let mut i = 0;
    while i < all.len() {
        // Advance over ties as one threshold step.
        let mut j = i;
        while j < all.len() && all[j].0 == all[i].0 {
            if all[j].1 {
                tp += 1.0;
            } else {
                fp += 1.0;
            }
            j += 1;
        }
        let recall = tp / total_pos;
        let precision = tp / (tp + fp);
        auc += (recall - prev_recall) * precision;
        prev_recall = recall;
        i = j;
    }
    auc
}

/// Mean and twice the standard error of a sample (the paper reports
/// `mean ± 2 s.e.` over five runs).
pub fn mean_and_2se(values: &[f64]) -> (f64, f64) {
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    if values.len() < 2 {
        return (mean, 0.0);
    }
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (n - 1.0);
    (mean, 2.0 * (var / n).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn probs(rows: &[&[f64]]) -> Tensor {
        let c = rows[0].len();
        let data: Vec<f64> = rows.iter().flat_map(|r| r.iter().copied()).collect();
        Tensor::from_vec(data, &[rows.len(), c])
    }

    #[test]
    fn accuracy_counts_argmax_matches() {
        let p = probs(&[&[0.9, 0.1], &[0.3, 0.7], &[0.6, 0.4]]);
        let y = Tensor::from_vec(vec![0.0, 1.0, 1.0], &[3]);
        assert!((accuracy(&p, &y) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn nll_of_perfect_prediction_is_zero() {
        let p = probs(&[&[1.0, 0.0]]);
        let y = Tensor::from_vec(vec![0.0], &[1]);
        assert!(nll(&p, &y).abs() < 1e-9);
        let y_wrong = Tensor::from_vec(vec![1.0], &[1]);
        assert!(nll(&p, &y_wrong) > 10.0);
    }

    #[test]
    fn ece_zero_for_perfectly_calibrated() {
        // Confidence 1.0, always correct.
        let p = probs(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let y = Tensor::from_vec(vec![0.0, 1.0], &[2]);
        assert!(ece(&p, &y, 10) < 1e-12);
    }

    #[test]
    fn ece_detects_overconfidence() {
        // Confidence 0.9 but accuracy 0.5 -> ECE = 0.4.
        let p = probs(&[&[0.9, 0.1], &[0.9, 0.1]]);
        let y = Tensor::from_vec(vec![0.0, 1.0], &[2]);
        assert!((ece(&p, &y, 10) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn calibration_curve_bins_confidences() {
        let p = probs(&[&[0.55, 0.45], &[0.95, 0.05]]);
        let y = Tensor::from_vec(vec![0.0, 1.0], &[2]);
        let curve = calibration_curve(&p, &y, 10);
        assert_eq!(curve.len(), 10);
        assert_eq!(curve[5].count, 1); // 0.55 in [0.5, 0.6)
        assert_eq!(curve[5].accuracy, 1.0);
        assert_eq!(curve[9].count, 1); // 0.95 in [0.9, 1.0]
        assert_eq!(curve[9].accuracy, 0.0);
        let total: usize = curve.iter().map(|b| b.count).sum();
        assert_eq!(total, 2);
    }

    #[test]
    fn auroc_perfect_and_random() {
        assert!((auroc(&[0.1, 0.2], &[0.8, 0.9]) - 1.0).abs() < 1e-12);
        assert!((auroc(&[0.8, 0.9], &[0.1, 0.2]) - 0.0).abs() < 1e-12);
        // Identical distributions: ties -> 0.5.
        assert!((auroc(&[0.5, 0.5], &[0.5, 0.5]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn auroc_interleaved() {
        // neg: 1, 3; pos: 2, 4 -> pairs won: (2>1), (4>1), (4>3) = 3/4.
        assert!((auroc(&[1.0, 3.0], &[2.0, 4.0]) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn entropy_uniform_is_maximal() {
        let p = probs(&[&[0.5, 0.5], &[1.0, 0.0]]);
        let h = predictive_entropy(&p);
        assert!((h[0] - (2.0f64).ln()).abs() < 1e-9);
        assert!(h[1].abs() < 1e-9);
    }

    #[test]
    fn ecdf_monotone_and_bounded() {
        let vals = [1.0, 2.0, 3.0, 4.0];
        let e = ecdf(&vals, &[0.0, 1.5, 2.5, 10.0]);
        assert_eq!(e, vec![0.0, 0.25, 0.5, 1.0]);
    }

    #[test]
    fn mean_and_2se_matches_manual() {
        let (m, se2) = mean_and_2se(&[1.0, 2.0, 3.0]);
        assert!((m - 2.0).abs() < 1e-12);
        // var = 1, se = 1/sqrt(3), 2se = 2/sqrt(3)
        assert!((se2 - 2.0 / 3.0f64.sqrt()).abs() < 1e-12);
        assert_eq!(mean_and_2se(&[5.0]), (5.0, 0.0));
    }

    #[test]
    fn brier_perfect_and_worst() {
        let p = probs(&[&[1.0, 0.0]]);
        assert!(brier_score(&p, &Tensor::zeros(&[1])).abs() < 1e-12);
        assert!((brier_score(&p, &Tensor::from_vec(vec![1.0], &[1])) - 2.0).abs() < 1e-12);
        // Uniform prediction over 2 classes: (0.5^2 + 0.5^2) = 0.5.
        let u = probs(&[&[0.5, 0.5]]);
        assert!((brier_score(&u, &Tensor::zeros(&[1])) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn auprc_perfect_separation_is_one() {
        assert!((auprc(&[0.1, 0.2], &[0.8, 0.9]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn auprc_random_equals_base_rate() {
        // Identical scores: precision at full recall = prevalence.
        let a = auprc(&[0.5; 3], &[0.5; 1]);
        assert!((a - 0.25).abs() < 1e-12, "{a}");
    }

    #[test]
    fn max_probability_extracts_confidence() {
        let p = probs(&[&[0.2, 0.8], &[0.6, 0.4]]);
        assert_eq!(max_probability(&p), vec![0.8, 0.6]);
    }
}
