//! Minimal wall-clock benchmark harness, replacing the external
//! `criterion` dependency with the same call-site API surface:
//! `Criterion::default().sample_size(n)`, `bench_function`,
//! `benchmark_group`, and the `criterion_group!` / `criterion_main!`
//! macros (re-exported at the crate root as `bench_group!` aliases too).
//!
//! Methodology: each benchmark first runs a short calibration phase to
//! pick an iteration count that makes one sample take ≳2 ms (so timer
//! granularity is negligible), then records `sample_size` samples and
//! reports min / median / mean per-iteration times. No statistics beyond
//! that — the goal is a dependable relative signal (e.g. the paper's
//! "local reparameterization costs ~2x") from a hermetic build, not
//! confidence intervals.
//!
//! `TYXE_BENCH_FAST=1` drops to one sample of one iteration per
//! benchmark, which is how the bench binaries are smoke-tested in CI.
//!
//! `TYXE_BENCH_FILTER=<substring>` skips every benchmark whose full name
//! does not contain the substring (skipped cases report all-zero stats
//! and emit nothing). `scripts/bench.sh` uses it to re-run just the
//! full-SVI-step cases under `TYXE_POOL=0` / `=1`.
//!
//! `TYXE_BENCH_JSON=<path>` additionally appends one JSON object per
//! benchmark to `<path>` (JSON-lines). Each line carries the legacy keys
//! `{"name":…,"min_ns":…,"median_ns":…,"mean_ns":…}` first — which
//! `scripts/bench.sh` and existing `results/BENCH_TENSOR.json` readers key
//! on — followed by the `tyxe-obs` metric-record keys `"value"` (the
//! median), `"unit":"ns"` and `"tags"` (stat/source, the `dtype` the
//! case ran at — `TYXE_BENCH_DTYPE`, default `"f64"` — plus the active
//! `TYXE_NUM_THREADS`, when set), so bench output and
//! [`tyxe_obs::metrics::snapshot_jsonl`] share one schema.

use std::io::Write;
use std::time::{Duration, Instant};

/// Target duration for a single measured sample during calibration.
const TARGET_SAMPLE: Duration = Duration::from_millis(2);

/// The dtype tag stamped on every JSON line: `TYXE_BENCH_DTYPE` when the
/// running benchmark set it (`"f32"`, `"mixed"`), `"f64"` otherwise —
/// the substrate's default storage dtype. `scripts/bench.sh` groups the
/// per-dtype sections of `results/BENCH_SVI.json` by this tag.
fn dtype_tag() -> String {
    std::env::var("TYXE_BENCH_DTYPE").unwrap_or_else(|_| "f64".to_string())
}

/// Per-iteration timing summary returned by
/// [`Criterion::bench_function_stats`].
#[derive(Debug, Clone, Copy)]
pub struct BenchStats {
    /// Fastest sample, nanoseconds per iteration.
    pub min_ns: u128,
    /// Median sample, nanoseconds per iteration.
    pub median_ns: u128,
    /// Mean across samples, nanoseconds per iteration.
    pub mean_ns: u128,
}

fn append_json_line(path: &std::ffi::OsStr, line: &str) {
    std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .and_then(|mut f| f.write_all(line.as_bytes()))
        .unwrap_or_else(|e| eprintln!("bench: cannot append to {}: {e}", path.to_string_lossy()));
}

/// Runs a full-training-step benchmark and reports, alongside the usual
/// timing columns, `steps/sec` and the buffer-pool allocation counters
/// (`tensor.alloc.pool_hit` / `pool_miss` deltas across the whole run,
/// calibration included — calibration doubles as pool warmup). When
/// `TYXE_BENCH_JSON` is set, appends a second JSON line named
/// `<name>/pool` carrying `steps_per_sec`, `pool_hit`, `pool_miss`,
/// `hit_ratio` and `pool_enabled`; `scripts/bench.sh` reshapes those
/// lines into `results/BENCH_SVI.json`.
pub fn bench_with_pool_stats(
    c: &mut Criterion,
    name: &str,
    f: impl FnMut(&mut Bencher),
) -> BenchStats {
    let hit = tyxe_obs::metrics::counter("tensor.alloc.pool_hit");
    let miss = tyxe_obs::metrics::counter("tensor.alloc.pool_miss");
    let (h0, m0) = (hit.get(), miss.get());
    let stats = c.bench_function_stats(name, f);
    if stats.median_ns == 0 {
        // Filtered out (TYXE_BENCH_FILTER) — nothing ran, nothing to report.
        return stats;
    }
    let (dh, dm) = (hit.get() - h0, miss.get() - m0);
    let steps_per_sec = 1e9 / stats.median_ns.max(1) as f64;
    let hit_ratio = if dh + dm > 0 {
        dh as f64 / (dh + dm) as f64
    } else {
        0.0
    };
    let pool_on = std::env::var("TYXE_POOL").as_deref().map_or(true, |v| v.trim() != "0");
    println!(
        "bench {name:<40} steps/sec {steps_per_sec:>10.2}  pool_hit {dh:>9}  pool_miss {dm:>9}  hit_ratio {hit_ratio:.3}  (pool {})",
        if pool_on { "on" } else { "off" },
    );
    if let Some(path) = std::env::var_os("TYXE_BENCH_JSON") {
        let line = format!(
            "{{\"name\":\"{}/pool\",\"steps_per_sec\":{steps_per_sec:.3},\"median_ns\":{},\"pool_hit\":{dh},\"pool_miss\":{dm},\"hit_ratio\":{hit_ratio:.4},\"pool_enabled\":{pool_on},\"value\":{steps_per_sec:.3},\"unit\":\"steps_per_sec\",\"tags\":{{\"source\":\"bench\",\"dtype\":\"{}\"}}}}\n",
            tyxe_obs::json::escape(name),
            stats.median_ns,
            tyxe_obs::json::escape(&dtype_tag()),
        );
        append_json_line(&path, &line);
    }
    stats
}

/// Drives iteration timing inside a benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f` for the calibrated number of iterations.
    pub fn iter<T>(&mut self, mut f: impl FnMut() -> T) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Top-level harness state; mirrors `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 20 }
    }
}

fn fast_mode() -> bool {
    std::env::var_os("TYXE_BENCH_FAST").is_some_and(|v| v != "0")
}

/// `TYXE_BENCH_FILTER` predicate: empty filter runs everything,
/// otherwise only names containing the substring run.
fn name_passes_filter(name: &str, filter: &str) -> bool {
    filter.is_empty() || name.contains(filter)
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark records.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function(
        &mut self,
        name: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Criterion {
        self.bench_function_stats(name, f);
        self
    }

    /// Runs one named benchmark and returns its timing summary, for
    /// callers that derive additional columns (e.g. the SVI steps/sec +
    /// pool-counter report in [`bench_with_pool_stats`]).
    pub fn bench_function_stats(
        &mut self,
        name: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> BenchStats {
        let name = name.into();
        let filter = std::env::var("TYXE_BENCH_FILTER").unwrap_or_default();
        if !name_passes_filter(&name, &filter) {
            return BenchStats {
                min_ns: 0,
                median_ns: 0,
                mean_ns: 0,
            };
        }
        let (iters, samples) = if fast_mode() {
            (1, 1)
        } else {
            (self.calibrate(&mut f), self.sample_size)
        };
        let mut per_iter: Vec<Duration> = Vec::with_capacity(samples);
        for _ in 0..samples {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            per_iter.push(b.elapsed / iters as u32);
        }
        per_iter.sort_unstable();
        let min = per_iter[0];
        let median = per_iter[per_iter.len() / 2];
        let mean = per_iter.iter().sum::<Duration>() / per_iter.len() as u32;
        println!(
            "bench {name:<40} min {:>10}  median {:>10}  mean {:>10}  ({samples} samples x {iters} iters)",
            format_duration(min),
            format_duration(median),
            format_duration(mean),
        );
        if let Some(path) = std::env::var_os("TYXE_BENCH_JSON") {
            let mut tags = format!(
                "\"stat\":\"median\",\"source\":\"bench\",\"dtype\":\"{}\"",
                tyxe_obs::json::escape(&dtype_tag())
            );
            if let Ok(threads) = std::env::var("TYXE_NUM_THREADS") {
                tags.push_str(&format!(
                    ",\"threads\":\"{}\"",
                    tyxe_obs::json::escape(&threads)
                ));
            }
            let line = format!(
                "{{\"name\":\"{}\",\"min_ns\":{},\"median_ns\":{},\"mean_ns\":{},\"value\":{},\"unit\":\"ns\",\"tags\":{{{tags}}}}}\n",
                tyxe_obs::json::escape(&name),
                min.as_nanos(),
                median.as_nanos(),
                mean.as_nanos(),
                median.as_nanos(),
            );
            append_json_line(&path, &line);
        }
        BenchStats {
            min_ns: min.as_nanos(),
            median_ns: median.as_nanos(),
            mean_ns: mean.as_nanos(),
        }
    }

    /// Opens a named group; member benchmarks are reported as
    /// `group/member`.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Finds an iteration count whose total runtime reaches
    /// [`TARGET_SAMPLE`], growing geometrically from 1.
    fn calibrate(&self, f: &mut impl FnMut(&mut Bencher)) -> u64 {
        let mut iters: u64 = 1;
        loop {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            if b.elapsed >= TARGET_SAMPLE || iters >= 1 << 20 {
                return iters;
            }
            // Jump straight to the projected count when we have signal,
            // otherwise double.
            let next = if b.elapsed.is_zero() {
                iters * 2
            } else {
                let scale = TARGET_SAMPLE.as_nanos() as f64 / b.elapsed.as_nanos() as f64;
                ((iters as f64 * scale * 1.2) as u64).clamp(iters + 1, iters * 16)
            };
            iters = next;
        }
    }
}

/// Group handle returned by [`Criterion::benchmark_group`].
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function(
        &mut self,
        name: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, name.into());
        self.criterion.bench_function(full, f);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n;
        self
    }

    pub fn finish(self) {}
}

/// Declares a bench group: a named runner function plus its config and
/// target list, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::harness::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench binary's `main`, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        // Keep the self-test cheap regardless of environment.
        std::env::set_var("TYXE_BENCH_FAST", "1");
        let mut count = 0u64;
        Criterion::default().sample_size(2).bench_function("noop", |b| {
            b.iter(|| {
                count += 1;
                count
            })
        });
        assert!(count > 0);
        std::env::remove_var("TYXE_BENCH_FAST");
    }

    #[test]
    fn groups_prefix_names() {
        std::env::set_var("TYXE_BENCH_FAST", "1");
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.bench_function("member", |b| b.iter(|| 1 + 1));
        group.finish();
        std::env::remove_var("TYXE_BENCH_FAST");
    }

    #[test]
    fn json_lines_are_appended_when_requested() {
        std::env::set_var("TYXE_BENCH_FAST", "1");
        let path = std::env::temp_dir().join(format!("tyxe_bench_json_{}", std::process::id()));
        let _ = std::fs::remove_file(&path);
        std::env::set_var("TYXE_BENCH_JSON", &path);
        Criterion::default()
            .sample_size(1)
            .bench_function("json_probe", |b| b.iter(|| 2 + 2));
        std::env::remove_var("TYXE_BENCH_JSON");
        std::env::remove_var("TYXE_BENCH_FAST");
        let text = std::fs::read_to_string(&path).expect("json file written");
        let _ = std::fs::remove_file(&path);
        // Other tests may interleave lines if they run while the env var is
        // set; only our own record's shape matters.
        let line = text
            .lines()
            .find(|l| l.contains("\"name\":\"json_probe\""))
            .expect("json_probe line present");
        assert!(line.starts_with("{\"name\":\"json_probe\",\"min_ns\":"), "{line}");
        assert!(line.ends_with('}'), "{line}");
        // The same line must parse as a tyxe-obs metric record: a median
        // "value" in "ns" with a tags object identifying the source.
        let parsed = tyxe_obs::json::parse(line).expect("line is valid JSON");
        let median = parsed.get("median_ns").and_then(|v| v.as_num()).unwrap();
        assert_eq!(parsed.get("value").and_then(|v| v.as_num()), Some(median));
        assert_eq!(
            parsed.get("unit").and_then(|v| v.as_str()),
            Some("ns"),
            "{line}"
        );
        let tags = parsed.get("tags").and_then(|v| v.as_obj()).expect("tags object");
        assert!(tags.iter().any(|(k, v)| k == "source" && v.as_str() == Some("bench")));
        // Without TYXE_BENCH_DTYPE the line is tagged with the default
        // storage dtype.
        assert!(
            tags.iter().any(|(k, v)| k == "dtype" && v.as_str() == Some("f64")),
            "{line}"
        );
    }

    #[test]
    fn filter_matches_by_substring() {
        assert!(name_passes_filter("svi_step_full", ""));
        assert!(name_passes_filter("svi_step_full", "svi_step"));
        assert!(name_passes_filter("group/svi_step_full", "svi_step"));
        assert!(!name_passes_filter("elbo_step/vanilla", "svi_step"));
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(format_duration(Duration::from_nanos(12)), "12 ns");
        assert_eq!(format_duration(Duration::from_micros(3)), "3.00 µs");
        assert_eq!(format_duration(Duration::from_millis(7)), "7.00 ms");
        assert_eq!(format_duration(Duration::from_secs(2)), "2.000 s");
    }
}
