//! Figure 1: Bayesian non-linear regression predictive bands under three
//! inference setups — variational with local reparameterization, variational
//! with shared weight samples, and HMC.

use tyxe_rand::SeedableRng;
use tyxe::guides::AutoNormal;
use tyxe::likelihoods::HomoskedasticGaussian;
use tyxe::priors::IIDPrior;
use tyxe::{McmcBnn, VariationalBnn};
use tyxe_datasets::{foong_regression, regression_grid, Regression1d};
use tyxe_prob::mcmc::Hmc;
use tyxe_prob::optim::Adam;
use tyxe_tensor::Tensor;

/// Predictive band: for each grid point, the posterior mean and standard
/// deviation.
#[derive(Debug, Clone)]
pub struct Band {
    /// Inference label (figure panel).
    pub label: &'static str,
    /// Grid inputs.
    pub xs: Vec<f64>,
    /// Predictive means.
    pub means: Vec<f64>,
    /// Predictive standard deviations.
    pub sds: Vec<f64>,
}

impl Band {
    fn from_aggregate(label: &'static str, grid: &Tensor, agg: &Tensor) -> Band {
        let n = grid.shape()[0];
        Band {
            label,
            xs: (0..n).map(|i| grid.at(&[i, 0])).collect(),
            means: (0..n).map(|i| agg.at(&[i, 0, 0])).collect(),
            sds: (0..n).map(|i| agg.at(&[i, 0, 1])).collect(),
        }
    }

    /// Mean sd over grid points with `|x|` above `edge` (extrapolation).
    pub fn edge_sd(&self, edge: f64) -> f64 {
        let pts: Vec<f64> = self
            .xs
            .iter()
            .zip(&self.sds)
            .filter(|(x, _)| x.abs() >= edge)
            .map(|(_, &s)| s)
            .collect();
        pts.iter().sum::<f64>() / pts.len() as f64
    }

    /// Mean sd over the two data clusters.
    pub fn data_sd(&self) -> f64 {
        let pts: Vec<f64> = self
            .xs
            .iter()
            .zip(&self.sds)
            .filter(|(x, _)| (-1.0..-0.7).contains(*x) || (0.5..1.0).contains(*x))
            .map(|(_, &s)| s)
            .collect();
        pts.iter().sum::<f64>() / pts.len() as f64
    }
}

/// Configuration for the Figure 1 reproduction.
#[derive(Debug, Clone, Copy)]
pub struct RegressionConfig {
    /// Points per input cluster.
    pub n_per_cluster: usize,
    /// SVI epochs.
    pub epochs: usize,
    /// HMC posterior samples (after equal warmup).
    pub hmc_samples: usize,
    /// Prediction samples per grid point.
    pub num_predictions: usize,
    /// Grid resolution.
    pub grid: usize,
}

impl Default for RegressionConfig {
    fn default() -> RegressionConfig {
        RegressionConfig {
            n_per_cluster: 50,
            epochs: 3000,
            hmc_samples: 400,
            num_predictions: 32,
            grid: 41,
        }
    }
}

fn dataset(cfg: &RegressionConfig) -> Regression1d {
    foong_regression(cfg.n_per_cluster, 0.1, 0)
}

fn variational_band(cfg: &RegressionConfig, local_reparam: bool, label: &'static str) -> Band {
    tyxe_prob::rng::set_seed(0);
    let mut rng = tyxe_rand::rngs::StdRng::seed_from_u64(0);
    let data = dataset(cfg);
    let net = tyxe_nn::layers::mlp(&[1, 50, 1], false, &mut rng);
    let bnn = VariationalBnn::new(
        net,
        &IIDPrior::standard_normal(),
        HomoskedasticGaussian::new(data.len(), 0.1),
        AutoNormal::new().init_scale(1e-2),
    );
    let mut optim = Adam::new(vec![], 1e-2);
    let batches = [(data.x.clone(), data.y.clone())];
    if local_reparam {
        let _g = tyxe::poutine::local_reparameterization();
        bnn.fit(&batches, &mut optim, cfg.epochs, None);
    } else {
        bnn.fit(&batches, &mut optim, cfg.epochs, None);
    }
    let grid = regression_grid(-2.0, 2.0, cfg.grid);
    let agg = bnn.predict(&grid, cfg.num_predictions);
    Band::from_aggregate(label, &grid, &agg)
}

/// Figure 1(a): mean-field SVI trained with local reparameterization.
pub fn fig1a_local_reparam(cfg: &RegressionConfig) -> Band {
    variational_band(cfg, true, "local reparam")
}

/// Figure 1(b): the same guide trained with shared weight samples.
pub fn fig1b_shared_samples(cfg: &RegressionConfig) -> Band {
    variational_band(cfg, false, "shared samples")
}

/// Figure 1(c): HMC.
pub fn fig1c_hmc(cfg: &RegressionConfig) -> Band {
    tyxe_prob::rng::set_seed(0);
    let mut rng = tyxe_rand::rngs::StdRng::seed_from_u64(0);
    let data = foong_regression(cfg.n_per_cluster.min(20), 0.1, 0);
    let net = tyxe_nn::layers::mlp(&[1, 20, 1], false, &mut rng);
    let mut bnn = McmcBnn::new(
        net,
        &IIDPrior::standard_normal(),
        HomoskedasticGaussian::new(data.len(), 0.1),
        Hmc::new(5e-4, 25),
    );
    bnn.fit(&data.x, &data.y, cfg.hmc_samples, cfg.hmc_samples);
    let grid = regression_grid(-2.0, 2.0, cfg.grid);
    let agg = bnn.predict(&grid, cfg.num_predictions);
    Band::from_aggregate("HMC", &grid, &agg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> RegressionConfig {
        RegressionConfig {
            n_per_cluster: 20,
            epochs: 300,
            hmc_samples: 80,
            num_predictions: 8,
            grid: 21,
        }
    }

    #[test]
    fn bands_have_grid_shape() {
        let band = fig1a_local_reparam(&quick());
        assert_eq!(band.xs.len(), 21);
        assert_eq!(band.means.len(), 21);
        assert!(band.sds.iter().all(|&s| s >= 0.0));
    }

    #[test]
    fn extrapolation_sd_exceeds_data_sd() {
        let band = fig1a_local_reparam(&quick());
        assert!(
            band.edge_sd(1.8) > band.data_sd(),
            "edge {} vs data {}",
            band.edge_sd(1.8),
            band.data_sd()
        );
    }
}
