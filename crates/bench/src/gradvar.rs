//! Gradient-variance ablation: quantifies the §2.4 motivation for local
//! reparameterization and flipout by measuring the per-coordinate variance
//! of the ELBO gradient under each sampling strategy.

use tyxe_rand::SeedableRng;
use tyxe::guides::{AutoNormal, Guide, InitLoc};
use tyxe::likelihoods::HomoskedasticGaussian;
use tyxe::priors::IIDPrior;
use tyxe::VariationalBnn;
use tyxe_datasets::foong_regression;
use tyxe_prob::svi::{negative_elbo, ElboEstimator};
use tyxe_tensor::Tensor;

/// Sampling strategies compared by the ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// One weight sample shared across the mini-batch.
    Vanilla,
    /// Local reparameterization (activation sampling).
    LocalReparam,
    /// Flipout (rank-one sign decorrelation).
    Flipout,
}

impl Strategy {
    /// All strategies.
    pub fn all() -> [Strategy; 3] {
        [Strategy::Vanilla, Strategy::LocalReparam, Strategy::Flipout]
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Strategy::Vanilla => "shared sample",
            Strategy::LocalReparam => "local reparam",
            Strategy::Flipout => "flipout",
        }
    }
}

/// Mean per-coordinate gradient variance of the first-layer weight means
/// under repeated single-sample ELBO estimates.
pub fn gradient_variance(strategy: Strategy, batch: usize, trials: usize) -> f64 {
    tyxe_prob::rng::set_seed(0);
    let mut rng = tyxe_rand::rngs::StdRng::seed_from_u64(0);
    let data = foong_regression(batch / 2, 0.1, 0);
    let net = tyxe_nn::layers::mlp(&[1, 50, 1], false, &mut rng);
    let bnn = VariationalBnn::new(
        net,
        &IIDPrior::standard_normal(),
        HomoskedasticGaussian::new(data.len(), 0.1),
        // A moderately wide posterior so the sampling noise matters.
        AutoNormal::new().init_loc(InitLoc::Pretrained).init_scale(0.3),
    );

    let params = bnn.guide().parameters();
    let target: Tensor = params[0].clone(); // first-layer loc

    let model = || {
        let pred = bnn.module().sampled_forward(&data.x);
        tyxe::likelihoods::Likelihood::observe_data(bnn.likelihood(), &pred, &data.y);
    };
    let guide = || bnn.guide().sample_guide();

    let mut sum = vec![0.0; target.numel()];
    let mut sumsq = vec![0.0; target.numel()];
    for _ in 0..trials {
        target.zero_grad();
        let (loss, _, _) = match strategy {
            Strategy::Vanilla => negative_elbo(&model, &guide, ElboEstimator::MeanField),
            Strategy::LocalReparam => {
                let _g = tyxe::poutine::local_reparameterization();
                negative_elbo(&model, &guide, ElboEstimator::MeanField)
            }
            Strategy::Flipout => {
                let _g = tyxe::poutine::flipout();
                negative_elbo(&model, &guide, ElboEstimator::MeanField)
            }
        };
        loss.backward();
        let g = target.grad().expect("gradient reaches the guide mean");
        for (i, gi) in g.iter().enumerate() {
            sum[i] += gi;
            sumsq[i] += gi * gi;
        }
    }
    let n = trials as f64;
    sum.iter()
        .zip(&sumsq)
        .map(|(s, sq)| (sq / n - (s / n) * (s / n)).max(0.0))
        .sum::<f64>()
        / sum.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_reparam_reduces_gradient_variance() {
        let vanilla = gradient_variance(Strategy::Vanilla, 64, 40);
        let lr = gradient_variance(Strategy::LocalReparam, 64, 40);
        assert!(
            lr < vanilla,
            "local reparameterization did not reduce variance: {lr} vs {vanilla}"
        );
    }

    #[test]
    fn flipout_reduces_gradient_variance() {
        let vanilla = gradient_variance(Strategy::Vanilla, 64, 40);
        let fo = gradient_variance(Strategy::Flipout, 64, 40);
        assert!(
            fo < vanilla,
            "flipout did not reduce variance: {fo} vs {vanilla}"
        );
    }
}
