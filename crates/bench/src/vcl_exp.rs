//! Figure 4: variational continual learning vs maximum likelihood on
//! Split-MNIST-like and Split-CIFAR-like task streams.
//!
//! Follows the protocol of Nguyen et al. (2018) / Swaroop et al. (2019),
//! which the paper adopts: a **multi-head** network (shared trunk, one
//! binary classification head per task). ML fine-tuning of the shared
//! trunk destroys earlier tasks' heads; VCL's posterior-as-prior update
//! protects them.

use std::cell::Cell;

use tyxe_rand::SeedableRng;
use tyxe::guides::{AutoDelta, AutoNormal, Guide, InitLoc};
use tyxe::likelihoods::Categorical;
use tyxe::priors::IIDPrior;
use tyxe::VariationalBnn;
use tyxe_datasets::images::{split_tasks, SplitTask};
use tyxe_datasets::ImageGenerator;
use tyxe_metrics::accuracy;
use tyxe_nn::layers::{Conv2d, Flatten, Linear, MaxPool2d, Relu, Sequential};
use tyxe_nn::module::{join_path, Forward, Module, ParamInfo, TensorModule};
use tyxe_prob::optim::Adam;
use tyxe_tensor::Tensor;

/// Which Figure 4 panel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Benchmark {
    /// Split-MNIST-like stream classified by an MLP with 200 hidden units.
    SplitMnist,
    /// Split-CIFAR-like stream classified by the paper's small conv net.
    SplitCifar,
}

/// A shared trunk with one binary head per task (the standard Split-task
/// architecture). The active head is switched between tasks.
#[derive(Debug)]
pub struct MultiHeadNet {
    trunk: Sequential,
    heads: Vec<Linear>,
    active: Cell<usize>,
}

impl MultiHeadNet {
    /// Creates a multi-head network with `num_heads` binary heads on top
    /// of `trunk` (whose output dimension is `trunk_dim`).
    pub fn new<R: tyxe_rand::Rng + ?Sized>(
        trunk: Sequential,
        trunk_dim: usize,
        num_heads: usize,
        rng: &mut R,
    ) -> MultiHeadNet {
        MultiHeadNet {
            trunk,
            heads: (0..num_heads).map(|_| Linear::new(trunk_dim, 2, rng)).collect(),
            active: Cell::new(0),
        }
    }

    /// Selects which head subsequent forward passes use.
    pub fn set_active_head(&self, head: usize) {
        assert!(head < self.heads.len(), "head index out of range");
        self.active.set(head);
    }
}

impl Module for MultiHeadNet {
    fn kind(&self) -> &'static str {
        "MultiHeadNet"
    }

    fn visit_params(&self, prefix: &str, f: &mut dyn FnMut(ParamInfo)) {
        self.trunk.visit_params(&join_path(prefix, "trunk"), f);
        for (i, head) in self.heads.iter().enumerate() {
            head.visit_params(&join_path(prefix, &format!("head{i}")), f);
        }
    }

    fn set_training(&self, training: bool) {
        self.trunk.set_training(training);
    }
}

impl Forward<Tensor> for MultiHeadNet {
    type Output = Tensor;

    fn forward(&self, input: &Tensor) -> Tensor {
        let features = self.trunk.forward(input);
        self.heads[self.active.get()].forward(&features)
    }
}

/// Scale knobs.
#[derive(Debug, Clone, Copy)]
pub struct VclConfig {
    /// Image side length.
    pub image_size: usize,
    /// Training examples per task.
    pub n_train: usize,
    /// Test examples per task.
    pub n_test: usize,
    /// Epochs per task.
    pub epochs: usize,
    /// Posterior samples at evaluation.
    pub num_predictions: usize,
}

impl Default for VclConfig {
    fn default() -> VclConfig {
        VclConfig {
            image_size: 10,
            n_train: 120,
            n_test: 60,
            epochs: 120,
            num_predictions: 8,
        }
    }
}

/// The Figure 4 series: entry `t` holds the accuracy on each of the first
/// `t+1` tasks after training on task `t`.
#[derive(Debug, Clone)]
pub struct VclCurve {
    /// Method label ("VCL" or "ML").
    pub label: &'static str,
    /// `per_task[t][k]` = accuracy on task `k` after training tasks `0..=t`.
    pub per_task: Vec<Vec<f64>>,
}

impl VclCurve {
    /// Mean accuracy over tasks seen so far, per training step (the
    /// quantity plotted in Figure 4).
    pub fn mean_curve(&self) -> Vec<f64> {
        self.per_task
            .iter()
            .map(|accs| accs.iter().sum::<f64>() / accs.len() as f64)
            .collect()
    }

    /// Accuracy on the first task at the end of the stream (forgetting
    /// probe).
    pub fn final_first_task(&self) -> f64 {
        self.per_task.last().expect("non-empty stream")[0]
    }
}

/// Applies a per-task input transform so consecutive tasks genuinely
/// conflict in the shared trunk (with smooth synthetic prototypes,
/// untransformed tasks are so mutually compatible that even plain ML
/// barely forgets; natural image streams are not that benign). MNIST-like
/// tasks get a fixed random pixel permutation; CIFAR-like tasks get a
/// distinct rotation/flip, which preserves spatial structure for the conv
/// net.
fn transform_task(benchmark: Benchmark, task: &mut SplitTask, task_idx: usize, seed: u64) {
    let apply = |ds: &mut tyxe_datasets::ImageDataset| {
        let n = ds.len();
        let shape = ds.images.shape().to_vec();
        let (c, h, w) = (shape[1], shape[2], shape[3]);
        let mut data = ds.images.to_vec();
        match benchmark {
            Benchmark::SplitMnist => {
                // Fixed per-task pixel permutation.
                let mut perm: Vec<usize> = (0..c * h * w).collect();
                let mut rng =
                    tyxe_rand::rngs::StdRng::seed_from_u64(seed ^ (task_idx as u64).wrapping_mul(0x9e37));
                for i in (1..perm.len()).rev() {
                    perm.swap(i, tyxe_rand::Rng::gen_range(&mut rng, 0..=i));
                }
                let img_len = c * h * w;
                for i in 0..n {
                    let src: Vec<f64> = data[i * img_len..(i + 1) * img_len].to_vec();
                    for (dst_j, &src_j) in perm.iter().enumerate() {
                        data[i * img_len + dst_j] = src[src_j];
                    }
                }
            }
            Benchmark::SplitCifar => {
                // Rotation/flip combo per task: 0°, 90°, 180°, 270°, flip.
                let img_len = c * h * w;
                for i in 0..n {
                    let src: Vec<f64> = data[i * img_len..(i + 1) * img_len].to_vec();
                    for ch in 0..c {
                        for y in 0..h {
                            for x in 0..w {
                                let (sy, sx) = match task_idx % 5 {
                                    0 => (y, x),
                                    1 => (x, h - 1 - y),
                                    2 => (h - 1 - y, w - 1 - x),
                                    3 => (w - 1 - x, y),
                                    _ => (y, w - 1 - x),
                                };
                                data[i * img_len + (ch * h + y) * w + x] =
                                    src[(ch * h + sy) * w + sx];
                            }
                        }
                    }
                }
            }
        }
        ds.images = Tensor::from_vec(data, &shape);
    };
    apply(&mut task.train);
    apply(&mut task.test);
}

fn make_tasks(cfg: &VclConfig, benchmark: Benchmark, seed: u64) -> Vec<SplitTask> {
    let gen = match benchmark {
        Benchmark::SplitMnist => ImageGenerator::mnist_like(cfg.image_size, cfg.image_size, seed),
        Benchmark::SplitCifar => ImageGenerator::cifar_like(cfg.image_size, cfg.image_size, seed),
    };
    let mut tasks = split_tasks(&gen, cfg.n_train, cfg.n_test, seed);
    for (t, task) in tasks.iter_mut().enumerate() {
        transform_task(benchmark, task, t, seed);
    }
    tasks
}

fn make_net(cfg: &VclConfig, benchmark: Benchmark, rng: &mut tyxe_rand::rngs::StdRng) -> MultiHeadNet {
    match benchmark {
        Benchmark::SplitMnist => {
            // The paper uses 200 hidden units for 784-dim MNIST; scaled to
            // our 100-dim synthetic images this is ~24 — small enough that
            // the five permuted tasks genuinely compete for trunk capacity.
            let d = cfg.image_size * cfg.image_size;
            let trunk = Sequential::new()
                .add(Linear::new(d, 24, rng))
                .add(Relu::new());
            MultiHeadNet::new(trunk, 24, 5, rng)
        }
        Benchmark::SplitCifar => {
            // Scaled version of the paper's conv net: one
            // Conv-ReLU-Conv-ReLU-MaxPool block and a dense layer.
            let side = cfg.image_size / 2;
            let flat = 16 * side * side;
            let mut trunk = Sequential::new()
                .add(Conv2d::new(3, 8, 3, 1, 1, rng))
                .add(Relu::new())
                .add(Conv2d::new(8, 16, 3, 1, 1, rng))
                .add(Relu::new())
                .add(MaxPool2d::new(2, 2))
                .add(Flatten::new());
            trunk.push(Box::new(Linear::new(flat, 32, rng)) as Box<dyn TensorModule>);
            trunk.push(Box::new(Relu::new()));
            MultiHeadNet::new(trunk, 32, 5, rng)
        }
    }
}

fn task_input(benchmark: Benchmark, ds: &tyxe_datasets::ImageDataset) -> Tensor {
    match benchmark {
        Benchmark::SplitMnist => ds.flattened(),
        Benchmark::SplitCifar => ds.images.clone(),
    }
}

/// Runs one method over the task stream.
pub fn run(cfg: &VclConfig, benchmark: Benchmark, use_vcl: bool, seed: u64) -> VclCurve {
    tyxe_prob::rng::set_seed(seed);
    let mut rng = tyxe_rand::rngs::StdRng::seed_from_u64(seed);
    let tasks = make_tasks(cfg, benchmark, seed);
    let net = make_net(cfg, benchmark, &mut rng);

    let guide: Box<dyn Guide> = if use_vcl {
        Box::new(
            AutoNormal::new()
                .init_loc(InitLoc::Pretrained)
                .init_scale(0.05),
        )
    } else {
        Box::new(AutoDelta::new())
    };
    let prior: Box<dyn tyxe::priors::Prior> = if use_vcl {
        Box::new(IIDPrior::standard_normal())
    } else {
        Box::new(IIDPrior::flat())
    };
    let bnn = VariationalBnn::new(net, prior.as_ref(), Categorical::new(cfg.n_train), guide);

    let mut per_task = Vec::new();
    for (t, task) in tasks.iter().enumerate() {
        bnn.net().set_active_head(t);
        // Mini-batches: enough optimizer steps per task for the posterior
        // scales to equilibrate (and for the ML baseline to actually move).
        let full_input = task_input(benchmark, &task.train);
        let n = task.train.len();
        let mut data = Vec::new();
        let mut start = 0;
        while start < n {
            let end = (start + 20).min(n);
            data.push((
                full_input.slice(0, start, end),
                task.train.labels.slice(0, start, end),
            ));
            start = end;
        }
        let mut optim = Adam::new(vec![], 3e-3);
        bnn.fit(&data, &mut optim, cfg.epochs, None);
        if use_vcl {
            tyxe::vcl::update_prior_to_posterior(&bnn);
        }
        let accs: Vec<f64> = tasks[..=t]
            .iter()
            .enumerate()
            .map(|(k, seen)| {
                bnn.net().set_active_head(k);
                let probs = bnn.predict(
                    &task_input(benchmark, &seen.test),
                    if use_vcl { cfg.num_predictions } else { 1 },
                );
                accuracy(&probs, &seen.test.labels)
            })
            .collect();
        per_task.push(accs);
    }
    VclCurve {
        label: if use_vcl { "VCL" } else { "ML" },
        per_task,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> VclConfig {
        VclConfig {
            image_size: 6,
            n_train: 40,
            n_test: 24,
            epochs: 25,
            num_predictions: 4,
        }
    }

    #[test]
    fn curves_have_triangular_structure() {
        let curve = run(&tiny(), Benchmark::SplitMnist, true, 0);
        assert_eq!(curve.per_task.len(), 5);
        for (t, accs) in curve.per_task.iter().enumerate() {
            assert_eq!(accs.len(), t + 1);
            for a in accs {
                assert!((0.0..=1.0).contains(a));
            }
        }
        assert_eq!(curve.mean_curve().len(), 5);
    }

    #[test]
    fn split_cifar_conv_net_runs() {
        let mut cfg = tiny();
        cfg.epochs = 8;
        let curve = run(&cfg, Benchmark::SplitCifar, false, 0);
        assert_eq!(curve.per_task.len(), 5);
        assert!(curve.per_task[0][0] > 0.5, "task 0 accuracy {}", curve.per_task[0][0]);
    }

    #[test]
    fn multi_head_switching_changes_output() {
        let mut rng = tyxe_rand::rngs::StdRng::seed_from_u64(0);
        let trunk = Sequential::new().add(Linear::new(4, 8, &mut rng)).add(Relu::new());
        let net = MultiHeadNet::new(trunk, 8, 3, &mut rng);
        let x = Tensor::ones(&[2, 4]);
        net.set_active_head(0);
        let a = net.forward(&x).to_vec();
        net.set_active_head(1);
        let b = net.forward(&x).to_vec();
        assert_ne!(a, b);
        // Parameter names cover trunk and all heads.
        let names: Vec<String> = net.named_parameters().into_iter().map(|p| p.name).collect();
        assert!(names.iter().any(|n| n.starts_with("trunk.0")));
        assert!(names.iter().any(|n| n.starts_with("head2")));
    }
}
