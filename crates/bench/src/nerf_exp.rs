//! Figure 3: deterministic vs Bayesian NeRF on held-out viewing angles.
//!
//! Trains both models on views covering 270° of azimuth, holds out the
//! remaining 90° wedge, and reports the held-out image error plus the
//! Bayesian model's per-view predictive uncertainty (the paper:
//! deterministic 9.4e-3 vs Bayesian 8.1e-3 over 10 held-out angles).

use tyxe_rand::SeedableRng;
use tyxe::guides::{AutoNormal, InitLoc};
use tyxe::priors::IIDPrior;
use tyxe::PytorchBnn;
use tyxe_nn::layers::{mlp, Sequential};
use tyxe_nn::module::{Forward, Module};
use tyxe_nn::optim::{Adam, Optimizer};
use tyxe_nn::StateDict;
use tyxe_render::{Camera, GroundTruthScene, HarmonicEmbedding, RawField, RenderOutput, VolumeRenderer};
use tyxe_tensor::Tensor;

/// Scale knobs.
#[derive(Debug, Clone, Copy)]
pub struct NerfConfig {
    /// Image side length (pixels).
    pub image_size: usize,
    /// Samples per ray.
    pub ray_samples: usize,
    /// Training views over the visible 270°.
    pub train_views: usize,
    /// Held-out views inside the 90° wedge (paper: 10).
    pub test_views: usize,
    /// Deterministic training iterations.
    pub det_iters: usize,
    /// Bayesian fine-tuning iterations (means start from the deterministic
    /// fit, as in the paper's appendix).
    pub bayes_iters: usize,
    /// Posterior samples at evaluation (paper: 8).
    pub num_predictions: usize,
    /// Hidden width of the NeRF MLP.
    pub hidden: usize,
}

impl Default for NerfConfig {
    fn default() -> NerfConfig {
        NerfConfig {
            image_size: 10,
            ray_samples: 20,
            train_views: 12,
            test_views: 10,
            det_iters: 700,
            bayes_iters: 700,
            num_predictions: 8,
            hidden: 48,
        }
    }
}

/// Per-view held-out evaluation.
#[derive(Debug, Clone)]
pub struct NerfResult {
    /// Mean held-out image error of the deterministic NeRF.
    pub det_error: f64,
    /// Mean held-out image error of the Bayesian NeRF (posterior mean).
    pub bayes_error: f64,
    /// Mean per-pixel predictive standard deviation on held-out views.
    pub heldout_uncertainty: f64,
    /// Mean per-pixel predictive standard deviation on training views.
    pub train_uncertainty: f64,
}

struct Pipeline {
    cfg: NerfConfig,
    embed: HarmonicEmbedding,
    renderer: VolumeRenderer,
    train_cams: Vec<Camera>,
    test_cams: Vec<Camera>,
    targets: Vec<RenderOutput>,
    test_targets: Vec<RenderOutput>,
}

impl Pipeline {
    fn new(cfg: NerfConfig) -> Pipeline {
        let embed = HarmonicEmbedding::new(3);
        let renderer = VolumeRenderer::new(cfg.ray_samples, 1.0, 4.6);
        let scene = GroundTruthScene::new();
        let train_az: Vec<f64> = (0..cfg.train_views)
            .map(|i| 270.0 * i as f64 / cfg.train_views as f64)
            .collect();
        let test_az: Vec<f64> = (0..cfg.test_views)
            .map(|i| 270.0 + 90.0 * (i as f64 + 0.5) / cfg.test_views as f64)
            .collect();
        let cam = |az: &f64| Camera::orbit(*az, 2.8, cfg.image_size, cfg.image_size);
        let train_cams: Vec<Camera> = train_az.iter().map(cam).collect();
        let test_cams: Vec<Camera> = test_az.iter().map(cam).collect();
        let targets = train_cams.iter().map(|c| renderer.render(c, &scene)).collect();
        let test_targets = test_cams.iter().map(|c| renderer.render(c, &scene)).collect();
        Pipeline {
            cfg,
            embed,
            renderer,
            train_cams,
            test_cams,
            targets,
            test_targets,
        }
    }

    fn net(&self) -> Sequential {
        let mut rng = tyxe_rand::rngs::StdRng::seed_from_u64(0);
        mlp(
            &[self.embed.output_dim(3), self.cfg.hidden, self.cfg.hidden, 4],
            true,
            &mut rng,
        )
    }

    fn loss(&self, out: &RenderOutput, target: &RenderOutput) -> Tensor {
        out.rgb
            .sub(&target.rgb)
            .square()
            .mean()
            .add(&out.silhouette.sub(&target.silhouette).square().mean())
    }

    fn train_deterministic(&self) -> Sequential {
        let net = self.net();
        let mut optim = Adam::new(net.parameters(), 1e-3);
        for iter in 0..self.cfg.det_iters {
            let v = iter % self.train_cams.len();
            let field = RawField::new(|p: &Tensor| net.forward(&self.embed.embed(p)));
            let out = self.renderer.render(&self.train_cams[v], &field);
            let loss = self.loss(&out, &self.targets[v]);
            optim.zero_grad();
            loss.backward();
            optim.step();
            // The paper decays the lr by 10 for the final quarter.
            if iter == self.cfg.det_iters * 3 / 4 {
                optim.set_learning_rate(1e-4);
            }
        }
        net
    }
}

/// Runs the full Figure 3 comparison.
pub fn run(cfg: NerfConfig) -> NerfResult {
    tyxe_prob::rng::set_seed(0);
    let p = Pipeline::new(cfg);

    // --- Deterministic NeRF.
    let det_net = p.train_deterministic();
    let det_error: f64 = p
        .test_cams
        .iter()
        .zip(&p.test_targets)
        .map(|(cam, target)| {
            let field = RawField::new(|x: &Tensor| det_net.forward(&p.embed.embed(x)));
            let out = p.renderer.render(cam, &field);
            out.rgb.sub(&target.rgb).square().mean().item()
        })
        .sum::<f64>()
        / cfg.test_views as f64;

    // --- Bayesian NeRF: means initialized to the deterministic fit.
    let bayes_net = p.net();
    StateDict::from_module(&det_net).apply(&bayes_net);
    let bnn = PytorchBnn::new(
        bayes_net,
        &IIDPrior::standard_normal(),
        AutoNormal::new().init_loc(InitLoc::Pretrained).init_scale(1e-2),
    );
    let dummy = p.embed.embed(&Tensor::zeros(&[2, 3]));
    let mut optim = Adam::new(bnn.pytorch_parameters(&dummy), 1e-3);
    let kl_full = 1.0 / (cfg.train_views * cfg.image_size * cfg.image_size * 4) as f64;
    for iter in 0..cfg.bayes_iters {
        let v = iter % p.train_cams.len();
        let field = RawField::new(|x: &Tensor| bnn.forward(&p.embed.embed(x)));
        let out = p.renderer.render(&p.train_cams[v], &field);
        // KL weight linearly annealed over the first half (paper: first
        // 10k of 20k iterations).
        let anneal = (iter as f64 / (cfg.bayes_iters as f64 / 2.0)).min(1.0);
        let loss = p
            .loss(&out, &p.targets[v])
            .add(&bnn.cached_kl_loss().mul_scalar(kl_full * anneal));
        optim.zero_grad();
        loss.backward();
        optim.step();
        if iter == cfg.bayes_iters * 3 / 4 {
            optim.set_learning_rate(1e-4);
        }
    }

    // --- Evaluation: posterior-mean error + predictive spread.
    let spread_and_error = |cam: &Camera, target: &RenderOutput| -> (f64, f64) {
        let mut renders = Vec::new();
        for _ in 0..cfg.num_predictions {
            let field = RawField::new(|x: &Tensor| bnn.forward(&p.embed.embed(x)));
            renders.push(p.renderer.render(cam, &field).rgb.detach());
        }
        let stacked = Tensor::stack(&renders, 0);
        let mean = stacked.mean_axis(0, false);
        let sd = stacked.sub(&mean).square().mean_axis(0, false).sqrt().mean().item();
        let err = mean.sub(&target.rgb).square().mean().item();
        (sd, err)
    };

    let mut bayes_error = 0.0;
    let mut heldout_uncertainty = 0.0;
    for (cam, target) in p.test_cams.iter().zip(&p.test_targets) {
        let (sd, err) = spread_and_error(cam, target);
        bayes_error += err;
        heldout_uncertainty += sd;
    }
    bayes_error /= cfg.test_views as f64;
    heldout_uncertainty /= cfg.test_views as f64;

    let mut train_uncertainty = 0.0;
    for (cam, target) in p.train_cams.iter().zip(&p.targets).take(4) {
        train_uncertainty += spread_and_error(cam, target).0;
    }
    train_uncertainty /= 4.0;

    NerfResult {
        det_error,
        bayes_error,
        heldout_uncertainty,
        train_uncertainty,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miniature_run_produces_consistent_result() {
        let cfg = NerfConfig {
            image_size: 6,
            ray_samples: 10,
            train_views: 6,
            test_views: 2,
            det_iters: 60,
            bayes_iters: 60,
            num_predictions: 3,
            hidden: 16,
        };
        let r = run(cfg);
        assert!(r.det_error.is_finite() && r.det_error > 0.0);
        assert!(r.bayes_error.is_finite() && r.bayes_error > 0.0);
        assert!(r.heldout_uncertainty > 0.0);
        assert!(r.train_uncertainty > 0.0);
    }
}
