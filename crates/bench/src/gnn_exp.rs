//! Table 2: deterministic and Bayesian GNNs on the Cora-like citation
//! network — ML, MAP and mean-field over five seeds, reporting the test
//! metrics at the epoch with lowest validation NLL (the paper's protocol).

use tyxe_rand::SeedableRng;
use tyxe::guides::{AutoDelta, AutoNormal, Guide, InitLoc};
use tyxe::likelihoods::Categorical;
use tyxe::priors::IIDPrior;
use tyxe::VariationalBnn;
use tyxe_graph::{citation_graph_with_words, CitationDataset, Gnn, Graph};
use tyxe_metrics as metrics;
use tyxe_prob::optim::{Adam, StepLr};
use tyxe_tensor::Tensor;

/// The three rows of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GnnInference {
    /// Maximum likelihood (flat prior, Delta guide).
    Ml,
    /// Maximum a-posteriori.
    Map,
    /// Mean-field variational inference.
    Mf,
}

impl GnnInference {
    /// All rows in the paper's order.
    pub fn all() -> [GnnInference; 3] {
        [GnnInference::Ml, GnnInference::Map, GnnInference::Mf]
    }

    /// Paper row label.
    pub fn label(self) -> &'static str {
        match self {
            GnnInference::Ml => "ML",
            GnnInference::Map => "MAP",
            GnnInference::Mf => "MF",
        }
    }
}

/// Scale knobs.
#[derive(Debug, Clone, Copy)]
pub struct GnnConfig {
    /// Number of nodes.
    pub num_nodes: usize,
    /// Bag-of-words feature dimension.
    pub feat_dim: usize,
    /// Hidden width of the GCN.
    pub hidden: usize,
    /// Training iterations for ML/MAP (paper: 200).
    pub det_iters: usize,
    /// Training iterations for MF (paper: 400, lr decayed every 100).
    pub mf_iters: usize,
    /// Within-class edge probability.
    pub p_in: f64,
    /// Cross-class edge probability.
    pub p_out: f64,
    /// Probability of a class-owned word firing (controls difficulty).
    pub p_word_on: f64,
    /// Probability of any other word firing.
    pub p_word_off: f64,
    /// Labelled training nodes per class (Cora: 20).
    pub train_per_class: usize,
    /// Validation nodes.
    pub num_val: usize,
    /// Test nodes.
    pub num_test: usize,
    /// Random seeds (paper: 5 runs).
    pub seeds: usize,
    /// Posterior samples at evaluation (paper: 8).
    pub num_predictions: usize,
}

impl Default for GnnConfig {
    fn default() -> GnnConfig {
        GnnConfig {
            num_nodes: 350,
            feat_dim: 49,
            hidden: 16,
            det_iters: 200,
            mf_iters: 400,
            p_in: 0.045,
            p_out: 0.007,
            p_word_on: 0.25,
            p_word_off: 0.05,
            train_per_class: 20,
            num_val: 70,
            num_test: 140,
            seeds: 5,
            num_predictions: 8,
        }
    }
}

/// Table 2 cell values for one run.
#[derive(Debug, Clone, Copy)]
pub struct GnnRun {
    /// Validation-selected test NLL.
    pub nll: f64,
    /// Test accuracy in `[0, 1]`.
    pub accuracy: f64,
    /// Test ECE in `[0, 1]` (10 bins, as in the paper).
    pub ece: f64,
}

/// Aggregated row: mean and two standard errors over seeds.
#[derive(Debug, Clone, Copy)]
pub struct GnnRow {
    /// Inference strategy.
    pub inference: GnnInference,
    /// `(mean, 2 s.e.)` of NLL.
    pub nll: (f64, f64),
    /// `(mean, 2 s.e.)` of accuracy (fraction).
    pub accuracy: (f64, f64),
    /// `(mean, 2 s.e.)` of ECE (fraction).
    pub ece: (f64, f64),
}

fn subset(probs: &Tensor, labels: &Tensor, mask: &Tensor) -> (Tensor, Tensor) {
    let idx = CitationDataset::mask_indices(mask);
    let l = labels.to_vec();
    (
        probs.index_select(0, &idx),
        Tensor::from_vec(idx.iter().map(|&i| l[i]).collect(), &[idx.len()]),
    )
}

/// Runs one (inference, seed) cell, returning validation-selected test
/// metrics.
pub fn run_once(cfg: &GnnConfig, inference: GnnInference, seed: u64) -> GnnRun {
    tyxe_prob::rng::set_seed(seed);
    let mut rng = tyxe_rand::rngs::StdRng::seed_from_u64(seed);
    let ds = citation_graph_with_words(
        cfg.num_nodes,
        7,
        cfg.feat_dim,
        cfg.p_in,
        cfg.p_out,
        cfg.train_per_class,
        cfg.num_val,
        cfg.num_test,
        cfg.p_word_on,
        cfg.p_word_off,
        seed,
    );
    // Scale the bag-of-words features so that well-fitting GCN weights lie
    // within the standard-normal prior's scale (real Cora has ~1433
    // features; our scaled-down 49 would otherwise need large weights).
    let input: (Graph, Tensor) = (ds.graph.clone(), ds.features.mul_scalar(4.0));
    let n_labelled = 7 * cfg.train_per_class;
    let gnn = Gnn::new(cfg.feat_dim, cfg.hidden, 7, &mut rng);

    let (bnn, iters, lr, num_pred): (VariationalBnn<Gnn, Categorical, Box<dyn Guide>>, _, _, _) =
        match inference {
            GnnInference::Ml => (
                VariationalBnn::new(
                    gnn,
                    &IIDPrior::flat(),
                    Categorical::new(n_labelled),
                    Box::new(AutoDelta::new()) as Box<dyn Guide>,
                ),
                cfg.det_iters,
                1e-2,
                1,
            ),
            GnnInference::Map => (
                VariationalBnn::new(
                    gnn,
                    &IIDPrior::standard_normal(),
                    Categorical::new(n_labelled),
                    Box::new(AutoDelta::new()) as Box<dyn Guide>,
                ),
                cfg.det_iters,
                1e-2,
                1,
            ),
            GnnInference::Mf => (
                VariationalBnn::new(
                    gnn,
                    &IIDPrior::standard_normal(),
                    Categorical::new(n_labelled),
                    Box::new(
                        AutoNormal::new()
                            .init_loc(InitLoc::Pretrained)
                            .init_scale(1e-4)
                            .max_scale(0.3),
                    ) as Box<dyn Guide>,
                ),
                cfg.mf_iters,
                0.1,
                cfg.num_predictions,
            ),
        };

    let data = [(input.clone(), ds.labels.clone())];
    let mut optim = Adam::new(vec![], lr);
    // The paper decays the MF learning rate by 10 every 100 iterations.
    let mut sched = (inference == GnnInference::Mf).then(|| StepLr::new(&optim, 100, 0.1));

    let mut best_val_nll = f64::INFINITY;
    let mut best = GnnRun {
        nll: f64::INFINITY,
        accuracy: 0.0,
        ece: 1.0,
    };
    let eval_every = 20;
    for chunk_start in (0..iters).step_by(eval_every) {
        let chunk = eval_every.min(iters - chunk_start);
        {
            let _m = tyxe::poutine::selective_mask(ds.train_mask.clone(), &["likelihood.data"]);
            bnn.fit(&data, &mut optim, chunk, None);
        }
        if let Some(s) = sched.as_mut() {
            for _ in 0..chunk {
                s.step_epoch(&mut optim);
            }
        }
        let probs = bnn.predict(&input, num_pred);
        let (val_p, val_l) = subset(&probs, &ds.labels, &ds.val_mask);
        let val_nll = metrics::nll(&val_p, &val_l);
        if val_nll < best_val_nll {
            best_val_nll = val_nll;
            let (test_p, test_l) = subset(&probs, &ds.labels, &ds.test_mask);
            best = GnnRun {
                nll: metrics::nll(&test_p, &test_l),
                accuracy: metrics::accuracy(&test_p, &test_l),
                ece: metrics::ece(&test_p, &test_l, 10),
            };
        }
    }
    best
}

/// Runs all seeds for one row.
pub fn run_row(cfg: &GnnConfig, inference: GnnInference) -> GnnRow {
    let runs: Vec<GnnRun> = (0..cfg.seeds)
        .map(|s| run_once(cfg, inference, s as u64))
        .collect();
    let agg = |f: &dyn Fn(&GnnRun) -> f64| {
        metrics::mean_and_2se(&runs.iter().map(f).collect::<Vec<_>>())
    };
    GnnRow {
        inference,
        nll: agg(&|r| r.nll),
        accuracy: agg(&|r| r.accuracy),
        ece: agg(&|r| r.ece),
    }
}

/// The paper's Table 2 values `(NLL, Acc %, ECE %)`, for side-by-side
/// reporting.
pub fn paper_reference(inference: GnnInference) -> (f64, f64, f64) {
    match inference {
        GnnInference::Ml => (1.01, 75.64, 15.38),
        GnnInference::Map => (0.93, 75.94, 12.78),
        GnnInference::Mf => (0.77, 78.02, 10.22),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> GnnConfig {
        GnnConfig {
            num_nodes: 140,
            feat_dim: 21,
            hidden: 8,
            det_iters: 60,
            mf_iters: 60,
            p_in: 0.06,
            p_out: 0.004,
            p_word_on: 0.4,
            p_word_off: 0.03,
            train_per_class: 5,
            num_val: 30,
            num_test: 50,
            seeds: 2,
            num_predictions: 4,
        }
    }

    #[test]
    fn all_rows_produce_finite_cells() {
        let cfg = tiny();
        for inf in GnnInference::all() {
            let run = run_once(&cfg, inf, 0);
            assert!(run.nll.is_finite(), "{inf:?}");
            assert!((0.0..=1.0).contains(&run.accuracy));
            assert!((0.0..=1.0).contains(&run.ece));
        }
    }

    #[test]
    fn row_aggregates_over_seeds() {
        let cfg = tiny();
        let row = run_row(&cfg, GnnInference::Ml);
        assert!(row.accuracy.0 > 0.3, "mean accuracy {}", row.accuracy.0);
        assert!(row.nll.1 >= 0.0);
    }
}
