//! Regenerates Figure 1: Bayesian non-linear regression predictive bands
//! under (a) local reparameterization, (b) shared weight samples, and
//! (c) HMC.
//!
//! Run with: `cargo run --release -p tyxe-bench --bin fig1_regression`

use tyxe_bench::regression_exp::{
    fig1a_local_reparam, fig1b_shared_samples, fig1c_hmc, RegressionConfig,
};

fn print_band(band: &tyxe_bench::regression_exp::Band) {
    println!("\n--- Figure 1 panel: {} ---", band.label);
    println!("{:>8} {:>10} {:>10}", "x", "mean", "sd");
    for ((x, m), s) in band.xs.iter().zip(&band.means).zip(&band.sds) {
        let bar = "#".repeat((s * 50.0).min(40.0) as usize);
        println!("{x:>8.2} {m:>10.3} {s:>10.3}  {bar}");
    }
    println!(
        "summary: sd on data clusters {:.3}, sd at |x|>=1.6 {:.3} (ratio {:.2})",
        band.data_sd(),
        band.edge_sd(1.6),
        band.edge_sd(1.6) / band.data_sd()
    );
}

fn main() {
    let cfg = RegressionConfig::default();
    println!("Figure 1 reproduction: Foong et al. two-cluster regression");
    println!(
        "({} points, {} SVI epochs, {} HMC samples, {} prediction samples)",
        2 * cfg.n_per_cluster,
        cfg.epochs,
        cfg.hmc_samples,
        cfg.num_predictions
    );

    let a = fig1a_local_reparam(&cfg);
    print_band(&a);
    let b = fig1b_shared_samples(&cfg);
    print_band(&b);
    let c = fig1c_hmc(&cfg);
    print_band(&c);

    println!("\nPaper shape check:");
    println!("  - all panels: predictive sd grows outside the data range");
    for band in [&a, &b, &c] {
        let ok = band.edge_sd(1.6) > band.data_sd();
        println!(
            "    {:<16} edge/data sd ratio {:.2} {}",
            band.label,
            band.edge_sd(1.6) / band.data_sd(),
            if ok { "[ok]" } else { "[MISMATCH]" }
        );
    }
    println!("  - HMC spread exceeds mean-field (fuller posterior exploration)");
    let ok = c.edge_sd(1.6) > a.edge_sd(1.6);
    println!(
        "    HMC {:.3} vs MF {:.3} {}",
        c.edge_sd(1.6),
        a.edge_sd(1.6),
        if ok { "[ok]" } else { "[MISMATCH]" }
    );
}
