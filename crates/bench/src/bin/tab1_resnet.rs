//! Regenerates Table 1: Bayesian ResNet predictive performance
//! (NLL / accuracy / ECE / OOD-AUROC) for the six inference strategies.
//!
//! Run with: `cargo run --release -p tyxe-bench --bin tab1_resnet`

use tyxe_bench::report;
use tyxe_bench::vision::{paper_reference, Inference, VisionConfig, VisionSetup};

fn main() {
    let cfg = VisionConfig::default();
    println!("Table 1 reproduction: Bayesian ResNet predictive performance");
    println!(
        "(synthetic CIFAR-like {n}x{n}, {tr} train / {te} test / {te} OOD, ResNet width {w})\n",
        n = cfg.image_size,
        tr = cfg.n_train,
        te = cfg.n_test,
        w = cfg.width
    );
    println!("pretraining the ML baseline ...");
    let setup = VisionSetup::prepare(cfg);

    report::header("Inference", &["NLL", "Acc.(%)", "ECE(%)", "OOD-AUROC"]);
    let mut rows = Vec::new();
    for inf in Inference::all() {
        println!("running {} ...", inf.label());
        let r = setup.run(inf);
        report::row(
            inf.label(),
            &[
                format!("{:.2}", r.nll),
                format!("{:.2}", 100.0 * r.accuracy),
                format!("{:.2}", 100.0 * r.ece),
                format!("{:.2}", r.ood_auroc),
            ],
        );
        rows.push(r);
    }

    println!("\nPaper reference (CIFAR-10 / SVHN, ResNet-18):");
    report::header("Inference", &["NLL", "Acc.(%)", "ECE(%)", "OOD-AUROC"]);
    for inf in Inference::all() {
        let (nll, acc, ece, ood) = paper_reference(inf);
        report::row(
            inf.label(),
            &[
                format!("{nll:.2}"),
                format!("{acc:.2}"),
                format!("{ece:.2}"),
                format!("{ood:.2}"),
            ],
        );
    }

    // Shape checks against the paper's orderings.
    let get = |i: Inference| rows.iter().find(|r| r.inference == i).expect("row");
    let ml = get(Inference::Ml);
    let mf = get(Inference::Mf);
    let checks: Vec<(&str, bool)> = vec![
        ("MF has lower NLL than ML", mf.nll < ml.nll),
        ("MF has lower ECE than ML", mf.ece < ml.ece),
        ("MF has the best OOD AUROC of all rows",
            Inference::all().iter().all(|&i| get(i).ood_auroc <= mf.ood_auroc + 1e-9)),
        ("every Bayesian row separates OOD at least as well as ML",
            [Inference::Map, Inference::MfSdOnly, Inference::Mf]
                .iter()
                .all(|&i| get(i).ood_auroc >= ml.ood_auroc - 0.05)),
    ];
    println!("\nShape checks (paper orderings):");
    for (name, ok) in checks {
        println!("  {} {}", if ok { "[ok]      " } else { "[MISMATCH]" }, name);
    }
}
