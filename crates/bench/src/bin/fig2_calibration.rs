//! Regenerates Figure 2: calibration curves and the empirical CDF of the
//! predictive entropy on test and OOD data, for every inference strategy
//! of the ResNet experiment.
//!
//! Run with: `cargo run --release -p tyxe-bench --bin fig2_calibration`

use tyxe_bench::vision::{Inference, VisionConfig, VisionSetup};
use tyxe_metrics::ecdf;

fn main() {
    // Lighter configuration than Table 1: Figure 2's content is the shape
    // of the calibration curves and entropy ECDFs, which is stable at this
    // scale (and the single-core CI budget is finite).
    let cfg = VisionConfig {
        n_train: 300,
        n_test: 150,
        pretrain_epochs: 16,
        vi_epochs: 8,
        num_predictions: 8,
        ..VisionConfig::default()
    };
    println!("Figure 2 reproduction: calibration curves + entropy ECDFs\n");
    println!("pretraining the ML baseline ...");
    let setup = VisionSetup::prepare(cfg);

    let mut results = Vec::new();
    for inf in Inference::all() {
        println!("running {} ...", inf.label());
        results.push(setup.run(inf));
    }

    // --- Calibration curves (left column of Figure 2).
    for r in &results {
        println!("\ncalibration curve — {} (ECE {:.2}%)", r.inference.label(), 100.0 * r.ece);
        println!("{:>12} {:>12} {:>8}", "confidence", "accuracy", "count");
        for bin in &r.calibration {
            if bin.count == 0 {
                continue;
            }
            let gap = ((bin.accuracy - bin.confidence) * 40.0).abs() as usize;
            println!(
                "{:>12.2} {:>12.2} {:>8}  {}",
                bin.confidence,
                bin.accuracy,
                bin.count,
                if bin.accuracy < bin.confidence { "-".repeat(gap) } else { "+".repeat(gap) }
            );
        }
    }

    // --- Entropy ECDFs (right column of Figure 2).
    let grid: Vec<f64> = (0..=20).map(|i| i as f64 * (10.0f64.ln()) / 20.0).collect();
    println!("\nentropy ECDF at H = ln(10)/2 (higher on test, lower on OOD = better separation)");
    println!("{:<16} {:>10} {:>10} {:>12}", "Inference", "F_test(H)", "F_ood(H)", "separation");
    let mid = 10;
    for r in &results {
        let e_test = ecdf(&r.entropy_test, &grid);
        let e_ood = ecdf(&r.entropy_ood, &grid);
        println!(
            "{:<16} {:>10.2} {:>10.2} {:>12.2}",
            r.inference.label(),
            e_test[mid],
            e_ood[mid],
            e_test[mid] - e_ood[mid]
        );
    }

    // Shape check: for the best Bayesian method, the OOD entropy
    // distribution should dominate the test one (ECDF below it).
    let mf = results
        .iter()
        .find(|r| r.inference == Inference::Mf)
        .expect("MF row");
    let e_test = ecdf(&mf.entropy_test, &grid);
    let e_ood = ecdf(&mf.entropy_ood, &grid);
    let dominated = e_test
        .iter()
        .zip(&e_ood)
        .filter(|(t, o)| t >= o)
        .count();
    println!(
        "\nShape check: MF test-entropy ECDF dominates OOD ECDF at {}/{} grid points {}",
        dominated,
        grid.len(),
        if dominated * 2 >= grid.len() { "[ok]" } else { "[MISMATCH]" }
    );
}
