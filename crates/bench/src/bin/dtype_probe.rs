//! Per-dtype microbenchmark of the non-GEMM kernels that dominate the
//! SVI step (activation, reparam draw, log-prob chain, normal draws).
//! This is the probe that located the libm-`tanh` bottleneck behind the
//! `tanh_f32`/`exp_f32` fast paths (DESIGN.md §12); keep it around for
//! the next dtype-cost question. Min-of-7 timing, so run it on an idle
//! machine and compare labels within one run only.

use std::time::Instant;

use tyxe_rand::rngs::StdRng;
use tyxe_rand::SeedableRng;
use tyxe_tensor::ops::fused::ScaleMap;
use tyxe_tensor::{DType, Tensor};

fn time<R>(label: &str, iters: usize, mut f: impl FnMut() -> R) {
    for _ in 0..3 {
        std::hint::black_box(f());
    }
    let mut best = f64::INFINITY;
    for _ in 0..7 {
        let t0 = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        best = best.min(t0.elapsed().as_secs_f64() / iters as f64);
    }
    println!("{label:<52} {:>10.1} us", best * 1e6);
}

fn main() {
    let mut rng = StdRng::seed_from_u64(3);
    let n = 32768;

    let x64 = Tensor::randn(&[n], &mut rng);
    let x32 = x64.cast(DType::F32).detach();
    time("tanh 32768 f64", 4, || x64.tanh());
    time("tanh 32768 f32", 4, || x32.tanh());

    // Raw libm comparison.
    let v64: Vec<f64> = x64.to_vec();
    let v32: Vec<f32> = v64.iter().map(|&x| x as f32).collect();
    time("raw tanh loop f64", 4, || {
        v64.iter().map(|&x| x.tanh()).sum::<f64>()
    });
    time("raw tanhf loop f32", 4, || {
        v32.iter().map(|&x| x.tanh()).sum::<f32>()
    });
    time("raw tanh-via-f64 loop f32", 4, || {
        v32.iter().map(|&x| (f64::from(x).tanh()) as f32).sum::<f32>()
    });

    let m = 16897;
    let loc64 = Tensor::randn(&[m], &mut rng).requires_grad(true);
    let raw64 = Tensor::full(&[m], -2.0).requires_grad(true);
    let eps64 = Tensor::randn(&[m], &mut rng);
    let loc32 = loc64.cast(DType::F32).detach().requires_grad(true);
    let raw32 = raw64.cast(DType::F32).detach().requires_grad(true);
    let eps32 = eps64.cast(DType::F32).detach();
    time("fused_reparam_sample 16897 f64 (exp map)", 4, || {
        Tensor::fused_reparam_sample(&loc64, &raw64, &eps64, ScaleMap::Exp)
    });
    time("fused_reparam_sample 16897 f32 (exp map)", 4, || {
        Tensor::fused_reparam_sample(&loc32, &raw32, &eps32, ScaleMap::Exp)
    });

    // Standard-normal log-prob chain (prior + guide KL shape).
    let th64 = Tensor::randn(&[m], &mut rng);
    let th32 = th64.cast(DType::F32).detach();
    time("x*x mul 16897 f64", 8, || th64.mul(&th64));
    time("x*x mul 16897 f32", 8, || th32.mul(&th32));
    time("add 16897 f64", 8, || th64.add(&th64));
    time("add 16897 f32", 8, || th32.add(&th32));
    time("mul_scalar 16897 f64", 8, || th64.mul_scalar(0.5));
    time("mul_scalar 16897 f32", 8, || th32.mul_scalar(0.5));
    time("sum 16897 f64", 8, || th64.sum());
    time("sum 16897 f32", 8, || th32.sum());
    time("exp 16897 f64", 8, || th64.exp());
    time("exp 16897 f32", 8, || th32.exp());

    time("randn 16897 (always f64)", 4, || {
        tyxe_prob::rng::randn(&[m])
    });
    time("cast f64->f32 16897", 8, || th64.cast(DType::F32));
}
