//! Ablation: gradient variance of the ELBO estimator under shared weight
//! samples, local reparameterization, and flipout — the quantitative
//! motivation behind the paper's §2.4 effect handlers.
//!
//! Run with: `cargo run --release -p tyxe-bench --bin ablation_gradvar`

use tyxe_bench::gradvar::{gradient_variance, Strategy};
use tyxe_bench::report;

fn main() {
    println!("Gradient-variance ablation (first-layer mean parameters)");
    println!("(regression BNN, posterior sd 0.3, 200 single-sample ELBO gradients)\n");

    report::header("strategy", &["batch 16", "batch 64", "batch 128"]);
    let mut table = Vec::new();
    for strategy in Strategy::all() {
        let cells: Vec<f64> = [16, 64, 128]
            .iter()
            .map(|&b| gradient_variance(strategy, b, 200))
            .collect();
        report::row(
            strategy.label(),
            &cells.iter().map(|v| format!("{v:.3e}")).collect::<Vec<_>>(),
        );
        table.push((strategy, cells));
    }

    let get = |s: Strategy| &table.iter().find(|(t, _)| *t == s).expect("row").1;
    let vanilla = get(Strategy::Vanilla);
    let lr = get(Strategy::LocalReparam);
    let fo = get(Strategy::Flipout);
    println!("\nvariance reduction vs shared samples (batch 64):");
    println!("  local reparameterization: {:.1}x", vanilla[1] / lr[1]);
    println!("  flipout:                  {:.1}x", vanilla[1] / fo[1]);

    println!("\nShape checks:");
    let checks = [
        ("local reparam reduces variance at every batch size",
            lr.iter().zip(vanilla).all(|(a, b)| a < b)),
        ("flipout reduces variance at every batch size",
            fo.iter().zip(vanilla).all(|(a, b)| a < b)),
    ];
    for (name, ok) in checks {
        println!("  {} {}", if ok { "[ok]      " } else { "[MISMATCH]" }, name);
    }
}
