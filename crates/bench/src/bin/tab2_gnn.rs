//! Regenerates Table 2: deterministic and Bayesian GNNs on the Cora-like
//! citation network (mean ± 2 s.e. over five runs, validation-selected).
//!
//! Run with: `cargo run --release -p tyxe-bench --bin tab2_gnn`

use tyxe_bench::gnn_exp::{paper_reference, run_row, GnnConfig, GnnInference};
use tyxe_bench::report;

fn main() {
    let cfg = GnnConfig::default();
    println!("Table 2 reproduction: GNN node classification (Cora-like)");
    println!(
        "({} nodes, {} features, {} labelled, {} seeds)\n",
        cfg.num_nodes,
        cfg.feat_dim,
        7 * cfg.train_per_class,
        cfg.seeds
    );

    report::header("Inference", &["NLL", "Acc.(%)", "ECE(%)"]);
    let mut rows = Vec::new();
    for inf in GnnInference::all() {
        println!("running {} over {} seeds ...", inf.label(), cfg.seeds);
        let row = run_row(&cfg, inf);
        report::row(
            inf.label(),
            &[
                report::pm(row.nll.0, row.nll.1, 2),
                report::pm(100.0 * row.accuracy.0, 100.0 * row.accuracy.1, 1),
                report::pm(100.0 * row.ece.0, 100.0 * row.ece.1, 1),
            ],
        );
        rows.push(row);
    }

    println!("\nPaper reference (Cora):");
    report::header("Inference", &["NLL", "Acc.(%)", "ECE(%)"]);
    for inf in GnnInference::all() {
        let (nll, acc, ece) = paper_reference(inf);
        report::row(
            inf.label(),
            &[format!("{nll:.2}"), format!("{acc:.1}"), format!("{ece:.1}")],
        );
    }

    let get = |i: GnnInference| rows.iter().find(|r| r.inference == i).expect("row");
    let (ml, map, mf) = (get(GnnInference::Ml), get(GnnInference::Map), get(GnnInference::Mf));
    println!("\nShape checks (paper orderings):");
    let checks = [
        ("MF has the lowest NLL", mf.nll.0 <= ml.nll.0 && mf.nll.0 <= map.nll.0),
        ("MF has the best ECE", mf.ece.0 <= ml.ece.0 && mf.ece.0 <= map.ece.0),
        ("MF accuracy is at least ML's", mf.accuracy.0 >= ml.accuracy.0 - 0.02),
        ("MAP NLL improves on ML", map.nll.0 <= ml.nll.0 + 0.02),
    ];
    for (name, ok) in checks {
        println!("  {} {}", if ok { "[ok]      " } else { "[MISMATCH]" }, name);
    }
}
