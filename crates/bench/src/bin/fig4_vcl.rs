//! Regenerates Figure 4: mean accuracy on tasks seen so far for VCL and
//! ML on the Split-MNIST-like and Split-CIFAR-like streams.
//!
//! Run with: `cargo run --release -p tyxe-bench --bin fig4_vcl`

use tyxe_bench::vcl_exp::{run, Benchmark, VclConfig};
use tyxe_metrics::mean_and_2se;

fn panel(benchmark: Benchmark, cfg: &VclConfig, seeds: u64) {
    let name = match benchmark {
        Benchmark::SplitMnist => "Split-MNIST (synthetic)",
        Benchmark::SplitCifar => "Split-CIFAR (synthetic)",
    };
    println!("\n=== {name} ===");
    let mut curves: Vec<(&str, Vec<Vec<f64>>)> = Vec::new();
    let mut retention: Vec<(&str, Vec<f64>)> = Vec::new();
    for use_vcl in [true, false] {
        let runs: Vec<_> = (0..seeds)
            .map(|s| run(cfg, benchmark, use_vcl, s))
            .collect();
        let label = if use_vcl { "VCL" } else { "ML" };
        retention.push((label, runs.iter().map(|c| c.final_first_task()).collect()));
        curves.push((label, runs.iter().map(|c| c.mean_curve()).collect()));
    }
    println!("{:<6} {}", "", (1..=5).map(|t| format!("{t:>12}")).collect::<String>());
    for (label, per_seed) in &curves {
        print!("{label:<6}");
        for t in 0..5 {
            let vals: Vec<f64> = per_seed.iter().map(|c| c[t]).collect();
            let (m, se) = mean_and_2se(&vals);
            print!(" {:>11}", format!("{:.1}±{:.1}", 100.0 * m, 100.0 * se));
        }
        println!();
    }

    // Shape check: after the final task, VCL's mean accuracy beats ML's.
    let final_mean = |label: &str| {
        let per_seed = &curves.iter().find(|(l, _)| *l == label).expect("curve").1;
        mean_and_2se(&per_seed.iter().map(|c| c[4]).collect::<Vec<_>>()).0
    };
    let (vcl, ml) = (final_mean("VCL"), final_mean("ML"));
    println!(
        "shape check: VCL final mean accuracy {:.1}% > ML {:.1}% {}",
        100.0 * vcl,
        100.0 * ml,
        if vcl > ml { "[ok]" } else { "[MISMATCH]" }
    );
    // The sharper forgetting probe: accuracy on task 1 after the stream.
    for (label, vals) in &retention {
        let (m, se) = mean_and_2se(vals);
        println!("first-task retention {label}: {:.1}±{:.1}%", 100.0 * m, 100.0 * se);
    }
    let ret = |l: &str| {
        mean_and_2se(&retention.iter().find(|(x, _)| *x == l).expect("label").1).0
    };
    println!(
        "shape check: VCL retains the first task better ({:.1}% vs {:.1}%) {}",
        100.0 * ret("VCL"),
        100.0 * ret("ML"),
        if ret("VCL") > ret("ML") { "[ok]" } else { "[MISMATCH]" }
    );
}

fn main() {
    println!("Figure 4 reproduction: variational continual learning vs ML");
    let mnist_cfg = VclConfig::default();
    panel(Benchmark::SplitMnist, &mnist_cfg, 3);

    let cifar_cfg = VclConfig {
        epochs: 25,
        ..VclConfig::default()
    };
    panel(Benchmark::SplitCifar, &cifar_cfg, 2);
}
