//! Phase-level wall-clock breakdown of one SVI training step, for
//! deciding where step-time optimization effort should go. Prints the
//! full step with plans off/on plus the raw cost of its dominant
//! kernels (GEMMs, normal draws, log-prob chains, Adam update).
//!
//! Usage: cargo run --release -p tyxe-bench --bin profile_svi
//!
//! `--percentiles` switches to a latency-distribution report: p50/p90/
//! p99 duration per span name. By default it profiles a short in-process
//! SVI run; with `--input <trace.json>` it reads an existing
//! `chrome://tracing` file instead — including the *merged* multi-rank
//! trace a `distributed_svi --trace` run writes, so cross-process span
//! populations (`dist.step`, `dist.worker.step`, …) get tail statistics
//! without re-running anything.

use std::time::Instant;

use tyxe::guides::AutoNormal;
use tyxe::likelihoods::HomoskedasticGaussian;
use tyxe::priors::IIDPrior;
use tyxe::VariationalBnn;
use tyxe_prob::dist::Distribution;
use tyxe_prob::optim::{Adam, Optimizer};
use tyxe_rand::rngs::StdRng;
use tyxe_rand::SeedableRng;
use tyxe_tensor::Tensor;

fn time<R>(label: &str, iters: usize, mut f: impl FnMut() -> R) {
    // Warmup.
    for _ in 0..3 {
        std::hint::black_box(f());
    }
    let mut best = f64::INFINITY;
    for _ in 0..7 {
        let t0 = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        best = best.min(t0.elapsed().as_secs_f64() / iters as f64);
    }
    println!("{label:<44} {:>10.1} us", best * 1e6);
}

/// Exact percentile by rank over a sorted sample (the convention
/// `Histogram::percentile` approximates bucket-wise): smallest value
/// with at least `ceil(q*n)` samples at or below it.
fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// `--percentiles` mode: p50/p90/p99 per span name, from `--input
/// <trace.json>` (any chrome trace, merged multi-rank included) or from
/// a short in-process profiling run.
fn run_percentiles(input: Option<std::path::PathBuf>) {
    let durations: Vec<(String, u64)> = match input {
        Some(path) => {
            let text = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
            let durs = tyxe_obs::validate::span_durations_from_chrome_trace(&text)
                .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
            println!("span percentiles from {} ({} spans)", path.display(), durs.len());
            durs
        }
        None => {
            tyxe_prob::rng::set_seed(5);
            let mut rng = StdRng::seed_from_u64(5);
            let data = tyxe_datasets::foong_regression(256, 0.1, 0);
            let bnn: VariationalBnn<_, HomoskedasticGaussian, AutoNormal> = VariationalBnn::new(
                tyxe_nn::layers::mlp(&[1, 128, 128, 1], false, &mut rng),
                &IIDPrior::standard_normal(),
                HomoskedasticGaussian::new(data.len(), 0.1),
                AutoNormal::new().init_scale(1e-2),
            );
            let mut optim = Adam::new(vec![], 1e-2);
            bnn.svi_step(&data.x, &data.y, &mut optim); // settle
            tyxe_obs::set_enabled(true);
            tyxe_obs::trace::clear();
            for _ in 0..32 {
                bnn.svi_step(&data.x, &data.y, &mut optim);
            }
            let spans = tyxe_obs::trace::drain();
            tyxe_obs::set_enabled(false);
            println!("span percentiles over 32 in-process SVI steps ({} spans)", spans.len());
            spans.iter().map(|s| (s.name.to_string(), s.dur_ns)).collect()
        }
    };
    let mut by_name: std::collections::BTreeMap<String, Vec<u64>> = Default::default();
    for (name, dur) in durations {
        by_name.entry(name).or_default().push(dur);
    }
    println!(
        "{:<36} {:>7} {:>12} {:>12} {:>12}",
        "span", "count", "p50 (us)", "p90 (us)", "p99 (us)"
    );
    let mut rows: Vec<_> = by_name.into_iter().collect();
    for (_, durs) in rows.iter_mut() {
        durs.sort_unstable();
    }
    // Heaviest tails first: the report exists to direct attention.
    rows.sort_by_key(|(_, d)| std::cmp::Reverse(percentile(d, 0.99)));
    for (name, durs) in rows {
        println!(
            "{name:<36} {:>7} {:>12.1} {:>12.1} {:>12.1}",
            durs.len(),
            percentile(&durs, 0.50) as f64 / 1e3,
            percentile(&durs, 0.90) as f64 / 1e3,
            percentile(&durs, 0.99) as f64 / 1e3,
        );
    }
}

fn main() {
    let mut percentiles = false;
    let mut input: Option<std::path::PathBuf> = None;
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        match flag.as_str() {
            "--percentiles" => percentiles = true,
            "--input" => input = Some(argv.next().expect("--input requires a path").into()),
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: profile_svi [--percentiles [--input trace.json]]");
                std::process::exit(2);
            }
        }
    }
    if percentiles {
        run_percentiles(input);
        return;
    }
    tyxe_prob::rng::set_seed(5);
    let mut rng = StdRng::seed_from_u64(5);
    let data = tyxe_datasets::foong_regression(256, 0.1, 0);
    let net = tyxe_nn::layers::mlp(&[1, 128, 128, 1], false, &mut rng);
    let bnn: VariationalBnn<tyxe_nn::layers::Sequential, HomoskedasticGaussian, AutoNormal> =
        VariationalBnn::new(
            net,
            &IIDPrior::standard_normal(),
            HomoskedasticGaussian::new(data.len(), 0.1),
            AutoNormal::new().init_scale(1e-2),
        );
    let mut optim = Adam::new(vec![], 1e-2);

    tyxe_tensor::plan::set_enabled(false);
    time("svi_step (dynamic)", 1, || {
        bnn.svi_step(&data.x, &data.y, &mut optim)
    });
    tyxe_tensor::plan::set_enabled(true);
    time("svi_step (plan replay)", 1, || {
        bnn.svi_step(&data.x, &data.y, &mut optim)
    });

    // Dominant raw kernels, outside the training loop.
    let h = Tensor::randn(&[256, 128], &mut rng);
    let w = Tensor::randn(&[128, 128], &mut rng);
    time("gemm 256x128 @ 128x128 (fwd hidden)", 4, || h.matmul(&w));
    let hg = h.clone().requires_grad(true);
    time("hidden matmul fwd+bwd", 2, || {
        let y = hg.matmul(&w).sum();
        y.backward();
    });

    time("randn fill 16384", 8, || {
        tyxe_prob::rng::randn(&[16384])
    });

    let x = Tensor::randn(&[16384], &mut rng);
    let loc = Tensor::zeros(&[16384]);
    let scale = Tensor::full(&[16384], 0.5);
    let normal = tyxe_prob::dist::Normal::new(loc, scale);
    time("Normal::log_prob(16384).sum fwd", 4, || {
        normal.log_prob(&x).sum()
    });
    let xg = x.clone().requires_grad(true);
    time("Normal::log_prob(16384).sum fwd+bwd", 2, || {
        normal.log_prob(&xg).sum().backward()
    });

    time("adam step (16k+ params)", 2, || optim.step());

    // Per-precision step cost, measured pairwise. This box's wall-clock
    // noise swamps sequential A-then-B comparisons, so build separate
    // BNN instances per precision (each keeps its own compiled plan —
    // `set_precision` is only called once per instance, so the global
    // plan generation then stays put) and interleave the timing rounds.
    let make = |rng: &mut StdRng| -> VariationalBnn<_, HomoskedasticGaussian, AutoNormal> {
        VariationalBnn::new(
            tyxe_nn::layers::mlp(&[1, 128, 128, 1], false, rng),
            &IIDPrior::standard_normal(),
            HomoskedasticGaussian::new(data.len(), 0.1),
            AutoNormal::new().init_scale(1e-2),
        )
    };
    let precisions = [
        ("svi_step replay (f64)", tyxe::Precision::F64),
        ("svi_step replay (f32 storage)", tyxe::Precision::F32),
        ("svi_step replay (mixed precision)", tyxe::Precision::Mixed),
    ];
    let pack: Vec<_> = precisions
        .iter()
        .map(|&(label, p)| {
            let b = make(&mut rng);
            b.set_precision(p);
            let mut o = Adam::new(vec![], 1e-2);
            for _ in 0..6 {
                b.svi_step(&data.x, &data.y, &mut o);
            }
            (label, b, o, f64::INFINITY)
        })
        .collect();
    let mut pack = pack;
    let hits0 = tyxe_obs::metrics::counter("plan.hit").get();
    let iters = 4;
    for _round in 0..8 {
        for (_, b, o, best) in pack.iter_mut() {
            let t0 = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(b.svi_step(&data.x, &data.y, o));
            }
            *best = best.min(t0.elapsed().as_secs_f64() / iters as f64);
        }
    }
    let hits = tyxe_obs::metrics::counter("plan.hit").get() - hits0;
    for (label, b, _, best) in &pack {
        println!("{label:<44} {:>10.1} us", best * 1e6);
        if let Some(reason) = b.plan_unsupported_reason() {
            println!("    (plan unsupported: {reason})");
        }
    }
    println!("{:<44} {hits:>10} / {}", "plan replay hits in paired rounds", 8 * iters * pack.len());

    // Pool accounting after the warmups above. Everything size-bearing
    // here is byte-denominated (the free-lists are dtype-blind byte
    // buckets): `bytes_recycled` and `pool_size` report bytes of word
    // storage, never element counts; the hit/miss counters are events.
    let (bufs, thread_bytes) = tyxe_tensor::pool::thread_stats();
    println!("\n-- pool accounting (byte-denominated) --");
    println!(
        "{:<36} {:>12} bytes",
        "tensor.alloc.pool_size (gauge)",
        tyxe_obs::metrics::gauge_tagged("tensor.alloc.pool_size", &[], "bytes").get() as u64
    );
    println!(
        "{:<36} {:>12} bytes",
        "tensor.alloc.bytes_recycled",
        tyxe_obs::metrics::counter_tagged("tensor.alloc.bytes_recycled", &[], "bytes").get()
    );
    println!("{:<36} {:>12} bytes ({bufs} buffers)", "this-thread free lists", thread_bytes);
    for dt in ["f32", "f64"] {
        let hit = tyxe_obs::metrics::counter(&format!("tensor.alloc.pool_hit.{dt}")).get();
        let miss = tyxe_obs::metrics::counter(&format!("tensor.alloc.pool_miss.{dt}")).get();
        println!("{:<36} {hit:>12} hits / {miss} misses", format!("pool events ({dt})"));
    }

    // Span-level breakdown via tyxe-obs: run a few steps each way and
    // aggregate total duration per span name.
    for (label, plan_on, precision) in [
        ("dynamic", false, tyxe::Precision::F64),
        ("plan replay", true, tyxe::Precision::F64),
        ("plan replay f32", true, tyxe::Precision::F32),
        ("plan replay mixed", true, tyxe::Precision::Mixed),
    ] {
        bnn.set_precision(precision);
        tyxe_tensor::plan::set_enabled(plan_on);
        bnn.svi_step(&data.x, &data.y, &mut optim); // settle (record if planning)
        tyxe_obs::set_enabled(true);
        tyxe_obs::trace::clear();
        let t0 = Instant::now();
        for _ in 0..8 {
            bnn.svi_step(&data.x, &data.y, &mut optim);
        }
        let wall = t0.elapsed().as_secs_f64() / 8.0;
        let spans = tyxe_obs::trace::drain();
        tyxe_obs::set_enabled(false);
        let mut agg: std::collections::BTreeMap<String, (u64, u64)> =
            std::collections::BTreeMap::new();
        for s in &spans {
            let key = match (&*s.name, &s.arg) {
                ("tensor.gemm", Some(arg)) => format!("tensor.gemm {arg}"),
                (name, _) => name.to_string(),
            };
            let e = agg.entry(key).or_insert((0, 0));
            e.0 += s.dur_ns;
            e.1 += 1;
        }
        println!("\n-- span totals over 8 steps ({label}, {:.1} us/step wall) --", wall * 1e6);
        let mut rows: Vec<_> = agg.into_iter().collect();
        rows.sort_by_key(|(_, (d, _))| std::cmp::Reverse(*d));
        for (name, (dur, n)) in rows {
            println!("{name:<36} {:>10.1} us/step  x{:>5}", dur as f64 / 8.0 / 1e3, n / 8);
        }
    }
}
