//! Phase-level wall-clock breakdown of one SVI training step, for
//! deciding where step-time optimization effort should go. Prints the
//! full step with plans off/on plus the raw cost of its dominant
//! kernels (GEMMs, normal draws, log-prob chains, Adam update).
//!
//! Usage: cargo run --release -p tyxe-bench --bin profile_svi

use std::time::Instant;

use tyxe::guides::AutoNormal;
use tyxe::likelihoods::HomoskedasticGaussian;
use tyxe::priors::IIDPrior;
use tyxe::VariationalBnn;
use tyxe_prob::dist::Distribution;
use tyxe_prob::optim::{Adam, Optimizer};
use tyxe_rand::rngs::StdRng;
use tyxe_rand::SeedableRng;
use tyxe_tensor::Tensor;

fn time<R>(label: &str, iters: usize, mut f: impl FnMut() -> R) {
    // Warmup.
    for _ in 0..3 {
        std::hint::black_box(f());
    }
    let mut best = f64::INFINITY;
    for _ in 0..7 {
        let t0 = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        best = best.min(t0.elapsed().as_secs_f64() / iters as f64);
    }
    println!("{label:<44} {:>10.1} us", best * 1e6);
}

fn main() {
    tyxe_prob::rng::set_seed(5);
    let mut rng = StdRng::seed_from_u64(5);
    let data = tyxe_datasets::foong_regression(256, 0.1, 0);
    let net = tyxe_nn::layers::mlp(&[1, 128, 128, 1], false, &mut rng);
    let bnn: VariationalBnn<tyxe_nn::layers::Sequential, HomoskedasticGaussian, AutoNormal> =
        VariationalBnn::new(
            net,
            &IIDPrior::standard_normal(),
            HomoskedasticGaussian::new(data.len(), 0.1),
            AutoNormal::new().init_scale(1e-2),
        );
    let mut optim = Adam::new(vec![], 1e-2);

    tyxe_tensor::plan::set_enabled(false);
    time("svi_step (dynamic)", 1, || {
        bnn.svi_step(&data.x, &data.y, &mut optim)
    });
    tyxe_tensor::plan::set_enabled(true);
    time("svi_step (plan replay)", 1, || {
        bnn.svi_step(&data.x, &data.y, &mut optim)
    });

    // Dominant raw kernels, outside the training loop.
    let h = Tensor::randn(&[256, 128], &mut rng);
    let w = Tensor::randn(&[128, 128], &mut rng);
    time("gemm 256x128 @ 128x128 (fwd hidden)", 4, || h.matmul(&w));
    let hg = h.clone().requires_grad(true);
    time("hidden matmul fwd+bwd", 2, || {
        let y = hg.matmul(&w).sum();
        y.backward();
    });

    time("randn fill 16384", 8, || {
        tyxe_prob::rng::randn(&[16384])
    });

    let x = Tensor::randn(&[16384], &mut rng);
    let loc = Tensor::zeros(&[16384]);
    let scale = Tensor::full(&[16384], 0.5);
    let normal = tyxe_prob::dist::Normal::new(loc, scale);
    time("Normal::log_prob(16384).sum fwd", 4, || {
        normal.log_prob(&x).sum()
    });
    let xg = x.clone().requires_grad(true);
    time("Normal::log_prob(16384).sum fwd+bwd", 2, || {
        normal.log_prob(&xg).sum().backward()
    });

    time("adam step (16k+ params)", 2, || optim.step());

    // Span-level breakdown via tyxe-obs: run a few steps each way and
    // aggregate total duration per span name.
    for (label, plan_on) in [("dynamic", false), ("plan replay", true)] {
        tyxe_tensor::plan::set_enabled(plan_on);
        bnn.svi_step(&data.x, &data.y, &mut optim); // settle (record if planning)
        tyxe_obs::set_enabled(true);
        tyxe_obs::trace::clear();
        let t0 = Instant::now();
        for _ in 0..8 {
            bnn.svi_step(&data.x, &data.y, &mut optim);
        }
        let wall = t0.elapsed().as_secs_f64() / 8.0;
        let spans = tyxe_obs::trace::drain();
        tyxe_obs::set_enabled(false);
        let mut agg: std::collections::BTreeMap<String, (u64, u64)> =
            std::collections::BTreeMap::new();
        for s in &spans {
            let key = match (&*s.name, &s.arg) {
                ("tensor.gemm", Some(arg)) => format!("tensor.gemm {arg}"),
                (name, _) => name.to_string(),
            };
            let e = agg.entry(key).or_insert((0, 0));
            e.0 += s.dur_ns;
            e.1 += 1;
        }
        println!("\n-- span totals over 8 steps ({label}, {:.1} us/step wall) --", wall * 1e6);
        let mut rows: Vec<_> = agg.into_iter().collect();
        rows.sort_by_key(|(_, (d, _))| std::cmp::Reverse(*d));
        for (name, (dur, n)) in rows {
            println!("{name:<36} {:>10.1} us/step  x{:>5}", dur as f64 / 8.0 / 1e3, n / 8);
        }
    }
}
