//! Regenerates Figure 3: deterministic vs Bayesian NeRF on held-out
//! viewing angles (the paper: deterministic error 9.4e-3 vs Bayesian
//! 8.1e-3 over 10 held-out angles, with weight-sample variance as the
//! uncertainty visualization).
//!
//! Run with: `cargo run --release -p tyxe-bench --bin fig3_nerf`

use tyxe_bench::nerf_exp::{run, NerfConfig};

fn main() {
    let cfg = NerfConfig::default();
    println!("Figure 3 reproduction: Bayesian NeRF on held-out views");
    println!(
        "({}x{} views, {} ray samples, {} training views over 270°, {} held-out in the 90° wedge)\n",
        cfg.image_size, cfg.image_size, cfg.ray_samples, cfg.train_views, cfg.test_views
    );
    println!("training deterministic NeRF, then Bayesian NeRF (means from the deterministic fit) ...");
    let r = run(cfg);

    println!("\n{:<28} {:>12}", "quantity", "value");
    println!("{}", "-".repeat(42));
    println!("{:<28} {:>12.2e}", "det. held-out error", r.det_error);
    println!("{:<28} {:>12.2e}", "Bayes held-out error", r.bayes_error);
    println!("{:<28} {:>12.4}", "held-out predictive sd", r.heldout_uncertainty);
    println!("{:<28} {:>12.4}", "training-view predictive sd", r.train_uncertainty);
    println!(
        "\nPaper reference: det 9.4e-3, Bayes 8.1e-3 (Bayes/det ratio {:.2})",
        8.1 / 9.4
    );
    println!("Measured Bayes/det ratio: {:.2}", r.bayes_error / r.det_error);

    println!("\nShape checks:");
    let checks = [
        (
            "Bayesian averaging does not hurt held-out error (paper: improves it)",
            r.bayes_error <= r.det_error * 1.1,
        ),
        (
            "predictive uncertainty concentrates on held-out views",
            r.heldout_uncertainty > r.train_uncertainty,
        ),
    ];
    for (name, ok) in checks {
        println!("  {} {}", if ok { "[ok]      " } else { "[MISMATCH]" }, name);
    }
}
