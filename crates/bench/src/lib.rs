//! `tyxe-bench`: the experiment harness regenerating every table and
//! figure of the TyXe paper at laptop scale.
//!
//! Each experiment lives in its own module and is driven by a binary (see
//! `src/bin/`); the in-tree wall-clock microbenchmarks in `benches/`
//! (driven by [`harness`], no criterion dependency) measure the
//! system-level costs (ELBO step latency with and without
//! reparameterization tricks, HMC transitions, prediction throughput).
//!
//! | Paper artifact | Module | Binary |
//! |---|---|---|
//! | Figure 1 (regression bands) | [`regression_exp`] | `fig1_regression` |
//! | Table 1 (ResNet predictive perf.) | [`vision`] | `tab1_resnet` |
//! | Figure 2 (calibration + entropy ECDF) | [`vision`] | `fig2_calibration` |
//! | Table 2 (GNN on Cora) | [`gnn_exp`] | `tab2_gnn` |
//! | Figure 3 (Bayesian NeRF) | [`nerf_exp`] | `fig3_nerf` |
//! | Figure 4 (VCL) | [`vcl_exp`] | `fig4_vcl` |
//! | §2.4 motivation (gradient variance) | [`gradvar`] | `ablation_gradvar` |

pub mod gnn_exp;
pub mod gradvar;
pub mod harness;
pub mod nerf_exp;
pub mod regression_exp;
pub mod report;
pub mod vcl_exp;
pub mod vision;
