//! Table 1 / Figure 2: Bayesian ResNet image classification with six
//! inference strategies, on the synthetic CIFAR-like dataset with an
//! SVHN-like OOD set.

use tyxe_rand::SeedableRng;
use tyxe::guides::{AutoDelta, AutoLowRankNormal, AutoNormal, InitLoc};
use tyxe::likelihoods::Categorical;
use tyxe::priors::{Filter, IIDPrior};
use tyxe::VariationalBnn;
use tyxe_datasets::{ImageDataset, ImageGenerator};
use tyxe_metrics as metrics;
use tyxe_nn::module::{Forward, Module};
use tyxe_nn::optim::{Adam, Optimizer};
use tyxe_nn::resnet::ResNet;
use tyxe_nn::StateDict;
use tyxe_tensor::Tensor;

/// The six rows of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Inference {
    /// Maximum likelihood (the pretrained deterministic network).
    Ml,
    /// Maximum a-posteriori (Delta guide under the standard normal prior).
    Map,
    /// Mean-field with frozen (pretrained) means — "MF (sd only)".
    MfSdOnly,
    /// Full mean-field with pretrained-mean initialization and scale cap.
    Mf,
    /// Mean-field over the last layer only.
    LlMf,
    /// Low-rank-plus-diagonal Gaussian over the last layer only.
    LlLowRank,
}

impl Inference {
    /// All rows in the paper's order.
    pub fn all() -> [Inference; 6] {
        [
            Inference::Ml,
            Inference::Map,
            Inference::MfSdOnly,
            Inference::Mf,
            Inference::LlMf,
            Inference::LlLowRank,
        ]
    }

    /// Paper row label.
    pub fn label(self) -> &'static str {
        match self {
            Inference::Ml => "ML",
            Inference::Map => "MAP",
            Inference::MfSdOnly => "MF (sd only)",
            Inference::Mf => "MF",
            Inference::LlMf => "LL MF",
            Inference::LlLowRank => "LL low rank",
        }
    }
}

/// Scale knobs for the experiment.
#[derive(Debug, Clone, Copy)]
pub struct VisionConfig {
    /// Image side length.
    pub image_size: usize,
    /// Training set size.
    pub n_train: usize,
    /// Test / OOD set sizes.
    pub n_test: usize,
    /// ResNet base width.
    pub width: usize,
    /// Pretraining (ML) epochs.
    pub pretrain_epochs: usize,
    /// Variational fitting epochs.
    pub vi_epochs: usize,
    /// Posterior samples for prediction (paper: 32).
    pub num_predictions: usize,
    /// Low-rank guide rank (paper: 10).
    pub rank: usize,
    /// Mini-batch size.
    pub batch: usize,
    /// Pixel noise of the image generators (task difficulty).
    pub noise_sd: f64,
}

impl Default for VisionConfig {
    fn default() -> VisionConfig {
        VisionConfig {
            image_size: 14,
            n_train: 400,
            n_test: 200,
            width: 8,
            pretrain_epochs: 22,
            vi_epochs: 12,
            num_predictions: 12,
            rank: 10,
            batch: 50,
            noise_sd: 0.85,
        }
    }
}

/// One row of Table 1, plus the raw material for Figure 2.
#[derive(Debug, Clone)]
pub struct VisionResult {
    /// Inference strategy.
    pub inference: Inference,
    /// Negative log likelihood on test data.
    pub nll: f64,
    /// Test accuracy in `[0, 1]`.
    pub accuracy: f64,
    /// Expected calibration error in `[0, 1]` (10 bins).
    pub ece: f64,
    /// AUROC for OOD detection via max predicted probability.
    pub ood_auroc: f64,
    /// Calibration curve (Figure 2, left panels).
    pub calibration: Vec<metrics::CalibrationBin>,
    /// Predictive entropies on test data (Figure 2 ECDFs).
    pub entropy_test: Vec<f64>,
    /// Predictive entropies on OOD data.
    pub entropy_ood: Vec<f64>,
}

/// Shared data + pretrained network for all six rows.
pub struct VisionSetup {
    cfg: VisionConfig,
    train: ImageDataset,
    test: ImageDataset,
    ood: ImageDataset,
    pretrained: StateDict,
}

impl VisionSetup {
    /// Generates the data and pretrains the ML baseline once.
    pub fn prepare(cfg: VisionConfig) -> VisionSetup {
        tyxe_prob::rng::set_seed(0);
        let mut rng = tyxe_rand::rngs::StdRng::seed_from_u64(0);
        // In-distribution generator with configurable pixel noise; the OOD
        // generator uses disjoint prototypes at the same noise level (pure
        // novelty shift, like SVHN vs a CIFAR-trained model).
        let gen = ImageGenerator::new(
            10, 3, cfg.image_size, cfg.image_size, cfg.noise_sd, 1.0, 0.0, 2, true, 0,
        );
        let train = gen.sample(cfg.n_train, &[], 1);
        let test = gen.sample(cfg.n_test, &[], 2);
        let ood = ImageGenerator::new(
            10, 3, cfg.image_size, cfg.image_size, cfg.noise_sd, 1.0, 0.0, 1, false, 0xdead_beef,
        )
        .sample(cfg.n_test, &[], 3);

        let net = ResNet::new(3, 10, 1, cfg.width, &mut rng);
        let mut opt = Adam::new(net.parameters(), 1e-3);
        for _ in 0..cfg.pretrain_epochs {
            for (x, y) in train.batches(cfg.batch) {
                let idx: Vec<usize> = y.to_vec().iter().map(|&v| v as usize).collect();
                let loss = net.forward(&x).log_softmax(1).gather_rows(&idx).mean().neg();
                opt.zero_grad();
                loss.backward();
                opt.step();
            }
        }
        net.set_training(false);
        VisionSetup {
            cfg,
            train,
            test,
            ood,
            pretrained: StateDict::from_module(&net),
        }
    }

    /// A fresh network loaded with the pretrained weights (eval mode).
    pub fn fresh_net(&self) -> ResNet {
        let mut rng = tyxe_rand::rngs::StdRng::seed_from_u64(99);
        let net = ResNet::new(3, 10, 1, self.cfg.width, &mut rng);
        self.pretrained.apply(&net);
        net.set_training(false);
        net
    }

    /// The experiment configuration.
    pub fn config(&self) -> &VisionConfig {
        &self.cfg
    }

    fn result_from_probs(&self, inference: Inference, probs: Tensor, probs_ood: Tensor) -> VisionResult {
        let ood_auroc = metrics::auroc(
            // Higher max-probability marks in-distribution data; score OOD
            // as positive with the negated confidence.
            &metrics::max_probability(&probs).iter().map(|v| -v).collect::<Vec<_>>(),
            &metrics::max_probability(&probs_ood).iter().map(|v| -v).collect::<Vec<_>>(),
        );
        VisionResult {
            inference,
            nll: metrics::nll(&probs, &self.test.labels),
            accuracy: metrics::accuracy(&probs, &self.test.labels),
            ece: metrics::ece(&probs, &self.test.labels, 10),
            ood_auroc,
            calibration: metrics::calibration_curve(&probs, &self.test.labels, 10),
            entropy_test: metrics::predictive_entropy(&probs),
            entropy_ood: metrics::predictive_entropy(&probs_ood),
        }
    }

    /// Runs one inference strategy end to end.
    pub fn run(&self, inference: Inference) -> VisionResult {
        tyxe_prob::rng::set_seed(7);
        let cfg = self.cfg;
        let net = self.fresh_net();
        let batches = self.train.batches(cfg.batch);

        let hide_bn = Filter::all().hide_module_types(&["BatchNorm2d"]);
        let last_layer = Filter::all().expose(&["fc.weight", "fc.bias"]);

        match inference {
            Inference::Ml => {
                // The pretrained network itself.
                let probs = net.forward(&self.test.images).softmax(1).detach();
                let probs_ood = net.forward(&self.ood.images).softmax(1).detach();
                self.result_from_probs(inference, probs, probs_ood)
            }
            Inference::Map => {
                let prior = IIDPrior::standard_normal().with_filter(hide_bn);
                let bnn = VariationalBnn::new(
                    net,
                    &prior,
                    Categorical::new(cfg.n_train),
                    AutoDelta::new(),
                );
                let mut optim = Adam::new(vec![], 1e-3);
                bnn.fit(&batches, &mut optim, cfg.vi_epochs, None);
                let probs = bnn.predict(&self.test.images, 1);
                let probs_ood = bnn.predict(&self.ood.images, 1);
                self.result_from_probs(inference, probs, probs_ood)
            }
            Inference::MfSdOnly | Inference::Mf => {
                let prior = IIDPrior::standard_normal().with_filter(hide_bn);
                let guide = AutoNormal::new()
                    .init_loc(InitLoc::Pretrained)
                    .init_scale(1e-4)
                    .max_scale(0.1)
                    .train_loc(inference == Inference::Mf);
                let bnn = VariationalBnn::new(net, &prior, Categorical::new(cfg.n_train), guide);
                let mut optim = Adam::new(vec![], 1e-3);
                {
                    let _lr = tyxe::poutine::local_reparameterization();
                    bnn.fit(&batches, &mut optim, cfg.vi_epochs, None);
                }
                let probs = bnn.predict(&self.test.images, cfg.num_predictions);
                let probs_ood = bnn.predict(&self.ood.images, cfg.num_predictions);
                self.result_from_probs(inference, probs, probs_ood)
            }
            Inference::LlMf => {
                let prior = IIDPrior::standard_normal().with_filter(last_layer);
                let guide = AutoNormal::new()
                    .init_loc(InitLoc::Pretrained)
                    .init_scale(1e-4);
                let bnn = VariationalBnn::new(net, &prior, Categorical::new(cfg.n_train), guide);
                let mut optim = Adam::new(vec![], 1e-3);
                {
                    let _lr = tyxe::poutine::local_reparameterization();
                    bnn.fit(&batches, &mut optim, cfg.vi_epochs, None);
                }
                let probs = bnn.predict(&self.test.images, cfg.num_predictions);
                let probs_ood = bnn.predict(&self.ood.images, cfg.num_predictions);
                self.result_from_probs(inference, probs, probs_ood)
            }
            Inference::LlLowRank => {
                let prior = IIDPrior::standard_normal().with_filter(last_layer);
                let guide = AutoLowRankNormal::new(cfg.rank, 1e-3);
                let bnn = VariationalBnn::new(net, &prior, Categorical::new(cfg.n_train), guide);
                let mut optim = Adam::new(vec![], 1e-3);
                bnn.fit(&batches, &mut optim, cfg.vi_epochs, None);
                let probs = bnn.predict(&self.test.images, cfg.num_predictions);
                let probs_ood = bnn.predict(&self.ood.images, cfg.num_predictions);
                self.result_from_probs(inference, probs, probs_ood)
            }
        }
    }
}

/// The paper's Table 1 values, for side-by-side reporting.
#[allow(clippy::approx_constant)] // 3.14 here is the paper's ECE, not pi
pub fn paper_reference(inference: Inference) -> (f64, f64, f64, f64) {
    match inference {
        Inference::Ml => (0.33, 94.29, 4.10, 0.78),
        Inference::Map => (0.29, 92.14, 4.44, 0.82),
        Inference::MfSdOnly => (0.27, 93.66, 3.14, 0.93),
        Inference::Mf => (0.20, 93.28, 0.97, 0.94),
        Inference::LlMf => (0.35, 93.36, 3.62, 0.89),
        Inference::LlLowRank => (0.34, 93.31, 3.75, 0.89),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tyxe::guides::Guide;

    fn tiny() -> VisionConfig {
        VisionConfig {
            image_size: 8,
            n_train: 100,
            n_test: 60,
            width: 4,
            pretrain_epochs: 6,
            vi_epochs: 3,
            num_predictions: 4,
            rank: 3,
            batch: 50,
            noise_sd: 0.35,
        }
    }

    #[test]
    fn all_six_strategies_produce_finite_metrics() {
        let setup = VisionSetup::prepare(tiny());
        for inf in Inference::all() {
            let r = setup.run(inf);
            assert!(r.nll.is_finite(), "{:?} NLL", inf);
            assert!((0.0..=1.0).contains(&r.accuracy), "{:?} accuracy", inf);
            assert!((0.0..=1.0).contains(&r.ece), "{:?} ECE", inf);
            assert!((0.0..=1.0).contains(&r.ood_auroc), "{:?} AUROC", inf);
            assert_eq!(r.calibration.len(), 10);
            assert_eq!(r.entropy_test.len(), 60);
        }
    }

    #[test]
    fn fresh_nets_share_pretrained_weights() {
        let setup = VisionSetup::prepare(tiny());
        let a = setup.fresh_net();
        let b = setup.fresh_net();
        let x = Tensor::zeros(&[1, 3, 8, 8]);
        assert_eq!(a.forward(&x).to_vec(), b.forward(&x).to_vec());
    }

    #[test]
    fn sd_only_guide_means_match_pretrained_exactly() {
        let setup = VisionSetup::prepare(tiny());
        let net = setup.fresh_net();
        let fc_pre = net.fc().weight().leaf().to_vec();
        let prior = IIDPrior::standard_normal()
            .with_filter(Filter::all().hide_module_types(&["BatchNorm2d"]));
        let guide = AutoNormal::new()
            .init_loc(InitLoc::Pretrained)
            .init_scale(1e-4)
            .train_loc(false);
        let bnn = VariationalBnn::new(net, &prior, Categorical::new(100), guide);
        let mut optim = Adam::new(vec![], 1e-3);
        bnn.fit(&setup.train.batches(50), &mut optim, 2, None);
        let q = bnn.guide().detached_distributions();
        assert_eq!(q["fc.weight"].mean().to_vec(), fc_pre);
    }
}
