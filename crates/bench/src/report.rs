//! Small table-formatting helpers shared by the experiment binaries.

/// Prints a fixed-width table row.
pub fn row(label: &str, cells: &[String]) {
    print!("{label:<16}");
    for c in cells {
        print!(" {c:>12}");
    }
    println!();
}

/// Prints a header row followed by a separator.
pub fn header(label: &str, cols: &[&str]) {
    row(label, &cols.iter().map(|c| c.to_string()).collect::<Vec<_>>());
    println!("{}", "-".repeat(16 + 13 * cols.len()));
}

/// Formats `mean ± 2se`.
pub fn pm(mean: f64, err: f64, decimals: usize) -> String {
    format!("{mean:.decimals$}±{err:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pm_formats() {
        assert_eq!(pm(1.234, 0.056, 2), "1.23±0.06");
        assert_eq!(pm(75.64, 1.28, 1), "75.6±1.3");
    }
}
