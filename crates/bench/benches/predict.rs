//! Posterior-predictive throughput (in-tree harness): the predictive
//! engine's target workload. One trained-ish regression MLP, S posterior
//! samples per call, S ∈ {8, 32, 128}.
//!
//! `scripts/bench.sh` runs this binary in a 2×2 sweep — TYXE_PREDICT=0/1
//! × TYXE_NUM_THREADS=1/4 — and writes the cross-run comparison to
//! results/BENCH_PREDICT.json. The engine (DESIGN.md §15) is bit-identical
//! to the legacy path (tests/determinism.rs), so every ratio in that
//! record measures scheduling, caching and replay only, never numerics.

use std::hint::black_box;
use tyxe::guides::AutoNormal;
use tyxe::likelihoods::HomoskedasticGaussian;
use tyxe::priors::IIDPrior;
use tyxe::VariationalBnn;
use tyxe_bench::harness::Criterion;
use tyxe_bench::{criterion_group, criterion_main};
use tyxe_datasets::foong_regression;
use tyxe_prob::optim::Adam;
use tyxe_rand::SeedableRng;

type RegressionBnn =
    VariationalBnn<tyxe_nn::layers::Sequential, HomoskedasticGaussian, AutoNormal>;

/// An interactive-serving workload: a 16-point test batch through a
/// 1-64-64-1 MLP. Per-call forward math is small, so the costs the
/// engine removes — per-sample guide re-sampling, trace walking, tape
/// construction, graph re-dispatch — dominate the legacy path. (Bulk
/// batch-256 predictive throughput is covered by `inference.rs`.)
fn make_bnn() -> (RegressionBnn, tyxe_datasets::Regression1d) {
    tyxe_prob::rng::set_seed(0);
    let mut rng = tyxe_rand::rngs::StdRng::seed_from_u64(0);
    let data = foong_regression(16, 0.1, 0);
    let net = tyxe_nn::layers::mlp(&[1, 64, 64, 1], false, &mut rng);
    let bnn = VariationalBnn::new(
        net,
        &IIDPrior::standard_normal(),
        HomoskedasticGaussian::new(data.len(), 0.1),
        AutoNormal::new().init_scale(1e-2),
    );
    let mut optim = Adam::new(vec![], 1e-2);
    for _ in 0..2 {
        bnn.svi_step(&data.x, &data.y, &mut optim);
    }
    (bnn, data)
}

fn bench_predict_samples(c: &mut Criterion) {
    let (bnn, data) = make_bnn();
    let mut group = c.benchmark_group("predict_engine");
    for s in [8usize, 32, 128] {
        group.bench_function(format!("s{s}"), |b| {
            b.iter(|| black_box(bnn.predict_samples(&data.x, s).len()))
        });
    }
    group.finish();
}

/// The aggregated predictive (`predict`) on the same workload at the
/// acceptance point S=32 — the call sites like `evaluate` actually hit.
fn bench_predict_aggregate(c: &mut Criterion) {
    let (bnn, data) = make_bnn();
    let mut group = c.benchmark_group("predict_engine");
    group.bench_function("aggregate_s32", |b| {
        b.iter(|| black_box(bnn.predict(&data.x, 32)))
    });
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_predict_samples, bench_predict_aggregate
);
criterion_main!(benches);
