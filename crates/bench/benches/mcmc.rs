//! Wall-clock benchmarks (in-tree harness) for the MCMC substrate: potential-energy gradient
//! evaluation and full HMC/NUTS transitions on the regression BNN.

use tyxe_bench::harness::Criterion;
use tyxe_bench::{criterion_group, criterion_main};
use std::hint::black_box;
use tyxe_prob::dist::{boxed, Normal};
use tyxe_prob::mcmc::{potential_and_grad, Hmc, Kernel, LatentLayout, Nuts};
use tyxe_prob::poutine::{observe, sample};
use tyxe_tensor::Tensor;

fn model() {
    // A 20-hidden-unit BNN regression joint, written directly as a
    // probabilistic program.
    let x = Tensor::linspace(-1.0, 1.0, 32).reshape(&[32, 1]);
    let y = x.mul_scalar(4.0).add_scalar(0.8).cos();
    let w1 = sample("w1", boxed(Normal::standard(&[1, 20])));
    let b1 = sample("b1", boxed(Normal::standard(&[20])));
    let w2 = sample("w2", boxed(Normal::standard(&[20, 1])));
    let b2 = sample("b2", boxed(Normal::standard(&[1])));
    let h = x.matmul(&w1).add(&b1).tanh();
    let pred = h.matmul(&w2).add(&b2);
    observe(
        "obs",
        boxed(Normal::new(pred, Tensor::full(&[32, 1], 0.1))),
        &y,
    );
}

fn bench_potential(c: &mut Criterion) {
    let layout = LatentLayout::discover(&model);
    let q = vec![0.01; layout.len()];
    c.bench_function("potential_and_grad", |b| {
        b.iter(|| black_box(potential_and_grad(&model, &layout, &q)))
    });
}

fn bench_hmc_transition(c: &mut Criterion) {
    tyxe_prob::rng::set_seed(0);
    let layout = LatentLayout::discover(&model);
    let q0 = layout.initial_values(&model);
    let mut kernel = Hmc::new(1e-3, 10);
    c.bench_function("hmc_transition_10_steps", |b| {
        b.iter(|| {
            let (q, a) = kernel.transition(&model, &layout, q0.clone());
            black_box((q, a))
        })
    });
    eprintln!("hmc_transition_10_steps: {} divergent transitions", kernel.num_divergent());
}

fn bench_nuts_transition(c: &mut Criterion) {
    tyxe_prob::rng::set_seed(1);
    let layout = LatentLayout::discover(&model);
    let q0 = layout.initial_values(&model);
    let mut kernel = Nuts::new(1e-3, 5);
    c.bench_function("nuts_transition_depth5", |b| {
        b.iter(|| {
            let (q, a) = kernel.transition(&model, &layout, q0.clone());
            black_box((q, a))
        })
    });
    eprintln!("nuts_transition_depth5: {} divergent transitions", kernel.num_divergent());
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_potential, bench_hmc_transition, bench_nuts_transition
);
criterion_main!(benches);
