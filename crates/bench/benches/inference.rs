//! Wall-clock benchmarks (in-tree harness) for inference-step latency — in particular the
//! paper's §2.4 claim that the reparameterization tricks "double the
//! computational cost" of a training step (which is why `predict` is run
//! outside the handler context).

use tyxe_bench::harness::{bench_with_pool_stats, Criterion};
use tyxe_bench::{criterion_group, criterion_main};
use tyxe_rand::SeedableRng;
use std::hint::black_box;
use tyxe::guides::{AutoNormal, InitLoc};
use tyxe::likelihoods::HomoskedasticGaussian;
use tyxe::priors::IIDPrior;
use tyxe::VariationalBnn;
use tyxe_datasets::foong_regression;
use tyxe_prob::optim::Adam;
use tyxe_prob::svi::{negative_elbo, ElboEstimator};

type RegressionBnn =
    VariationalBnn<tyxe_nn::layers::Sequential, HomoskedasticGaussian, AutoNormal>;

fn make_bnn() -> (RegressionBnn, tyxe_datasets::Regression1d) {
    tyxe_prob::rng::set_seed(0);
    let mut rng = tyxe_rand::rngs::StdRng::seed_from_u64(0);
    let data = foong_regression(64, 0.1, 0);
    let net = tyxe_nn::layers::mlp(&[1, 50, 50, 1], false, &mut rng);
    let bnn = VariationalBnn::new(
        net,
        &IIDPrior::standard_normal(),
        HomoskedasticGaussian::new(data.len(), 0.1),
        AutoNormal::new().init_loc(InitLoc::Pretrained).init_scale(1e-2),
    );
    (bnn, data)
}

fn elbo_once(bnn: &RegressionBnn, data: &tyxe_datasets::Regression1d) -> f64 {
    let model = || {
        let pred = bnn.module().sampled_forward(&data.x);
        tyxe::likelihoods::Likelihood::observe_data(bnn.likelihood(), &pred, &data.y);
    };
    let guide = || tyxe::guides::Guide::sample_guide(bnn.guide());
    let (loss, _, _) = negative_elbo(&model, &guide, ElboEstimator::MeanField);
    loss.backward();
    loss.item()
}

/// The paper's cost comparison: one ELBO gradient with each sampling
/// strategy. Expect local reparameterization and flipout to cost roughly
/// 2x the vanilla step.
fn bench_elbo_step(c: &mut Criterion) {
    let (bnn, data) = make_bnn();
    let mut group = c.benchmark_group("elbo_step");
    group.bench_function("vanilla", |b| {
        b.iter(|| black_box(elbo_once(&bnn, &data)))
    });
    group.bench_function("local_reparam", |b| {
        b.iter(|| {
            let _g = tyxe::poutine::local_reparameterization();
            black_box(elbo_once(&bnn, &data))
        })
    });
    group.bench_function("flipout", |b| {
        b.iter(|| {
            let _g = tyxe::poutine::flipout();
            black_box(elbo_once(&bnn, &data))
        })
    });
    group.finish();
}

fn bench_svi_step_end_to_end(c: &mut Criterion) {
    let (bnn, data) = make_bnn();
    let mut optim = Adam::new(vec![], 1e-3);
    bench_with_pool_stats(c, "svi_step_full", |b| {
        b.iter(|| black_box(bnn.svi_step(&data.x, &data.y, &mut optim)))
    });
    // Reduced-precision variants of the same step (DESIGN.md §12);
    // storage converts in place so the optimizer and compiled plan
    // machinery see the same tensor identities.
    for (tag, suffix, precision) in [
        ("f32", "_f32", tyxe::Precision::F32),
        ("mixed", "_mixed", tyxe::Precision::Mixed),
    ] {
        bnn.set_precision(precision);
        std::env::set_var("TYXE_BENCH_DTYPE", tag);
        bench_with_pool_stats(c, &format!("svi_step_full{suffix}"), |b| {
            b.iter(|| black_box(bnn.svi_step(&data.x, &data.y, &mut optim)))
        });
        std::env::remove_var("TYXE_BENCH_DTYPE");
    }
    bnn.set_precision(tyxe::Precision::F64);
}

fn bench_prediction(c: &mut Criterion) {
    let (bnn, data) = make_bnn();
    let mut group = c.benchmark_group("predict");
    for n in [1usize, 8, 32] {
        group.bench_function(format!("samples_{n}"), |b| {
            b.iter(|| black_box(bnn.predict(&data.x, n)))
        });
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_elbo_step, bench_svi_step_end_to_end, bench_prediction
);
criterion_main!(benches);
