//! Wall-clock benchmarks (in-tree harness) for the volume-rendering substrate used by the
//! Bayesian NeRF experiment.

use tyxe_bench::harness::Criterion;
use tyxe_bench::{criterion_group, criterion_main};
use tyxe_rand::SeedableRng;
use std::hint::black_box;
use tyxe_nn::layers::mlp;
use tyxe_nn::module::Forward;
use tyxe_render::{Camera, GroundTruthScene, HarmonicEmbedding, RawField, VolumeRenderer};
use tyxe_tensor::Tensor;

fn bench_rays(c: &mut Criterion) {
    let cam = Camera::orbit(45.0, 2.8, 16, 16);
    c.bench_function("camera_rays_16x16", |b| b.iter(|| black_box(cam.rays())));
}

fn bench_ground_truth_render(c: &mut Criterion) {
    let cam = Camera::orbit(45.0, 2.8, 10, 10);
    let renderer = VolumeRenderer::new(20, 1.0, 4.6);
    let scene = GroundTruthScene::new();
    c.bench_function("render_gt_10x10_20samples", |b| {
        b.iter(|| black_box(renderer.render(&cam, &scene)))
    });
}

fn bench_nerf_render(c: &mut Criterion) {
    let mut rng = tyxe_rand::rngs::StdRng::seed_from_u64(0);
    let embed = HarmonicEmbedding::new(3);
    let net = mlp(&[embed.output_dim(3), 48, 48, 4], true, &mut rng);
    let cam = Camera::orbit(45.0, 2.8, 10, 10);
    let renderer = VolumeRenderer::new(20, 1.0, 4.6);
    let field = RawField::new(|p: &Tensor| net.forward(&embed.embed(p)));
    c.bench_function("render_nerf_forward_10x10", |b| {
        b.iter(|| black_box(renderer.render(&cam, &field)))
    });
    c.bench_function("render_nerf_with_backward", |b| {
        b.iter(|| {
            let out = renderer.render(&cam, &field);
            out.rgb.sum().add(&out.silhouette.sum()).backward();
            black_box(())
        })
    });
}

fn bench_embedding(c: &mut Criterion) {
    let embed = HarmonicEmbedding::new(4);
    let mut rng = tyxe_rand::rngs::StdRng::seed_from_u64(1);
    let pts = Tensor::randn(&[2000, 3], &mut rng);
    c.bench_function("harmonic_embed_2000x3", |b| {
        b.iter(|| black_box(embed.embed(&pts)))
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_rays, bench_ground_truth_render, bench_nerf_render, bench_embedding
);
criterion_main!(benches);
