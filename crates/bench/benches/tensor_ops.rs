//! Wall-clock microbenchmarks (in-tree harness) for the tensor/autodiff substrate: the op
//! throughput every experiment in the paper rests on.

use tyxe_bench::harness::{bench_with_pool_stats, Criterion};
use tyxe_bench::{criterion_group, criterion_main};
use tyxe_rand::SeedableRng;
use std::hint::black_box;
use tyxe_tensor::Tensor;

/// Square-GEMM size sweep over the blocked kernel plus the retained naive
/// reference at 256³ (the PR 1 matmul kernel), so `results/BENCH_TENSOR.json`
/// records the blocked/parallel speedup against a baseline measured on the
/// same machine in the same run.
fn bench_gemm_sweep(c: &mut Criterion) {
    use tyxe_tensor::ops::gemm_kernels as gk;
    let mut rng = tyxe_rand::rngs::StdRng::seed_from_u64(7);
    for n in [64usize, 128, 256, 512] {
        let a = Tensor::randn(&[n, n], &mut rng);
        let b = Tensor::randn(&[n, n], &mut rng);
        c.bench_function(format!("gemm_{n}x{n}x{n}"), |bch| {
            bch.iter(|| black_box(a.matmul(&b)))
        });
    }
    // The same 256-cube in f32 storage: half the memory traffic and the
    // widened AVX-512 f32 microkernel tiles. `scripts/bench.sh` derives
    // `f32_speedup_vs_f64` in `results/BENCH_TENSOR.json` from this case
    // against `gemm_256x256x256` above.
    {
        let n = 256;
        let a64 = Tensor::randn(&[n, n], &mut rng);
        let b64 = Tensor::randn(&[n, n], &mut rng);
        let a32 = a64.cast(tyxe_tensor::DType::F32).detach();
        let b32 = b64.cast(tyxe_tensor::DType::F32).detach();
        std::env::set_var("TYXE_BENCH_DTYPE", "f32");
        c.bench_function(format!("gemm_{n}x{n}x{n}_f32"), |bch| {
            bch.iter(|| black_box(a32.matmul(&b32)))
        });
        std::env::remove_var("TYXE_BENCH_DTYPE");
    }

    // Two baselines for the speedup denominator, both on raw slices:
    // the retained reference kernel (shared madd recipe, used below the
    // size cutoff), and the exact pre-blocked-kernel matmul inner loop —
    // zero-skip branch, no fused multiply-add.
    let n = 256;
    let a: Vec<f64> = (0..n * n).map(|i| (i % 37) as f64 * 0.1 - 1.8).collect();
    let b: Vec<f64> = (0..n * n).map(|i| (i % 29) as f64 * 0.1 - 1.4).collect();
    c.bench_function("gemm_256x256x256_reference", |bch| {
        bch.iter(|| {
            let mut out = vec![0.0; n * n];
            gk::gemm_ref(&a, &b, &mut out, n, n, n);
            black_box(out)
        })
    });
    c.bench_function("gemm_256x256x256_naive_pr1", |bch| {
        bch.iter(|| {
            let mut out = vec![0.0; n * n];
            for i in 0..n {
                for p in 0..n {
                    let av = a[i * n + p];
                    if av == 0.0 {
                        continue;
                    }
                    let brow = &b[p * n..(p + 1) * n];
                    let crow = &mut out[i * n..(i + 1) * n];
                    for j in 0..n {
                        crow[j] += av * brow[j];
                    }
                }
            }
            black_box(out)
        })
    });
}

fn bench_matmul(c: &mut Criterion) {
    let mut rng = tyxe_rand::rngs::StdRng::seed_from_u64(0);
    let a = Tensor::randn(&[64, 64], &mut rng);
    let b = Tensor::randn(&[64, 64], &mut rng);
    c.bench_function("matmul_64x64", |bch| {
        bch.iter(|| black_box(a.matmul(&b)))
    });

    let aw = Tensor::randn(&[64, 64], &mut rng).requires_grad(true);
    c.bench_function("matmul_64x64_with_backward", |bch| {
        bch.iter(|| {
            aw.zero_grad();
            let y = a.matmul(&aw).sum();
            y.backward();
            black_box(aw.grad())
        })
    });
}

fn bench_conv(c: &mut Criterion) {
    let mut rng = tyxe_rand::rngs::StdRng::seed_from_u64(1);
    let x = Tensor::randn(&[8, 8, 14, 14], &mut rng);
    let w = Tensor::randn(&[8, 8, 3, 3], &mut rng);
    c.bench_function("conv2d_8x8x14x14_k3", |bch| {
        bch.iter(|| black_box(x.conv2d(&w, None, 1, 1)))
    });

    let ww = Tensor::randn(&[8, 8, 3, 3], &mut rng).requires_grad(true);
    c.bench_function("conv2d_with_backward", |bch| {
        bch.iter(|| {
            ww.zero_grad();
            x.conv2d(&ww, None, 1, 1).sum().backward();
            black_box(ww.grad())
        })
    });

    // A CIFAR-scale case whose im2col GEMM clears the blocked-kernel
    // threshold and whose batch dimension feeds the sample-parallel path.
    let xl = Tensor::randn(&[8, 16, 32, 32], &mut rng);
    let wl = Tensor::randn(&[32, 16, 3, 3], &mut rng);
    c.bench_function("conv2d_8x16x32x32_k3x32", |bch| {
        bch.iter(|| black_box(xl.conv2d(&wl, None, 1, 1)))
    });
}

fn bench_elementwise(c: &mut Criterion) {
    let mut rng = tyxe_rand::rngs::StdRng::seed_from_u64(2);
    let x = Tensor::randn(&[4096], &mut rng);
    c.bench_function("tanh_4096", |bch| bch.iter(|| black_box(x.tanh())));
    let logits = Tensor::randn(&[128, 10], &mut rng);
    c.bench_function("log_softmax_128x10", |bch| {
        bch.iter(|| black_box(logits.log_softmax(1)))
    });
}

/// One full SVI step — prior + guide sampling, forward pass, ELBO,
/// backward pass, Adam update — on a 1→128→128→1 MLP with batch 256,
/// large enough that the hidden-layer matmuls take the blocked kernel
/// path. This is the end-to-end training-step number recorded in
/// `results/BENCH_TENSOR.json`.
fn bench_svi_step(c: &mut Criterion) {
    use tyxe::guides::AutoNormal;
    use tyxe::likelihoods::HomoskedasticGaussian;
    use tyxe::priors::IIDPrior;
    use tyxe::VariationalBnn;
    use tyxe_prob::optim::Adam;

    tyxe_prob::rng::set_seed(5);
    let mut rng = tyxe_rand::rngs::StdRng::seed_from_u64(5);
    let data = tyxe_datasets::foong_regression(256, 0.1, 0);
    let net = tyxe_nn::layers::mlp(&[1, 128, 128, 1], false, &mut rng);
    let bnn: VariationalBnn<tyxe_nn::layers::Sequential, HomoskedasticGaussian, AutoNormal> =
        VariationalBnn::new(
            net,
            &IIDPrior::standard_normal(),
            HomoskedasticGaussian::new(data.len(), 0.1),
            AutoNormal::new().init_scale(1e-2),
        );
    let mut optim = Adam::new(vec![], 1e-2);
    bench_with_pool_stats(c, "svi_step_mlp_1x128x128x1_n256", |bch| {
        bch.iter(|| black_box(bnn.svi_step(&data.x, &data.y, &mut optim)))
    });

    // The same end-to-end step under the two reduced-precision policies
    // (DESIGN.md §12). Parameter storage converts in place, so the
    // optimizer keeps tracking the same leaves across variants; the
    // `TYXE_BENCH_DTYPE` tag routes each case into its per-dtype section
    // of `results/BENCH_SVI.json`.
    for (tag, suffix, precision) in [
        ("f32", "_f32", tyxe::Precision::F32),
        ("mixed", "_mixed", tyxe::Precision::Mixed),
    ] {
        bnn.set_precision(precision);
        std::env::set_var("TYXE_BENCH_DTYPE", tag);
        bench_with_pool_stats(c, &format!("svi_step_mlp_1x128x128x1_n256{suffix}"), |bch| {
            bch.iter(|| black_box(bnn.svi_step(&data.x, &data.y, &mut optim)))
        });
        std::env::remove_var("TYXE_BENCH_DTYPE");
    }
}

fn bench_graph_aggregate(c: &mut Criterion) {
    let ds = tyxe_graph::citation_graph(350, 7, 49, 0.06, 0.004, 20, 70, 140, 0);
    c.bench_function("gcn_aggregate_350_nodes", |bch| {
        bch.iter(|| black_box(ds.graph.aggregate(&ds.features)))
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_gemm_sweep, bench_matmul, bench_conv, bench_elementwise, bench_svi_step, bench_graph_aggregate
);
criterion_main!(benches);
