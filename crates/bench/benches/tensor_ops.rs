//! Wall-clock microbenchmarks (in-tree harness) for the tensor/autodiff substrate: the op
//! throughput every experiment in the paper rests on.

use tyxe_bench::harness::Criterion;
use tyxe_bench::{criterion_group, criterion_main};
use tyxe_rand::SeedableRng;
use std::hint::black_box;
use tyxe_tensor::Tensor;

fn bench_matmul(c: &mut Criterion) {
    let mut rng = tyxe_rand::rngs::StdRng::seed_from_u64(0);
    let a = Tensor::randn(&[64, 64], &mut rng);
    let b = Tensor::randn(&[64, 64], &mut rng);
    c.bench_function("matmul_64x64", |bch| {
        bch.iter(|| black_box(a.matmul(&b)))
    });

    let aw = Tensor::randn(&[64, 64], &mut rng).requires_grad(true);
    c.bench_function("matmul_64x64_with_backward", |bch| {
        bch.iter(|| {
            aw.zero_grad();
            let y = a.matmul(&aw).sum();
            y.backward();
            black_box(aw.grad())
        })
    });
}

fn bench_conv(c: &mut Criterion) {
    let mut rng = tyxe_rand::rngs::StdRng::seed_from_u64(1);
    let x = Tensor::randn(&[8, 8, 14, 14], &mut rng);
    let w = Tensor::randn(&[8, 8, 3, 3], &mut rng);
    c.bench_function("conv2d_8x8x14x14_k3", |bch| {
        bch.iter(|| black_box(x.conv2d(&w, None, 1, 1)))
    });

    let ww = Tensor::randn(&[8, 8, 3, 3], &mut rng).requires_grad(true);
    c.bench_function("conv2d_with_backward", |bch| {
        bch.iter(|| {
            ww.zero_grad();
            x.conv2d(&ww, None, 1, 1).sum().backward();
            black_box(ww.grad())
        })
    });
}

fn bench_elementwise(c: &mut Criterion) {
    let mut rng = tyxe_rand::rngs::StdRng::seed_from_u64(2);
    let x = Tensor::randn(&[4096], &mut rng);
    c.bench_function("tanh_4096", |bch| bch.iter(|| black_box(x.tanh())));
    let logits = Tensor::randn(&[128, 10], &mut rng);
    c.bench_function("log_softmax_128x10", |bch| {
        bch.iter(|| black_box(logits.log_softmax(1)))
    });
}

fn bench_graph_aggregate(c: &mut Criterion) {
    let ds = tyxe_graph::citation_graph(350, 7, 49, 0.06, 0.004, 20, 70, 140, 0);
    c.bench_function("gcn_aggregate_350_nodes", |bch| {
        bch.iter(|| black_box(ds.graph.aggregate(&ds.features)))
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_matmul, bench_conv, bench_elementwise, bench_graph_aggregate
);
criterion_main!(benches);
